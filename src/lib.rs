//! Umbrella crate for the Consequence reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one dependency. See the workspace `README.md` for the map:
//!
//! * [`consequence`] — the deterministic TSO runtime (the paper's system);
//! * [`conversion`] — versioned-memory substrate;
//! * [`det_clock`] — deterministic logical clocks;
//! * [`dmt_api`] — the runtime-agnostic program interface;
//! * [`dmt_baselines`] — pthreads, DThreads, DWC, Consequence-RR;
//! * [`dmt_shard`] — sharded token domains with deterministic
//!   cross-shard rendezvous;
//! * [`dmt_workloads`] — the 20 evaluation benchmarks (including the
//!   `dmt_server` request-serving workload).

pub use consequence;
pub use conversion;
pub use det_clock;
pub use dmt_api;
pub use dmt_baselines;
pub use dmt_shard;
pub use dmt_workloads;
