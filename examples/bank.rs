//! Fine-grained locking: concurrent bank transfers under per-account locks.
//!
//! Demonstrates that Consequence keeps distinct locks distinct (unlike
//! DThreads' single global lock): critical sections under different account
//! locks run concurrently, only the lock/unlock operations serialize
//! through the deterministic order. Money is conserved on every run and the
//! final balances are identical across runs — compare with the pthreads
//! baseline, where the balance *vector* varies.
//!
//! ```text
//! cargo run --example bank
//! ```

use dmt_api::{CommonConfig, Runtime, RuntimeMemExt, Tid};
use dmt_baselines::{make_runtime, RuntimeKind};

const ACCOUNTS: usize = 16;
const INITIAL: u64 = 1_000;
const TRANSFERS: u64 = 200;

fn balances_hash(rt: &dyn Runtime) -> (u64, u64) {
    let mut total = 0;
    let mut h = dmt_api::Fnv1a::new();
    for a in 0..ACCOUNTS {
        let mut b = [0u8; 8];
        rt.final_read(a * 8, &mut b);
        total += u64::from_le_bytes(b);
        h.update(&b);
    }
    (total, h.digest())
}

fn run(kind: RuntimeKind) -> (u64, u64) {
    let mut rt = make_runtime(kind, CommonConfig::default());
    let locks: Vec<_> = (0..ACCOUNTS).map(|_| rt.create_mutex()).collect();
    for a in 0..ACCOUNTS {
        rt.init_u64(a * 8, INITIAL);
    }
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..4u64)
            .map(|t| {
                let locks = locks.clone();
                ctx.spawn(Box::new(move |c| {
                    // A deterministic per-thread transfer schedule.
                    let mut x = t.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                    for _ in 0..TRANSFERS {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (x >> 33) as usize % ACCOUNTS;
                        let to = (x >> 13) as usize % ACCOUNTS;
                        if from == to {
                            continue;
                        }
                        // Lock ordering by account id avoids deadlock.
                        let (a, b) = (from.min(to), from.max(to));
                        c.mutex_lock(locks[a]);
                        c.mutex_lock(locks[b]);
                        let amount = 1 + (x & 0x1f);
                        let fb = c.ld_u64(from * 8);
                        if fb >= amount {
                            c.st_u64(from * 8, fb - amount);
                            let tb = c.ld_u64(to * 8);
                            c.st_u64(to * 8, tb + amount);
                        }
                        c.tick(50);
                        c.mutex_unlock(locks[b]);
                        c.mutex_unlock(locks[a]);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    balances_hash(rt.as_ref())
}

fn main() {
    println!("4 threads, {TRANSFERS} random transfers each over {ACCOUNTS} accounts\n");
    for kind in [RuntimeKind::Pthreads, RuntimeKind::ConsequenceIc] {
        print!("{:<16}", kind.label());
        let mut digests = Vec::new();
        for _ in 0..3 {
            let (total, digest) = run(kind);
            assert_eq!(total, ACCOUNTS as u64 * INITIAL, "money must be conserved");
            digests.push(digest);
            print!("  balances={digest:016x}");
        }
        let stable = digests.windows(2).all(|w| w[0] == w[1]);
        println!(
            "  -> {}",
            if stable {
                "identical in these runs"
            } else {
                "varies run to run"
            }
        );
    }
    println!(
        "\nmoney is conserved everywhere. Consequence *guarantees* the exact\n\
         balance vector; pthreads merely happened to repeat here (a single-core\n\
         host schedules these short threads back to back — on a multicore box,\n\
         or under load, its outcome drifts)."
    );
}
