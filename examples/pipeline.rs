//! A ferret-style pipeline on the public API: bounded queues, condition
//! variables, and mixed stage granularities.
//!
//! Stage 1 produces items rapidly (many short critical sections — the
//! paper's `ferret_1` pattern); stage 2 workers do heavy per-item work.
//! Under Consequence-IC the instruction-count order lets the producer run
//! ahead without waiting for the heavyweight consumers, which is exactly
//! the scenario where round-robin ordering collapses (Figure 1b). The
//! example prints both orderings' virtual runtimes so the gap is visible.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, MemExt, Runtime, RuntimeMemExt};
use dmt_workloads::layout::Layout;
use dmt_workloads::queue::{ShmQueue, PILL};

const ITEMS: u64 = 160;

fn run(opts: Options) -> (u64, u64) {
    let mut rt = ConsequenceRuntime::new(
        CommonConfig {
            heap_pages: 64,
            ..CommonConfig::default()
        },
        opts,
    );
    let mut l = Layout::new();
    let q = ShmQueue::create(&mut rt, &mut l, 8);
    let out = l.cells_page_aligned(1);
    let out_lock = rt.create_mutex();
    q.init(&mut rt);

    let report = rt.run(Box::new(move |ctx| {
        // Producer: short chunks, high sync rate.
        let producer = ctx.spawn(Box::new(move |c| {
            for i in 0..ITEMS {
                c.tick(60);
                q.push(c, i + 1);
            }
            q.push(c, PILL);
        }));
        // Three consumers whose per-item work is comparable to the
        // producer's rate: throughput is then producer-limited, and the
        // ordering policy decides how often the producer gets to run.
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                ctx.spawn(Box::new(move |c| {
                    let mut acc = 0u64;
                    loop {
                        let v = q.pop(c);
                        if v == PILL {
                            break;
                        }
                        c.tick(9_000); // per-item processing
                        acc = acc.wrapping_add(v * v);
                    }
                    c.mutex_lock(out_lock);
                    c.fetch_add_u64(out, acc);
                    c.mutex_unlock(out_lock);
                }))
            })
            .collect();
        ctx.join(producer);
        for k in consumers {
            ctx.join(k);
        }
    }));
    (rt.final_u64(out), report.virtual_cycles)
}

fn main() {
    let (sum_ic, v_ic) = run(Options::consequence_ic());
    let (sum_rr, v_rr) = run(Options::consequence_rr());
    let expect: u64 = (1..=ITEMS).map(|v| v.wrapping_mul(v)).sum();
    assert_eq!(sum_ic, expect);
    assert_eq!(sum_rr, expect);
    println!("pipeline checksum: ic={sum_ic} rr={sum_rr} (expected {expect})");
    println!("virtual runtime:   ic={v_ic}  rr={v_rr}");
    println!(
        "instruction-count ordering is {:.2}x faster than round-robin here",
        v_rr as f64 / v_ic as f64
    );
}
