//! TSO litmus tests on the deterministic runtime.
//!
//! The classic store-buffering (SB) litmus test:
//!
//! ```text
//! T1: X = 1; r1 = Y        T2: Y = 1; r2 = X
//! ```
//!
//! Under sequential consistency at least one of `r1`, `r2` is 1. Under TSO
//! — and under Consequence, whose isolation is a software store buffer —
//! the outcome `r1 = r2 = 0` is additionally allowed, because each thread's
//! store sits in its buffer (isolated workspace) until the next commit
//! point. What determinism adds is that whichever outcome occurs, it is the
//! *same one on every run*.
//!
//! The second test shows that commits respect program order (TSO never
//! reorders a thread's own stores): once a reader observes the later store
//! it must also observe the earlier one.
//!
//! ```text
//! cargo run --example litmus
//! ```

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, Runtime, RuntimeMemExt, ThreadCtx, Tid};

const X: usize = 0;
const Y: usize = 4096; // separate pages to rule out merge interactions
const R1: usize = 8192;
const R2: usize = 8200;

fn store_buffering() -> (u64, u64) {
    let mut rt = ConsequenceRuntime::new(CommonConfig::default(), Options::consequence_ic());
    rt.run(Box::new(move |ctx| {
        let t1 = ctx.spawn(Box::new(|c| {
            c.st_u64(X, 1);
            let r1 = c.ld_u64(Y);
            c.st_u64(R1, r1);
        }));
        let t2 = ctx.spawn(Box::new(|c| {
            c.st_u64(Y, 1);
            let r2 = c.ld_u64(X);
            c.st_u64(R2, r2);
        }));
        ctx.join(t1);
        ctx.join(t2);
    }));
    (rt.final_u64(R1), rt.final_u64(R2))
}

fn program_order() -> bool {
    // T1 writes A then B (same page); T2 reads B then A after joining a
    // sync point. If T2 sees B = 1 it must see A = 1: stores from one
    // thread become visible atomically at its commit, never reordered.
    let mut rt = ConsequenceRuntime::new(CommonConfig::default(), Options::consequence_ic());
    let m = rt.create_mutex();
    let ok = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let ok2 = std::sync::Arc::clone(&ok);
    rt.run(Box::new(move |ctx| {
        let writer = ctx.spawn(Box::new(move |c| {
            c.st_u64(X, 1); // A
            c.st_u64(X + 8, 1); // B
            c.mutex_lock(m); // commit point
            c.mutex_unlock(m);
        }));
        let ok3 = std::sync::Arc::clone(&ok2);
        let reader = ctx.spawn(Box::new(move |c: &mut dyn ThreadCtx| {
            for _ in 0..50 {
                c.mutex_lock(m); // refresh view
                let b = c.ld_u64(X + 8);
                let a = c.ld_u64(X);
                c.mutex_unlock(m);
                if b == 1 && a != 1 {
                    ok3.store(false, std::sync::atomic::Ordering::Relaxed);
                }
                c.tick(100);
            }
        }));
        let _ = (writer, reader);
        ctx.join(Tid(1));
        ctx.join(Tid(2));
    }));
    ok.load(std::sync::atomic::Ordering::Relaxed)
}

fn main() {
    println!("store-buffering litmus (SB), 10 runs:");
    let first = store_buffering();
    for run in 0..10 {
        let (r1, r2) = if run == 0 { first } else { store_buffering() };
        assert_eq!((r1, r2), first, "outcome must be deterministic");
        println!("  run {run}: r1={r1} r2={r2}");
    }
    println!(
        "  -> outcome ({}, {}) every single time; under TSO (0,0) is legal,\n     \
         and determinism pins it down.",
        first.0, first.1
    );

    println!("\nprogram-order (no store reordering), 10 runs:");
    for _ in 0..10 {
        assert!(
            program_order(),
            "TSO violation: observed B without A from the same thread"
        );
    }
    println!("  -> a thread's stores always became visible in program order ✓");
}
