//! Quickstart: a racy program that is nevertheless perfectly reproducible.
//!
//! Four threads do unsynchronized read-modify-write increments on one
//! shared counter. Under pthreads the result varies run to run; under
//! Consequence the data race is resolved deterministically (byte-level
//! last-writer-wins at commit points), so every run prints the same final
//! value, the same commit log, and even the same virtual runtime.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, Runtime, RuntimeMemExt, Tid};

const COUNTER: usize = 0;

fn one_run() -> (u64, u64, u64) {
    let mut opts = Options::consequence_ic();
    // Fixed overflow intervals make even the virtual runtime reproducible.
    opts.adaptive_overflow = false;
    let mut rt = ConsequenceRuntime::new(CommonConfig::default(), opts);
    let m = rt.create_mutex();

    let report = rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..4)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for j in 0..25u64 {
                        // An unsynchronized increment: racy on purpose.
                        let v = c.ld_u64(COUNTER);
                        c.tick(10 * (i + 1) + j);
                        c.st_u64(COUNTER, v + 1);
                        // A sync op so buffered writes commit.
                        c.mutex_lock(m);
                        c.mutex_unlock(m);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));

    (
        rt.final_u64(COUNTER),
        report.commit_log_hash,
        report.virtual_cycles,
    )
}

fn main() {
    println!("running the same racy program five times under Consequence-IC:");
    let first = one_run();
    for run in 0..5 {
        let (value, log, cycles) = if run == 0 { first } else { one_run() };
        println!(
            "  run {run}: counter = {value} (lost {} updates deterministically), \
             commit log = {log:016x}, virtual cycles = {cycles}",
            100 - value
        );
    }
    let again = one_run();
    assert_eq!(first, again, "Consequence must be deterministic");
    println!("deterministic: every run agreed bit-for-bit ✓");
}
