//! Ad-hoc synchronization and the §2.7 chunk limit.
//!
//! A thread spins on a flag that another thread sets — with no
//! synchronization operation in sight. Under a commit-at-sync-ops
//! deterministic runtime the spinner's view of memory never refreshes, so
//! it would spin forever. The paper's escape hatch is a per-chunk
//! instruction limit that forces a commit (and view refresh), at the cost
//! of higher communication latency as the limit grows.
//!
//! This example runs the same flag-passing program at several chunk limits
//! and prints the resulting deterministic virtual runtimes — the latency
//! trade-off of §2.7 made visible.
//!
//! ```text
//! cargo run --example adhoc_spin
//! ```

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, Runtime, RuntimeMemExt};

const FLAG: usize = 0;
const ECHO: usize = 8;

fn run(chunk_limit: u64) -> (u64, u64) {
    let mut opts = Options::consequence_ic();
    opts.chunk_limit = Some(chunk_limit);
    let mut rt = ConsequenceRuntime::new(CommonConfig::default(), opts);
    let report = rt.run(Box::new(move |ctx| {
        let spinner = ctx.spawn(Box::new(|c| {
            // Ad-hoc wait: no locks, no condvars — just a flag.
            while c.ld_u64(FLAG) == 0 {
                c.tick(20);
            }
            let v = c.ld_u64(FLAG);
            c.st_u64(ECHO, v * 2);
        }));
        ctx.tick(200_000); // the setter works for a while first
        ctx.st_u64(FLAG, 21);
        ctx.join(spinner);
    }));
    (rt.final_u64(ECHO), report.virtual_cycles)
}

fn main() {
    println!("flag passing through ad-hoc spinning, per §2.7 chunk limit:");
    for limit in [5_000u64, 20_000, 100_000, 500_000] {
        let (echo, cycles) = run(limit);
        assert_eq!(echo, 42, "the spinner must eventually see the flag");
        println!("  chunk limit {limit:>7}: virtual cycles {cycles:>9}");
    }
    println!(
        "\nsmaller limits commit (and refresh) more often: lower latency, more\n\
         overhead — the trade-off the paper leaves tuned per application.\n\
         without a limit this program would never terminate deterministically."
    );
}
