//! The §2.7 atomic-operation extension: deterministic runtimes restore
//! atomicity by performing the RMW under the global token with an
//! immediate commit. Lock-free counters and CAS loops must therefore be
//! exact under every runtime — and reproducible under the deterministic
//! ones.

use consequence_repro::dmt_api::{CommonConfig, CostModel, MemExt, Runtime, RuntimeMemExt, Tid};
use consequence_repro::dmt_baselines::{make_runtime, RuntimeKind};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn atomic_counter_program(rt: &mut dyn Runtime, threads: u64, iters: u64) -> u64 {
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..threads)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for _ in 0..iters {
                        c.atomic_fetch_add_u64(0, 1);
                        c.tick(37 * (i + 1));
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    rt.final_u64(0)
}

/// A lock-free counter loses no increments under any runtime — this is the
/// scenario §2.7 says plain stores would corrupt under isolation.
#[test]
fn atomic_counter_is_exact_under_all_runtimes() {
    for kind in RuntimeKind::ALL {
        let mut rt = make_runtime(kind, cfg());
        let got = atomic_counter_program(rt.as_mut(), 4, 25);
        assert_eq!(got, 100, "lost atomic increments under {}", kind.label());
    }
}

/// Deterministic runtimes also reproduce the *order* of atomic operations:
/// a ticket sequence recorded via fetch-add is identical across runs.
#[test]
fn atomic_ticket_order_is_deterministic() {
    for kind in [
        RuntimeKind::DThreads,
        RuntimeKind::Dwc,
        RuntimeKind::ConsequenceRr,
        RuntimeKind::ConsequenceIc,
    ] {
        let run = || {
            let mut rt = make_runtime(kind, cfg());
            rt.run(Box::new(move |ctx| {
                let kids: Vec<Tid> = (0..3u64)
                    .map(|i| {
                        ctx.spawn(Box::new(move |c| {
                            for _ in 0..8 {
                                c.tick(61 * (i + 1));
                                let ticket = c.atomic_fetch_add_u64(0, 1);
                                // Record who drew each ticket.
                                c.atomic_cas_u64(64 + 8 * ticket as usize, 0, i + 1);
                            }
                        }))
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            }));
            rt.final_hash(64, 8 * 24)
        };
        assert_eq!(run(), run(), "{} ticket order varies", kind.label());
    }
}

/// CAS loops implement a lock-free stack push counter: success/failure
/// results must be coherent (every success claims a unique value).
#[test]
fn cas_loop_claims_unique_slots() {
    for kind in [RuntimeKind::Pthreads, RuntimeKind::ConsequenceIc] {
        let mut rt = make_runtime(kind, cfg());
        rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4u64)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for _ in 0..10 {
                            // Claim the next slot index via CAS loop.
                            loop {
                                let cur = c.ld_u64(0);
                                if c.atomic_cas_u64(0, cur, cur + 1) == cur {
                                    // Record ownership in the claimed slot.
                                    c.atomic_cas_u64(128 + 8 * cur as usize, 0, i + 1);
                                    break;
                                }
                                c.tick(10);
                            }
                            c.tick(100);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        assert_eq!(rt.final_u64(0), 40, "{}", kind.label());
        for slot in 0..40usize {
            let owner = rt.final_u64(128 + 8 * slot);
            assert!(
                (1..=4).contains(&owner),
                "{}: slot {slot} has owner {owner}",
                kind.label()
            );
        }
    }
}

/// Atomics interact correctly with coarsening: a thread mid-coarsened-run
/// performing an atomic must still see and publish current values.
#[test]
fn atomics_compose_with_locks_and_coarsening() {
    let mut rt = make_runtime(RuntimeKind::ConsequenceIc, cfg());
    let m = rt.create_mutex();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3u64)
            .map(|_| {
                ctx.spawn(Box::new(move |c| {
                    for _ in 0..10 {
                        c.mutex_lock(m);
                        c.fetch_add_u64(8, 1); // plain locked counter
                        c.mutex_unlock(m);
                        c.atomic_fetch_add_u64(0, 1); // atomic counter
                        c.tick(25);
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    assert_eq!(rt.final_u64(0), 30);
    assert_eq!(rt.final_u64(8), 30);
}
