//! Cross-crate determinism matrix: every deterministic runtime must
//! reproduce outputs, commit logs and (for Consequence with fixed overflow)
//! virtual times bit-for-bit, and all five runtimes must agree on the
//! results of race-free programs.

use consequence_repro::consequence::{ConsequenceRuntime, Options};
use consequence_repro::dmt_api::{CommonConfig, CostModel, MemExt, Runtime, RuntimeMemExt, Tid};
use consequence_repro::dmt_baselines::{make_runtime, RuntimeKind};
use consequence_repro::dmt_workloads::{workload_by_name, Params};

fn cfg(pages: usize) -> CommonConfig {
    CommonConfig {
        heap_pages: pages,
        max_threads: 32,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// A mixed-primitive program: locks, a condvar hand-off, a barrier, racy
/// byte-level writes, and nested spawning.
fn mixed_program(rt: &mut dyn Runtime) -> (u64, consequence_repro::dmt_api::RunReport) {
    let m = rt.create_mutex();
    let flag_lock = rt.create_mutex();
    let c = rt.create_cond();
    let b = rt.create_barrier(3);
    rt.init_u64(0, 0);
    let report = rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3u64)
            .map(|i| {
                ctx.spawn(Box::new(move |t| {
                    // Racy single-byte writes to one shared page.
                    t.write_bytes(512 + (i as usize % 2), &[i as u8 + 1]);
                    t.tick(100 * (i + 1));
                    // Locked reduction.
                    t.mutex_lock(m);
                    let v = t.ld_u64(0);
                    t.st_u64(0, v + i + 1);
                    t.mutex_unlock(m);
                    t.barrier_wait(b);
                    // Condvar: wait for the main thread's go signal.
                    t.mutex_lock(flag_lock);
                    while t.ld_u64(8) == 0 {
                        t.cond_wait(c, flag_lock);
                    }
                    t.mutex_unlock(flag_lock);
                    t.fetch_add_u64(16 + 8 * i as usize, i + 7);
                }))
            })
            .collect();
        ctx.tick(5_000);
        ctx.mutex_lock(flag_lock);
        ctx.st_u64(8, 1);
        ctx.cond_broadcast(c);
        ctx.mutex_unlock(flag_lock);
        for k in kids {
            ctx.join(k);
        }
    }));
    (rt.final_hash(0, 4096), report)
}

#[test]
fn deterministic_runtimes_reproduce_mixed_program() {
    for kind in [
        RuntimeKind::DThreads,
        RuntimeKind::Dwc,
        RuntimeKind::ConsequenceRr,
        RuntimeKind::ConsequenceIc,
    ] {
        let run = || {
            let mut rt = make_runtime(kind, cfg(64));
            let (h, report) = mixed_program(rt.as_mut());
            (h, report.commit_log_hash)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{} not deterministic", kind.label());
    }
}

#[test]
fn race_free_outputs_agree_across_all_runtimes() {
    // The locked counter and the post-condvar cells are race-free: every
    // runtime (pthreads included) must produce the same values there.
    let mut expected: Option<(u64, Vec<u64>)> = None;
    for kind in RuntimeKind::ALL {
        let mut rt = make_runtime(kind, cfg(64));
        mixed_program(rt.as_mut());
        let counter = rt.final_u64(0);
        let cells: Vec<u64> = (0..3).map(|i| rt.final_u64(16 + 8 * i)).collect();
        assert_eq!(counter, 1 + 2 + 3, "{}", kind.label());
        match &expected {
            None => expected = Some((counter, cells)),
            Some((ec, es)) => {
                assert_eq!((counter, &cells), (*ec, es), "{}", kind.label());
            }
        }
    }
}

/// Consequence-IC with fixed overflow must reproduce its *virtual time*
/// exactly — the strongest determinism witness this workspace offers.
#[test]
fn virtual_time_reproducible_for_fixed_overflow_ic() {
    let run = || {
        let mut opts = Options::consequence_ic();
        opts.adaptive_overflow = false;
        let mut rt = ConsequenceRuntime::new(cfg(64), opts);
        let m = rt.create_mutex();
        let report = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4u64)
                .map(|i| {
                    ctx.spawn(Box::new(move |t| {
                        for j in 0..20 {
                            t.tick(137 * (i + 1) + j);
                            t.mutex_lock(m);
                            t.fetch_add_u64(0, 1);
                            t.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        (report.virtual_cycles, report.commit_log_hash)
    };
    assert_eq!(run(), run());
}

/// Workload kernels reproduce bit-identically under Consequence-IC across
/// five consecutive runs (catching low-probability races).
#[test]
fn repeated_kernel_runs_are_identical() {
    let p = Params::new(3, 1, 99);
    for name in ["canneal", "ferret"] {
        let w = workload_by_name(name).unwrap();
        let mut seen = None;
        for run in 0..3 {
            let mut rt = make_runtime(RuntimeKind::ConsequenceIc, cfg(w.heap_pages(&p)));
            let prepared = w.prepare(rt.as_mut(), &p);
            let report = rt.run(prepared.job);
            let v = (prepared.validate)(rt.as_ref());
            assert!(v.matches_reference, "{name} run {run}");
            let sig = (v.output_hash, report.commit_log_hash);
            match &seen {
                None => seen = Some(sig),
                Some(s) => assert_eq!(*s, sig, "{name} diverged on run {run}"),
            }
        }
    }
}

/// Every deterministic runtime's event-trace schedule hash is
/// bit-identical across three consecutive runs of the mixed program —
/// the paper's reproducibility claim, witnessed at event granularity
/// rather than only at final memory state.
#[test]
fn schedule_hashes_reproduce_for_deterministic_runtimes() {
    use consequence_repro::dmt_api::trace::HashSink;
    use consequence_repro::dmt_api::TraceHandle;
    use std::sync::Arc;
    for kind in [
        RuntimeKind::DThreads,
        RuntimeKind::Dwc,
        RuntimeKind::ConsequenceRr,
        RuntimeKind::ConsequenceIc,
    ] {
        let run = || {
            let mut c = cfg(64);
            c.trace = TraceHandle::to(Arc::new(HashSink::new()));
            let mut rt = make_runtime(kind, c);
            let (_, report) = mixed_program(rt.as_mut());
            (report.schedule_hash, report.events.total())
        };
        let (h0, n0) = run();
        assert_ne!(h0, 0, "{}: empty schedule hash", kind.label());
        assert!(n0 > 0, "{}: no events traced", kind.label());
        for i in 1..3 {
            let (h, n) = run();
            assert_eq!(h, h0, "{} hash diverged on run {i}", kind.label());
            // Counts include *auxiliary* events (overflow publications),
            // whose number is legitimately wall-clock-dependent — so only
            // the hash, which covers exactly the schedule events, is
            // asserted bit-identical.
            assert!(n > 0, "{}: no events traced on run {i}", kind.label());
        }
    }
}

/// pthreads is the negative control: it *emits* the same event
/// vocabulary, so its counts are populated, but its grant order is
/// whatever the OS scheduler produced — nothing may assert its hash
/// stable. Here we only check the instrumentation is live.
#[test]
fn pthreads_negative_control_emits_events() {
    use consequence_repro::dmt_api::trace::{EventKind, HashSink};
    use consequence_repro::dmt_api::TraceHandle;
    use std::sync::Arc;
    let mut c = cfg(64);
    c.trace = TraceHandle::to(Arc::new(HashSink::new()));
    let mut rt = make_runtime(RuntimeKind::Pthreads, c);
    let (_, report) = mixed_program(rt.as_mut());
    assert!(report.events.get(EventKind::MutexLock) > 0);
    assert!(report.events.get(EventKind::BarrierOpen) > 0);
    assert!(report.events.get(EventKind::Exit) > 0);
    assert_ne!(report.schedule_hash, 0);
}

/// Perturbing the program (one thread computes longer before each lock)
/// must change Consequence's schedule, and the diagnoser must pinpoint
/// the first divergent event between the recorded traces.
#[test]
fn diagnoser_pinpoints_perturbed_schedule() {
    use consequence_repro::dmt_api::trace::{diagnose, MemorySink};
    use consequence_repro::dmt_api::TraceHandle;
    use std::sync::Arc;
    let rec = |extra: u64| {
        let sink = Arc::new(MemorySink::new(1 << 16));
        let mut c = cfg(64);
        c.trace = TraceHandle::to(sink.clone());
        let mut rt = ConsequenceRuntime::new(c, Options::consequence_ic());
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..3u64)
                .map(|i| {
                    ctx.spawn(Box::new(move |t| {
                        let rate = 97 * (i + 1) + if i == 1 { extra } else { 0 };
                        for _ in 0..12 {
                            t.tick(rate);
                            t.mutex_lock(m);
                            t.fetch_add_u64(0, 1);
                            t.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        let (events, dropped) = sink.take();
        assert_eq!(dropped, 0);
        events
    };
    let base = rec(0);
    assert!(diagnose(&base, &rec(0)).is_none(), "same program diverged");
    let skewed = rec(10_000);
    let d = diagnose(&base, &skewed).expect("perturbation left schedule intact");
    assert_eq!(&base[..d.index], &skewed[..d.index], "prefix not common");
    assert!(
        d.left.is_some() || d.right.is_some(),
        "diagnosis names no event"
    );
}

/// Thread ids are assigned deterministically even with nested spawns.
#[test]
fn nested_spawn_tids_are_deterministic() {
    let run = || {
        let mut rt = ConsequenceRuntime::new(cfg(16), Options::consequence_ic());
        let mut tids = Vec::new();
        let report = rt.run(Box::new(|ctx| {
            let a = ctx.spawn(Box::new(|t| {
                let inner = t.spawn(Box::new(|u| u.tick(10)));
                t.join(inner);
                t.st_u64(0, inner.0 as u64);
            }));
            let b = ctx.spawn(Box::new(|t| t.tick(1_000)));
            ctx.join(a);
            ctx.join(b);
        }));
        tids.push(report.threads);
        (rt.final_u64(0), report.threads)
    };
    assert_eq!(run(), run());
}
