//! Cross-crate determinism matrix: every deterministic runtime must
//! reproduce outputs, commit logs and (for Consequence with fixed overflow)
//! virtual times bit-for-bit, and all five runtimes must agree on the
//! results of race-free programs.

use consequence_repro::consequence::{ConsequenceRuntime, Options};
use consequence_repro::dmt_api::{
    CommonConfig, CostModel, MemExt, Runtime, RuntimeMemExt, ThreadCtx, Tid,
};
use consequence_repro::dmt_baselines::{make_runtime, RuntimeKind};
use consequence_repro::dmt_workloads::{workload_by_name, Params};

fn cfg(pages: usize) -> CommonConfig {
    CommonConfig {
        heap_pages: pages,
        max_threads: 32,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
    }
}

/// A mixed-primitive program: locks, a condvar hand-off, a barrier, racy
/// byte-level writes, and nested spawning.
fn mixed_program(rt: &mut dyn Runtime) -> (u64, u64) {
    let m = rt.create_mutex();
    let flag_lock = rt.create_mutex();
    let c = rt.create_cond();
    let b = rt.create_barrier(3);
    rt.init_u64(0, 0);
    let report = rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = (0..3u64)
            .map(|i| {
                ctx.spawn(Box::new(move |t| {
                    // Racy single-byte writes to one shared page.
                    t.write_bytes(512 + (i as usize % 2), &[i as u8 + 1]);
                    t.tick(100 * (i + 1));
                    // Locked reduction.
                    t.mutex_lock(m);
                    let v = t.ld_u64(0);
                    t.st_u64(0, v + i + 1);
                    t.mutex_unlock(m);
                    t.barrier_wait(b);
                    // Condvar: wait for the main thread's go signal.
                    t.mutex_lock(flag_lock);
                    while t.ld_u64(8) == 0 {
                        t.cond_wait(c, flag_lock);
                    }
                    t.mutex_unlock(flag_lock);
                    t.fetch_add_u64(16 + 8 * i as usize, i + 7);
                }))
            })
            .collect();
        ctx.tick(5_000);
        ctx.mutex_lock(flag_lock);
        ctx.st_u64(8, 1);
        ctx.cond_broadcast(c);
        ctx.mutex_unlock(flag_lock);
        for k in kids {
            ctx.join(k);
        }
    }));
    (rt.final_hash(0, 4096), report.commit_log_hash)
}

#[test]
fn deterministic_runtimes_reproduce_mixed_program() {
    for kind in [
        RuntimeKind::DThreads,
        RuntimeKind::Dwc,
        RuntimeKind::ConsequenceRr,
        RuntimeKind::ConsequenceIc,
    ] {
        let run = || {
            let mut rt = make_runtime(kind, cfg(64));
            mixed_program(rt.as_mut())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{} not deterministic", kind.label());
    }
}

#[test]
fn race_free_outputs_agree_across_all_runtimes() {
    // The locked counter and the post-condvar cells are race-free: every
    // runtime (pthreads included) must produce the same values there.
    let mut expected: Option<(u64, Vec<u64>)> = None;
    for kind in RuntimeKind::ALL {
        let mut rt = make_runtime(kind, cfg(64));
        mixed_program(rt.as_mut());
        let counter = rt.final_u64(0);
        let cells: Vec<u64> = (0..3).map(|i| rt.final_u64(16 + 8 * i)).collect();
        assert_eq!(counter, 1 + 2 + 3, "{}", kind.label());
        match &expected {
            None => expected = Some((counter, cells)),
            Some((ec, es)) => {
                assert_eq!((counter, &cells), (*ec, es), "{}", kind.label());
            }
        }
    }
}

/// Consequence-IC with fixed overflow must reproduce its *virtual time*
/// exactly — the strongest determinism witness this workspace offers.
#[test]
fn virtual_time_reproducible_for_fixed_overflow_ic() {
    let run = || {
        let mut opts = Options::consequence_ic();
        opts.adaptive_overflow = false;
        let mut rt = ConsequenceRuntime::new(cfg(64), opts);
        let m = rt.create_mutex();
        let report = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4u64)
                .map(|i| {
                    ctx.spawn(Box::new(move |t| {
                        for j in 0..20 {
                            t.tick(137 * (i + 1) + j);
                            t.mutex_lock(m);
                            t.fetch_add_u64(0, 1);
                            t.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        (report.virtual_cycles, report.commit_log_hash)
    };
    assert_eq!(run(), run());
}

/// Workload kernels reproduce bit-identically under Consequence-IC across
/// five consecutive runs (catching low-probability races).
#[test]
fn repeated_kernel_runs_are_identical() {
    let p = Params::new(3, 1, 99);
    for name in ["canneal", "ferret"] {
        let w = workload_by_name(name).unwrap();
        let mut seen = None;
        for run in 0..3 {
            let mut rt = make_runtime(RuntimeKind::ConsequenceIc, cfg(w.heap_pages(&p)));
            let prepared = w.prepare(rt.as_mut(), &p);
            let report = rt.run(prepared.job);
            let v = (prepared.validate)(rt.as_ref());
            assert!(v.matches_reference, "{name} run {run}");
            let sig = (v.output_hash, report.commit_log_hash);
            match &seen {
                None => seen = Some(sig),
                Some(s) => assert_eq!(*s, sig, "{name} diverged on run {run}"),
            }
        }
    }
}

/// Thread ids are assigned deterministically even with nested spawns.
#[test]
fn nested_spawn_tids_are_deterministic() {
    let run = || {
        let mut rt = ConsequenceRuntime::new(cfg(16), Options::consequence_ic());
        let mut tids = Vec::new();
        let report = rt.run(Box::new(|ctx| {
            let a = ctx.spawn(Box::new(|t| {
                let inner = t.spawn(Box::new(|u| u.tick(10)));
                t.join(inner);
                t.st_u64(0, inner.0 as u64);
            }));
            let b = ctx.spawn(Box::new(|t| t.tick(1_000)));
            ctx.join(a);
            ctx.join(b);
        }));
        tids.push(report.threads);
        (rt.final_u64(0), report.threads)
    };
    assert_eq!(run(), run());
}
