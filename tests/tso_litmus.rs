//! TSO litmus suite: SB, MP, LB and IRIW shapes across the deterministic
//! runtimes and a hand-rolled sequential (SC) reference executor.
//!
//! Consequence's isolation acts as a software store buffer: a thread's
//! stores sit in its workspace until commit, so the memory model presented
//! to racing threads is total store order (the paper's §3). Each shape
//! below pins one TSO guarantee:
//!
//! * **SB** (store buffering): `r1 = r2 = 0` is *allowed* — the one
//!   relaxation TSO adds over SC — and Consequence actually exhibits it.
//! * **MP** (message passing): seeing the flag implies seeing the data;
//!   stores from one thread are never reordered.
//! * **LB** (load buffering): `r1 = r2 = 1` is forbidden; loads are never
//!   reordered after program-order-later stores.
//! * **IRIW**: two readers never disagree on the order of independent
//!   writes; commit order is a total store order.
//!
//! Every (shape, runtime) cell runs under ≥ 3 perturbation seeds. For the
//! deterministic runtimes the outcome must be identical per seed *and*
//! across seeds (physical jitter must not move the schedule — the same
//! invariance `dmt-stress` checks). The sequential executor interleaves
//! op-by-op under a seeded LCG: every SC outcome is TSO-allowed, so it
//! doubles as a sanity check that the allowed-sets are not vacuous.

use consequence_repro::dmt_api::{
    CommonConfig, CostModel, PerturbHandle, PlanPerturber, RuntimeMemExt, ThreadCtx, Tid,
    TraceHandle,
};
use consequence_repro::dmt_baselines::{make_runtime, RuntimeKind};

/// One memory operation of a litmus thread. Locations are abstract indices
/// (mapped to distinct pages); registers land in a result area read back
/// after the run.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Store `value` to location.
    St(usize, u64),
    /// Load location into register.
    Ld(usize, usize),
}

struct Litmus {
    name: &'static str,
    threads: &'static [&'static [Op]],
    nregs: usize,
    /// Whether a register assignment is TSO-allowed.
    allowed: fn(&[u64]) -> bool,
}

use Op::{Ld, St};

const SB: Litmus = Litmus {
    name: "SB",
    threads: &[&[St(0, 1), Ld(1, 0)], &[St(1, 1), Ld(0, 1)]],
    nregs: 2,
    // TSO allows all four outcomes, including the (0,0) relaxation.
    allowed: |r| r[0] <= 1 && r[1] <= 1,
};

const MP: Litmus = Litmus {
    name: "MP",
    // T0: data = 1; flag = 1.   T1: r0 = flag; r1 = data.
    threads: &[&[St(0, 1), St(1, 1)], &[Ld(1, 0), Ld(0, 1)]],
    nregs: 2,
    // Forbidden: saw the flag but not the data.
    allowed: |r| !(r[0] == 1 && r[1] == 0),
};

const LB: Litmus = Litmus {
    name: "LB",
    // T0: r0 = X; Y = 1.   T1: r1 = Y; X = 1.
    threads: &[&[Ld(0, 0), St(1, 1)], &[Ld(1, 1), St(0, 1)]],
    nregs: 2,
    // Forbidden: both loads observe the other thread's later store.
    allowed: |r| !(r[0] == 1 && r[1] == 1),
};

const IRIW: Litmus = Litmus {
    name: "IRIW",
    // T0: X = 1.  T1: Y = 1.  T2: r0 = X; r1 = Y.  T3: r2 = Y; r3 = X.
    threads: &[
        &[St(0, 1)],
        &[St(1, 1)],
        &[Ld(0, 0), Ld(1, 1)],
        &[Ld(1, 2), Ld(0, 3)],
    ],
    nregs: 4,
    // Forbidden: the readers disagree on the order of the two writes.
    allowed: |r| !(r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0),
};

const SHAPES: [&Litmus; 4] = [&SB, &MP, &LB, &IRIW];
const SEEDS: [u64; 3] = [0x5eed1, 0x5eed2, 0x5eed3];

/// Locations live on distinct pages so page merging cannot couple them;
/// registers live on one further page at disjoint 8-byte slots (racy
/// byte-disjoint writes merge deterministically).
const PAGE: usize = 4096;
const REG_BASE: usize = 8 * PAGE;

fn cfg(perturb: PerturbHandle) -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 8,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace: TraceHandle::off(),
        perturb,
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// Runs `lit` on a real runtime; returns the register file.
fn run_on(kind: RuntimeKind, lit: &Litmus, seed: u64) -> Vec<u64> {
    let mut rt = make_runtime(kind, cfg(PlanPerturber::handle(seed)));
    let progs: Vec<Vec<Op>> = lit.threads.iter().map(|t| t.to_vec()).collect();
    rt.run(Box::new(move |ctx| {
        let kids: Vec<Tid> = progs
            .into_iter()
            .map(|prog| {
                ctx.spawn(Box::new(move |c: &mut dyn ThreadCtx| {
                    for op in &prog {
                        match *op {
                            St(loc, v) => {
                                c.st_u64(loc * PAGE, v);
                            }
                            Ld(loc, reg) => {
                                let v = c.ld_u64(loc * PAGE);
                                c.st_u64(REG_BASE + reg * 8, v);
                            }
                        }
                    }
                }))
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    }));
    (0..lit.nregs)
        .map(|r| rt.final_u64(REG_BASE + r * 8))
        .collect()
}

/// Hand-rolled sequential reference executor: one global memory, threads
/// interleaved op-by-op under a seeded LCG. Every schedule it can produce
/// is sequentially consistent.
fn run_sequential(lit: &Litmus, seed: u64) -> Vec<u64> {
    let mut mem = [0u64; 8];
    let mut regs = vec![0u64; lit.nregs];
    let mut pc = vec![0usize; lit.threads.len()];
    let mut rng = seed.wrapping_mul(2) + 1;
    loop {
        let runnable: Vec<usize> = (0..lit.threads.len())
            .filter(|&t| pc[t] < lit.threads[t].len())
            .collect();
        if runnable.is_empty() {
            return regs;
        }
        rng = rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let t = runnable[((rng >> 33) as usize) % runnable.len()];
        match lit.threads[t][pc[t]] {
            St(loc, v) => mem[loc] = v,
            Ld(loc, reg) => regs[reg] = mem[loc],
        }
        pc[t] += 1;
    }
}

const RUNTIMES: [RuntimeKind; 3] = [
    RuntimeKind::DThreads,
    RuntimeKind::ConsequenceRr,
    RuntimeKind::ConsequenceIc,
];

#[test]
fn litmus_outcomes_are_tso_allowed_and_deterministic() {
    for lit in SHAPES {
        for kind in RUNTIMES {
            let mut across_seeds: Option<Vec<u64>> = None;
            for seed in SEEDS {
                let a = run_on(kind, lit, seed);
                let b = run_on(kind, lit, seed);
                assert_eq!(
                    a, b,
                    "{} on {kind:?} seed {seed:#x}: outcome not deterministic",
                    lit.name
                );
                assert!(
                    (lit.allowed)(&a),
                    "{} on {kind:?} seed {seed:#x}: TSO-forbidden outcome {a:?}",
                    lit.name
                );
                match &across_seeds {
                    None => across_seeds = Some(a),
                    Some(first) => assert_eq!(
                        &a, first,
                        "{} on {kind:?}: perturbation seed moved the outcome",
                        lit.name
                    ),
                }
            }
        }
    }
}

#[test]
fn sequential_reference_stays_within_tso_sets() {
    for lit in SHAPES {
        for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            let a = run_sequential(lit, seed);
            assert_eq!(a, run_sequential(lit, seed), "SC executor must replay");
            assert!(
                (lit.allowed)(&a),
                "{} sequential seed {seed}: outcome {a:?} outside TSO set \
                 (SC ⊆ TSO, so the allowed-set predicate is wrong)",
                lit.name
            );
        }
    }
}

#[test]
fn sb_relaxation_is_exercised_under_consequence() {
    // The one outcome TSO adds over SC: both loads miss both stores. Under
    // Consequence each thread loads from its isolated snapshot taken
    // before either commit, so (0, 0) is not merely allowed, it is the
    // deterministic outcome.
    for seed in SEEDS {
        let r = run_on(RuntimeKind::ConsequenceIc, &SB, seed);
        assert_eq!(
            r,
            vec![0, 0],
            "expected the TSO store-buffering relaxation under consequence-ic"
        );
    }
    // And no SC interleaving of SB can produce it, which is exactly what
    // makes it the distinguishing outcome.
    for seed in 1u64..=16 {
        let r = run_sequential(&SB, seed);
        assert_ne!(r, vec![0, 0], "SC cannot produce the SB relaxation");
    }
}
