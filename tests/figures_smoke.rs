//! Smoke tests for the figure harness: tiny configurations of every figure
//! must produce structurally sane data (the full-resolution data comes from
//! the `figures` binary; see EXPERIMENTS.md).

use dmt_bench::{fig10, fig11, fig12, fig13, fig14, fig15, fig16, Bench, OPTIMIZATIONS};

fn quick() -> Bench {
    Bench {
        pthreads_reps: 1,
        ..Bench::default()
    }
}

#[test]
fn fig10_smoke_rows_are_sane() {
    let rows = fig10(&quick(), &[2], &["histogram", "water_nsquared"]);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        for v in [r.dthreads, r.dwc, r.consequence_rr, r.consequence_ic] {
            assert!(v.is_finite() && v > 0.5, "{r:?}");
        }
    }
    // The headline pathology must appear even at smoke scale: round-robin
    // systems collapse on mismatched sync rates, Consequence-IC does not.
    let wn = rows
        .iter()
        .find(|r| r.benchmark == "water_nsquared")
        .unwrap();
    assert!(
        wn.dthreads > 2.0 * wn.consequence_ic,
        "water_nsquared should separate DThreads from Consequence-IC: {wn:?}"
    );
}

#[test]
fn fig11_smoke_has_all_series() {
    let pts = fig11(&quick(), &[1, 2], &["kmeans"]);
    assert_eq!(pts.len(), 5 * 2);
    assert!(pts.iter().all(|p| p.normalized.is_finite()));
}

#[test]
fn fig12_smoke_peak_pages_positive() {
    let pts = fig12(&quick(), &[2], &["canneal"]);
    assert_eq!(pts.len(), 2);
    assert!(pts.iter().all(|p| p.peak_pages > 0));
}

#[test]
fn fig13_smoke_covers_all_optimizations() {
    let bars = fig13(&quick(), 2, &["kmeans"]);
    assert_eq!(bars.len(), OPTIMIZATIONS.len());
    for bar in &bars {
        assert!(bar.speedup.is_finite() && bar.speedup > 0.2, "{bar:?}");
    }
}

#[test]
fn fig14_smoke_adaptive_and_static_levels() {
    let pts = fig14(&quick(), 2, &["reverse_index"], &[4_096, 262_144]);
    assert_eq!(pts.len(), 3);
    assert_eq!(pts.iter().filter(|p| p.level.is_none()).count(), 1);
    assert!(pts.iter().all(|p| p.virtual_cycles > 0));
}

#[test]
fn fig15_smoke_breakdowns_total_to_runtime() {
    let bars = fig15(&quick(), 2, &["ocean_cp"]);
    assert_eq!(bars.len(), 3);
    for bar in &bars {
        assert!(bar.breakdown.total() > 0, "{bar:?}");
    }
    // The deterministic runtimes must show determinism overhead categories
    // pthreads cannot have.
    let dwc = bars.iter().find(|b| b.runtime == "dwc").unwrap();
    assert!(dwc.breakdown.commit > 0);
    let pt = bars.iter().find(|b| b.runtime == "pthreads").unwrap();
    assert_eq!(pt.breakdown.commit, 0);
}

#[test]
fn fig16_smoke_lrc_bounded_by_tso() {
    for row in fig16(&quick(), 2, &["radix", "word_count"]) {
        assert!(row.lrc_pages <= row.tso_pages, "{row:?}");
        assert!(row.tso_pages > 0, "{row:?}");
    }
}
