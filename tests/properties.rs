//! Property-style tests over the substrates, at the integration level:
//! arbitrary write patterns through Conversion must behave like a flat
//! memory under sequential application, parallel barrier commits must equal
//! serial commits, and the token order must equal the sort order of
//! `(clock, tid)` pairs.
//!
//! Originally `proptest` properties; now scripted pseudo-random cases from
//! a local LCG so the workspace builds with no external dependencies.

use consequence_repro::conversion::{ParallelCommit, Segment};
use consequence_repro::det_clock::{ClockTable, OrderPolicy};
use consequence_repro::dmt_api::{Tid, PAGE_SIZE};

/// Deterministic LCG (MMIX constants) driving case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A scripted write: thread, address, value.
#[derive(Clone, Debug)]
struct W {
    t: usize,
    addr: usize,
    val: u8,
}

fn gen_writes(rng: &mut Rng, threads: usize, pages: usize) -> Vec<W> {
    let len = rng.below(60) as usize;
    (0..len)
        .map(|_| W {
            t: rng.below(threads as u64) as usize,
            addr: rng.below((pages * PAGE_SIZE) as u64) as usize,
            val: rng.next() as u8,
        })
        .collect()
}

/// Round-robin of writes with a commit+update after every write is
/// equivalent to applying the writes to a flat array in that order.
#[test]
fn committed_writes_apply_in_commit_order() {
    let mut rng = Rng(0xD4_D4_D4);
    for _ in 0..64 {
        let ws = gen_writes(&mut rng, 3, 2);
        let seg = Segment::new(2, 4);
        let mut spaces: Vec<_> = (0..3).map(|t| seg.new_workspace(Tid(t)).0).collect();
        let mut flat = vec![0u8; 2 * PAGE_SIZE];
        for w in &ws {
            spaces[w.t].write_bytes(w.addr, &[w.val]);
            seg.commit(&mut spaces[w.t], None);
            seg.update(&mut spaces[w.t]);
            flat[w.addr] = w.val;
        }
        let mut got = vec![0u8; 2 * PAGE_SIZE];
        seg.read_latest(0, &mut got);
        assert_eq!(got, flat);
    }
}

/// Uncommitted writes are invisible to other workspaces (isolation),
/// and visible to the writer (its own store buffer).
#[test]
fn isolation_until_commit() {
    let mut rng = Rng(0xE5_E5_E5);
    for _ in 0..64 {
        let ws = gen_writes(&mut rng, 2, 2);
        let seg = Segment::new(2, 4);
        let mut a = seg.new_workspace(Tid(0)).0;
        let b = seg.new_workspace(Tid(1)).0;
        let mut mine = vec![0u8; 2 * PAGE_SIZE];
        for w in ws.iter().filter(|w| w.t == 0) {
            a.write_bytes(w.addr, &[w.val]);
            mine[w.addr] = w.val;
        }
        // The writer sees its own writes…
        let mut got = vec![0u8; 2 * PAGE_SIZE];
        a.read_bytes(0, &mut got);
        assert_eq!(&got, &mine);
        // …the other workspace sees none of them.
        let mut other = vec![0u8; 2 * PAGE_SIZE];
        b.read_bytes(0, &mut other);
        assert_eq!(other, vec![0u8; 2 * PAGE_SIZE]);
    }
}

/// A parallel two-phase barrier commit produces exactly the same final
/// memory as committing each workspace serially in the same order.
#[test]
fn parallel_commit_equals_serial() {
    let mut rng = Rng(0xF6_F6_F6);
    for _ in 0..64 {
        let ws = gen_writes(&mut rng, 4, 3);
        let apply = |parallel: bool| {
            let seg = Segment::new(3, 8);
            let mut spaces: Vec<_> = (0..4).map(|t| seg.new_workspace(Tid(t)).0).collect();
            for w in &ws {
                spaces[w.t].write_bytes(w.addr, &[w.val]);
            }
            if parallel {
                let pc = ParallelCommit::new();
                for s in spaces.iter_mut() {
                    pc.register(&seg, s, None);
                }
                pc.seal(&seg);
                for i in 0..4 {
                    pc.merge_for(i);
                }
                pc.install(&seg);
            } else {
                for s in spaces.iter_mut() {
                    seg.commit(s, None);
                }
            }
            let mut out = vec![0u8; 3 * PAGE_SIZE];
            seg.read_latest(0, &mut out);
            out
        };
        assert_eq!(apply(true), apply(false));
    }
}

/// Token grants under instruction-count ordering equal sorting the
/// requests by `(clock, tid)`: simulate a set of one-shot sync requests
/// and grant greedily.
#[test]
fn ic_token_order_sorts_by_clock_then_tid() {
    let mut rng = Rng(0x17_17_17);
    for _ in 0..64 {
        let n = 2 + rng.below(6) as usize;
        let clocks: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut table = ClockTable::new(OrderPolicy::InstructionCount, n);
        for (i, &c) in clocks.iter().enumerate() {
            table.register(Tid(i as u32), c, 0);
            table.arrive_sync(Tid(i as u32), c, 0);
        }
        let mut granted = Vec::new();
        let mut done = vec![false; n];
        for _ in 0..n {
            let who = (0..n)
                .find(|&i| !done[i] && table.eligible(Tid(i as u32)))
                .expect("someone must be eligible");
            granted.push(who);
            done[who] = true;
            table.finish(Tid(who as u32), 0);
        }
        let mut expect: Vec<usize> = (0..n).collect();
        expect.sort_by_key(|&i| (clocks[i], i));
        assert_eq!(granted, expect);
    }
}

/// Byte merging is lossless for disjoint writers regardless of commit
/// order: both orders produce the same bytes at every written address.
#[test]
fn disjoint_commits_commute() {
    let mut rng = Rng(0x28_28_28);
    for _ in 0..64 {
        let ws = gen_writes(&mut rng, 2, 1);
        // Deduplicate addresses so the two threads write disjoint bytes.
        let mut seen = std::collections::HashSet::new();
        let disjoint: Vec<W> = ws.into_iter().filter(|w| seen.insert(w.addr)).collect();
        let run = |order: [usize; 2]| {
            let seg = Segment::new(1, 2);
            let mut spaces: Vec<_> = (0..2).map(|t| seg.new_workspace(Tid(t)).0).collect();
            for w in &disjoint {
                spaces[w.t].write_bytes(w.addr, &[w.val]);
            }
            for &t in &order {
                seg.commit(&mut spaces[t], None);
            }
            let mut out = vec![0u8; PAGE_SIZE];
            seg.read_latest(0, &mut out);
            out
        };
        assert_eq!(run([0, 1]), run([1, 0]));
    }
}

/// The resource witness's bounds are *tight*, not decorative: an
/// envelope learned from a healthy run (default collector budget) must
/// be tripped by the same workload under a stalled collector
/// (`gc_budget: 0` — the paper's Figure 12 "collector cannot keep up"
/// regime, where version chains grow without trim). A witness that
/// blesses that run would also bless a real leak.
#[test]
fn witness_envelope_is_tight_against_a_stalled_collector() {
    use consequence_repro::consequence::{ConsequenceRuntime, Options};
    use consequence_repro::dmt_api::{
        CommonConfig, CostModel, PerturbHandle, ResourceBounds, ResourceWitness, Runtime,
        TraceHandle, WitnessHandle,
    };
    use consequence_repro::dmt_workloads::{workload_by_name, Params};

    // A commit-heavy workload: the server commits once per served
    // request, so a stalled collector's chain growth is visible within
    // one run (histogram commits only once per worker — too few).
    let run = |gc_budget: usize, witness: WitnessHandle| {
        let w = workload_by_name("dmt_server").unwrap();
        let p = Params::new(4, 1, 42);
        let cfg = CommonConfig {
            heap_pages: w.heap_pages(&p),
            max_threads: 8,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget,
            trace: TraceHandle::off(),
            perturb: PerturbHandle::off(),
            witness,
        };
        let mut rt = ConsequenceRuntime::new(cfg, Options::consequence_ic());
        let prepared = w.prepare(&mut rt, &p);
        rt.run(prepared.job);
    };

    // Learn the healthy envelope, exactly as the soak harness does.
    let probe = ResourceWitness::new(ResourceBounds::unbounded());
    run(4, WitnessHandle::to(std::sync::Arc::clone(&probe)));
    let healthy = probe.summary();
    assert!(healthy.samples > 0, "witness never sampled");
    let bound = healthy.maxima.retained_versions * 2 + 8;

    // The same run under a dead collector must cross it.
    let witness = ResourceWitness::new(ResourceBounds {
        max_retained_versions: bound,
        ..ResourceBounds::unbounded()
    });
    run(0, WitnessHandle::to(std::sync::Arc::clone(&witness)));
    let leaked = witness.summary();
    assert!(
        !leaked.within_bounds() && leaked.violation_count > 0,
        "stalled-collector run stayed inside the healthy envelope \
         (peak {} vs bound {bound}): the witness bound is not tight",
        leaked.maxima.retained_versions
    );
    assert!(
        leaked.maxima.retained_versions > bound,
        "violation recorded but the retained-versions gauge never crossed"
    );
    assert!(
        leaked
            .violations
            .iter()
            .any(|v| v.contains("retained_versions")),
        "violations do not name the leaking gauge: {:?}",
        leaked.violations
    );
}

/// The pipeline-backlog gauge is tight the same way: an envelope learned
/// from a healthy settle pool (default two workers) must be tripped by
/// the same program under a stalled pool (`pipeline_workers: 0` — every
/// settle and GC job queues until the teardown flush). A witness that
/// blesses that run would also bless a settle pool leaking background
/// memory. The program keeps each thread on its own pages so every
/// commit is merge-free: nothing ever blocks on an unsettled shell, the
/// backlog is pure deferred bookkeeping.
#[test]
fn witness_envelope_is_tight_against_a_stalled_settle_pool() {
    use consequence_repro::consequence::{ConsequenceRuntime, Options};
    use consequence_repro::dmt_api::{
        CommonConfig, CostModel, PerturbHandle, ResourceBounds, ResourceWitness, Runtime,
        TraceHandle, WitnessHandle,
    };

    let run = |workers: usize, witness: WitnessHandle| {
        let cfg = CommonConfig {
            heap_pages: 16,
            max_threads: 8,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget: 4,
            trace: TraceHandle::off(),
            perturb: PerturbHandle::off(),
            witness,
        };
        // Coarsening off: one commit per sync op, so the stalled pool's
        // queue growth is proportional to lock traffic, not to however
        // few chunks the adaptive policy settled on.
        let mut opts = Options::consequence_ic().without("coarsening");
        opts.pipeline_workers = workers;
        let mut rt = ConsequenceRuntime::new(cfg, opts);
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let kids: Vec<_> = (1..4usize)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for j in 0..30u64 {
                            c.tick(100);
                            c.mutex_lock(m);
                            // Disjoint pages per thread: merge-free.
                            c.st_u64(4096 * (i * 4) + 8 * (j as usize % 4), j);
                            c.mutex_unlock(m);
                        }
                    }))
                })
                .collect();
            for j in 0..30u64 {
                ctx.tick(100);
                ctx.mutex_lock(m);
                ctx.st_u64(8 * (j as usize % 4), j);
                ctx.mutex_unlock(m);
            }
            for k in kids {
                ctx.join(k);
            }
        }));
    };

    // Learn the healthy envelope, exactly as the soak harness does.
    let probe = ResourceWitness::new(ResourceBounds::unbounded());
    run(2, WitnessHandle::to(std::sync::Arc::clone(&probe)));
    let healthy = probe.summary();
    assert!(healthy.samples > 0, "witness never sampled");
    let bound = healthy.maxima.pipeline_backlog * 2 + 8;

    // The same program under a stalled pool must cross it.
    let witness = ResourceWitness::new(ResourceBounds {
        max_pipeline_backlog: bound,
        ..ResourceBounds::unbounded()
    });
    run(0, WitnessHandle::to(std::sync::Arc::clone(&witness)));
    let stalled = witness.summary();
    assert!(
        !stalled.within_bounds() && stalled.violation_count > 0,
        "stalled-pool run stayed inside the healthy envelope \
         (peak {} vs bound {bound}): the witness bound is not tight",
        stalled.maxima.pipeline_backlog
    );
    assert!(
        stalled.maxima.pipeline_backlog > bound,
        "violation recorded but the pipeline-backlog gauge never crossed"
    );
    assert!(
        stalled
            .violations
            .iter()
            .any(|v| v.contains("pipeline_backlog")),
        "violations do not name the backlogged gauge: {:?}",
        stalled.violations
    );
}
