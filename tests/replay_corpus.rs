//! Persistent record/replay: round trips through the on-disk container,
//! replay of the committed trace corpus, and divergence detection on a
//! tampered recording. See `docs/TRACE_FORMAT.md` and `docs/REPLAY.md`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use dmt_api::trace::Event;
use dmt_bench::replay::{record_to, replay_file, trace_files};
use dmt_trace::Trace;

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dmtrace-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Record a run, replay it, and require a complete match: schedule
/// length, every event, every checkpoint, final hash, output and commit
/// log.
#[test]
fn record_then_replay_reproduces_the_run() {
    let dir = Scratch::new("roundtrip");
    let rec = record_to(&dir.0, "consequence-ic", "histogram", 4, 1, 42).unwrap();
    assert!(rec.validated, "recorded run failed output validation");
    assert!(rec.events > 0);

    let rep = replay_file(Path::new(&rec.path)).unwrap();
    assert!(
        rep.ok(),
        "replay diverged: {}",
        rep.divergence.as_deref().unwrap_or("(no diagnosis)")
    );
    assert_eq!(rep.replayed_hash, rec.schedule_hash);
    assert_eq!(rep.replayed_events, rec.events);
    assert_eq!(rep.checkpoints_passed, rep.checkpoints_total);
}

/// Replay applies across presets: round-robin ordering and DWC replay
/// just as instruction-count does.
#[test]
fn record_then_replay_other_presets() {
    let dir = Scratch::new("presets");
    for runtime in ["consequence-rr", "dwc"] {
        let rec = record_to(&dir.0, runtime, "kmeans", 4, 1, 42).unwrap();
        let rep = replay_file(Path::new(&rec.path)).unwrap();
        assert!(
            rep.ok(),
            "{runtime} replay diverged: {}",
            rep.divergence.as_deref().unwrap_or("(no diagnosis)")
        );
    }
}

/// Tampering with one recorded event must be caught, and the diagnosis
/// must name exactly the tampered event index.
#[test]
fn tampered_trace_diverges_at_the_tampered_event() {
    let dir = Scratch::new("tamper");
    let rec = record_to(&dir.0, "consequence-ic", "histogram", 4, 1, 42).unwrap();

    let mut trace = Trace::open(&rec.path).unwrap();
    // Bump the clock of a mid-trace token acquisition: the grant order
    // (and so the replay's course) is unchanged, but the recorded event
    // no longer matches what the re-execution emits.
    let target = trace
        .events
        .iter()
        .enumerate()
        .skip(trace.events.len() / 2)
        .find_map(|(i, ev)| matches!(ev, Event::TokenAcquire { .. }).then_some(i))
        .expect("no token acquisition in the second half of the trace");
    if let Event::TokenAcquire { clock, .. } = &mut trace.events[target] {
        *clock += 1;
    }
    let tampered = dir.0.join("tampered.dmtrace");
    trace.save(&tampered).unwrap();

    let rep = replay_file(&tampered).unwrap();
    assert!(!rep.ok(), "tampered trace replayed clean");
    let diag = rep.divergence.expect("divergence carried no diagnosis");
    assert!(
        diag.contains(&format!("diverge at event #{target}")),
        "diagnosis does not name event #{target}:\n{diag}"
    );
}

/// Sharded containers round-trip too: record a 2-domain server run,
/// replay it through the same dispatch the corpus uses, and require the
/// canonical per-domain event streams to match completely.
#[test]
fn sharded_record_then_replay_reproduces_the_run() {
    let dir = Scratch::new("sharded");
    let path = dir.0.join("dmt_server-sharded-ic-2-t2-s1.dmtrace");
    let (meta, _) =
        dmt_shard::record_server_trace(2, 2, dmt_workloads::Params::new(2, 1, 42), &path).unwrap();
    assert_eq!(meta.runtime, "sharded-ic-2");
    assert!(meta.event_count > 0);

    let rep = replay_file(&path).unwrap();
    assert!(
        rep.ok(),
        "sharded replay diverged: {}",
        rep.divergence.as_deref().unwrap_or("(no diagnosis)")
    );
    assert_eq!(rep.recorded_hash, meta.schedule_hash);
    assert_eq!(rep.replayed_events, meta.event_count);
    assert_eq!(rep.checkpoints_passed, rep.checkpoints_total);
}

/// Tampering with a sharded recording must be caught, and the diagnosis
/// must name *both* coordinates of the divergence: the index in the
/// canonical `(domain, event)` stream and the shard domain it lives in.
/// Either alone is unactionable — the index without the domain doesn't
/// say whose token order broke, the domain without the index doesn't say
/// where to look.
#[test]
fn tampered_sharded_trace_names_the_divergent_domain() {
    let dir = Scratch::new("sharded-tamper");
    let path = dir.0.join("dmt_server-sharded-ic-2-t2-s1.dmtrace");
    dmt_shard::record_server_trace(2, 2, dmt_workloads::Params::new(2, 1, 42), &path).unwrap();

    let mut trace = Trace::open(&path).unwrap();
    // Tamper inside domain D1's slice of the canonical stream.
    let target = trace
        .domains
        .iter()
        .zip(trace.events.iter())
        .position(|(d, ev)| *d == dmt_api::DomainId(1) && matches!(ev, Event::TokenAcquire { .. }))
        .expect("no D1 token acquisition in the trace");
    if let Event::TokenAcquire { clock, .. } = &mut trace.events[target] {
        *clock += 1;
    }
    let tampered = dir.0.join("tampered.dmtrace");
    trace.save(&tampered).unwrap();

    let rep = replay_file(&tampered).unwrap();
    assert!(!rep.ok(), "tampered sharded trace replayed clean");
    let diag = rep.divergence.expect("divergence carried no diagnosis");
    assert!(
        diag.contains(&format!("diverge at event #{target} in domain D1")),
        "diagnosis does not name event #{target} in domain D1:\n{diag}"
    );
}

/// The committed corpus must replay green: every container re-executes
/// to its recorded schedule and output on the current build.
#[test]
fn committed_corpus_replays_clean() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let files = trace_files(&corpus).unwrap();
    assert!(!files.is_empty());
    for f in files {
        let rep = replay_file(&f).unwrap();
        assert!(
            rep.ok(),
            "{} diverged: {}",
            f.display(),
            rep.divergence.as_deref().unwrap_or("(no diagnosis)")
        );
    }
}
