//! Seed-stability golden hashes: the schedule digests of fixed
//! `(workload, runtime, threads, scale, seed)` cells, committed as
//! constants.
//!
//! Everything else in the suite checks determinism *within* a build —
//! run twice, compare. These constants check determinism *across*
//! builds: the paper's contract is that a schedule is a pure function of
//! the program and the options, so an innocent-looking change that moves
//! a digest here changed scheduling semantics for every user. That is
//! sometimes intentional (a new event kind, a cost-model fix) — when it
//! is, regenerate the table: the failure message prints every actual
//! row ready to paste. What it must never be is *unnoticed*: committed
//! traces (`tests/corpus/`), committed benchmarks (`BENCH_*.json`) and
//! saved reproducers all hash with these functions.

use std::sync::Arc;

use consequence_repro::dmt_api::{
    CommonConfig, CostModel, HashSink, PerturbHandle, TraceHandle, WitnessHandle,
};
use consequence_repro::dmt_baselines::{make_runtime, RuntimeKind};
use consequence_repro::dmt_shard::{run_sharded_server, ShardCfg};
use consequence_repro::dmt_workloads::{workload_by_name, Params};

/// The fixed cell geometry. Changing any of these invalidates the table.
const THREADS: usize = 4;
const SCALE: u32 = 1;
const SEED: u64 = 42;

/// `(workload, runtime label, schedule hash)` — regenerate by running
/// this test and pasting the table it prints on mismatch.
const GOLDEN: &[(&str, &str, u64)] = &[
    ("histogram", "consequence-ic", 0x50a222204a7684a9),
    ("histogram", "consequence-rr", 0x53b2a90ec75db5c2),
    ("histogram", "dwc", 0x2ce2850ae9926e8e),
    ("kmeans", "consequence-ic", 0xadc31a1d1bca6414),
    ("kmeans", "consequence-rr", 0x41a3c4d13ebd832c),
    ("kmeans", "dwc", 0x62f857dc4b0f0b02),
    ("word_count", "consequence-ic", 0x507f0c2e4efafb2d),
    ("word_count", "consequence-rr", 0x672b94b514e343f9),
    ("word_count", "dwc", 0xc25059efb6fda943),
    ("string_match", "consequence-ic", 0x5ecddfee5172b047),
    ("string_match", "consequence-rr", 0x99d767796e133821),
    ("string_match", "dwc", 0xb2b4487894de43cf),
    ("dmt_server", "consequence-ic", 0x34300d2f73672d92),
];

/// The 2-domain sharded server's combined schedule digest and its
/// shard-count-invariant store digest, same geometry.
const GOLDEN_SHARDED_SCHEDULE: u64 = 0x888a641580c7a3f3;
const GOLDEN_SHARDED_STORE: u64 = 0x80617159c05a42ac;

fn schedule_hash(label: &str, name: &str) -> u64 {
    let kind = RuntimeKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .unwrap_or_else(|| panic!("unknown runtime label {label}"));
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let p = Params::new(THREADS, SCALE, SEED);
    let sink = Arc::new(HashSink::new());
    let cfg = CommonConfig {
        heap_pages: w.heap_pages(&p),
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace: TraceHandle::to(sink as _),
        perturb: PerturbHandle::off(),
        witness: WitnessHandle::off(),
    };
    let mut rt = make_runtime(kind, cfg);
    let prepared = w.prepare(rt.as_mut(), &p);
    let report = rt.run(prepared.job);
    let v = (prepared.validate)(rt.as_ref());
    assert!(
        v.matches_reference,
        "{name} under {label} failed validation"
    );
    report.schedule_hash
}

#[test]
fn schedule_hashes_match_the_committed_goldens() {
    let mut drift = String::new();
    for &(name, label, want) in GOLDEN {
        let got = schedule_hash(label, name);
        if got != want {
            drift.push_str(&format!("    (\"{name}\", \"{label}\", {got:#018x}),\n"));
        }
    }
    assert!(
        drift.is_empty(),
        "schedule digests drifted from the committed goldens.\n\
         If the change to scheduling semantics is intentional, replace the\n\
         drifted GOLDEN rows in tests/golden_hashes.rs with:\n{drift}"
    );
}

#[test]
fn sharded_hashes_match_the_committed_goldens() {
    let r = run_sharded_server(&ShardCfg::new(2, 2, Params::new(2, SCALE, SEED)));
    assert!(
        r.schedule_hash == GOLDEN_SHARDED_SCHEDULE && r.store_hash == GOLDEN_SHARDED_STORE,
        "sharded digests drifted from the committed goldens.\n\
         If intentional, update tests/golden_hashes.rs:\n\
         const GOLDEN_SHARDED_SCHEDULE: u64 = {:#018x};\n\
         const GOLDEN_SHARDED_STORE: u64 = {:#018x};",
        r.schedule_hash,
        r.store_hash
    );
}

/// The goldens are meaningful only if the digest is actually sensitive
/// to the cell geometry: a different thread count must move every
/// deterministic runtime's schedule hash. (The input *seed* legitimately
/// may not — histogram's schedule is data-independent.)
#[test]
fn goldens_are_geometry_sensitive() {
    for label in ["consequence-ic", "consequence-rr", "dwc"] {
        let kind = RuntimeKind::ALL
            .into_iter()
            .find(|k| k.label() == label)
            .unwrap();
        let run = |threads| {
            let w = workload_by_name("histogram").unwrap();
            let p = Params::new(threads, SCALE, SEED);
            let sink = Arc::new(HashSink::new());
            let cfg = CommonConfig {
                heap_pages: w.heap_pages(&p),
                max_threads: 64,
                cost: CostModel::default(),
                track_lrc: false,
                gc_budget: 4,
                trace: TraceHandle::to(sink as _),
                perturb: PerturbHandle::off(),
                witness: WitnessHandle::off(),
            };
            let mut rt = make_runtime(kind, cfg);
            let prepared = w.prepare(rt.as_mut(), &p);
            rt.run(prepared.job).schedule_hash
        };
        assert_ne!(
            run(THREADS),
            run(THREADS - 1),
            "{label}: schedule hash is not geometry-sensitive"
        );
    }
}

/// The commit pipeline defaults on, so the main golden table already
/// pins the pipelined digests; this pins the *equivalence*: disabling
/// the pipeline (`Options::without("pipeline_commit")`) must reproduce
/// the identical schedule hash and commit-log digest, because every
/// deferred settle cost is charged at publish time. A drift here means
/// the pipeline became schedule-observable — exactly the regression the
/// goldens exist to catch.
#[test]
fn pipeline_on_and_off_hash_identically() {
    use consequence_repro::consequence::Options;
    use consequence_repro::dmt_baselines::make_consequence;

    let run = |opts: Options| {
        let w = workload_by_name("dmt_server").unwrap();
        let p = Params::new(THREADS, SCALE, SEED);
        let sink = Arc::new(HashSink::new());
        let cfg = CommonConfig {
            heap_pages: w.heap_pages(&p),
            max_threads: 64,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget: 4,
            trace: TraceHandle::to(sink as _),
            perturb: PerturbHandle::off(),
            witness: WitnessHandle::off(),
        };
        let mut rt = make_consequence(cfg, opts);
        let prepared = w.prepare(rt.as_mut(), &p);
        let report = rt.run(prepared.job);
        (report.schedule_hash, report.commit_log_hash)
    };
    let on = run(Options::consequence_ic());
    let off = run(Options::consequence_ic().without("pipeline_commit"));
    assert_eq!(
        on, off,
        "pipelined and serial commit paths diverged (schedule, commit-log)"
    );
    // And the golden table's committed digest is the pipelined one.
    assert_eq!(on.0, 0x34300d2f73672d92, "dmt_server golden moved");
}
