//! TSO consistency properties of the deterministic runtime, checked as
//! litmus tests: store buffering may be relaxed, but program order, lock
//! release→acquire visibility, and write coherence must hold.

use consequence_repro::consequence::{ConsequenceRuntime, Options};
use consequence_repro::dmt_api::{CommonConfig, CostModel, Runtime, RuntimeMemExt, Tid};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn variants() -> Vec<(&'static str, Options)> {
    vec![
        ("ic", Options::consequence_ic()),
        (
            "ic-nocoarsen",
            Options::consequence_ic().without("coarsening"),
        ),
        ("rr", Options::consequence_rr()),
        ("dwc", Options::dwc()),
    ]
}

/// Store buffering (SB): `r1 = r2 = 0` is TSO-legal; `r1 = r2 = 1` would
/// require reading both stores before either committed — impossible here.
/// Whatever the outcome, it must repeat exactly.
#[test]
fn store_buffering_is_tso_legal_and_deterministic() {
    for (name, opts) in variants() {
        let run = |opts: Options| {
            let mut rt = ConsequenceRuntime::new(cfg(), opts);
            rt.run(Box::new(|ctx| {
                let t1 = ctx.spawn(Box::new(|c| {
                    c.st_u64(0, 1); // X
                    let r1 = c.ld_u64(4096); // Y
                    c.st_u64(8192, r1);
                }));
                let t2 = ctx.spawn(Box::new(|c| {
                    c.st_u64(4096, 1); // Y
                    let r2 = c.ld_u64(0); // X
                    c.st_u64(8200, r2);
                }));
                ctx.join(t1);
                ctx.join(t2);
            }));
            (rt.final_u64(8192), rt.final_u64(8200))
        };
        let (r1, r2) = run(opts.clone());
        // No out-of-thin-air values; both-see-both is impossible because
        // neither store can be visible before its thread's first commit.
        assert!(r1 <= 1 && r2 <= 1, "{name}: thin-air value");
        assert!(!(r1 == 1 && r2 == 1), "{name}: impossible SB outcome");
        let again = run(opts);
        assert_eq!((r1, r2), again, "{name}: nondeterministic litmus");
    }
}

/// Message passing through a mutex: after acquiring the lock that the
/// writer released, the reader must see both the data and the flag.
#[test]
fn release_acquire_visibility_through_mutex() {
    for (name, opts) in variants() {
        let mut rt = ConsequenceRuntime::new(cfg(), opts);
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let w = ctx.spawn(Box::new(move |c| {
                c.st_u64(0, 41); // data
                c.mutex_lock(m);
                c.st_u64(8, 1); // flag, inside the critical section
                c.mutex_unlock(m);
            }));
            let r = ctx.spawn(Box::new(move |c| {
                loop {
                    c.mutex_lock(m);
                    let flag = c.ld_u64(8);
                    let data = c.ld_u64(0);
                    c.mutex_unlock(m);
                    if flag == 1 {
                        // Release→acquire: data must be visible with flag.
                        c.st_u64(16, data);
                        break;
                    }
                    c.tick(500);
                }
            }));
            ctx.join(w);
            ctx.join(r);
        }));
        assert_eq!(rt.final_u64(16), 41, "{name}: lost release→acquire edge");
    }
}

/// Write coherence: a thread's two stores to one location are never seen
/// out of order — the final value is always the later store.
#[test]
fn same_location_stores_keep_program_order() {
    for (name, opts) in variants() {
        let mut rt = ConsequenceRuntime::new(cfg(), opts);
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let w = ctx.spawn(Box::new(move |c| {
                c.st_u64(0, 1);
                c.tick(100);
                c.st_u64(0, 2);
                c.mutex_lock(m);
                c.mutex_unlock(m);
            }));
            ctx.join(w);
        }));
        assert_eq!(rt.final_u64(0), 2, "{name}: stores reordered");
    }
}

/// Total store order: all threads agree on the order of two writers'
/// committed values. Observed (value-at-read) sequences from two observers
/// must be consistent with a single interleaving — in particular, they
/// cannot disagree on which write was last.
#[test]
fn observers_agree_on_final_write_order() {
    for (name, opts) in variants() {
        let run = |opts: Options| {
            let mut rt = ConsequenceRuntime::new(cfg(), opts);
            let m = rt.create_mutex();
            rt.run(Box::new(move |ctx| {
                let kids: Vec<Tid> = (0..2u64)
                    .map(|i| {
                        ctx.spawn(Box::new(move |c| {
                            c.tick(50 + i * 13);
                            c.mutex_lock(m);
                            c.st_u64(0, i + 1);
                            c.mutex_unlock(m);
                        }))
                    })
                    .collect();
                let obs: Vec<Tid> = (0..2)
                    .map(|o| {
                        ctx.spawn(Box::new(move |c| {
                            c.mutex_lock(m);
                            let v = c.ld_u64(0);
                            c.mutex_unlock(m);
                            c.st_u64(64 + 8 * o, v);
                        }))
                    })
                    .collect();
                for k in kids.into_iter().chain(obs) {
                    ctx.join(k);
                }
            }));
            (rt.final_u64(0), rt.final_u64(64), rt.final_u64(72))
        };
        let a = run(opts.clone());
        let b = run(opts);
        assert_eq!(a, b, "{name}: nondeterministic TSO outcome");
        assert!(a.0 == 1 || a.0 == 2, "{name}: invalid final value");
    }
}

/// Coarsening may defer visibility but must never *reorder* or lose a
/// thread's writes (delaying commits is TSO-legal; the final heap matches
/// the non-coarsened run for lock-ordered programs with commutative data).
#[test]
fn coarsening_preserves_lock_ordered_results() {
    let result = |opts: Options| {
        let mut rt = ConsequenceRuntime::new(cfg(), opts);
        let m = rt.create_mutex();
        rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4u64)
                .map(|i| {
                    ctx.spawn(Box::new(move |c| {
                        for j in 0..25 {
                            c.mutex_lock(m);
                            let v = c.ld_u64(0);
                            c.st_u64(0, v + i * 1_000 + j);
                            c.mutex_unlock(m);
                            c.tick(30);
                        }
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        rt.final_u64(0)
    };
    let expected: u64 = (0..4u64)
        .flat_map(|i| (0..25u64).map(move |j| i * 1_000 + j))
        .sum();
    assert_eq!(result(Options::consequence_ic()), expected);
    assert_eq!(
        result(Options::consequence_ic().without("coarsening")),
        expected
    );
}
