//! Deterministic read-write locks across the runtimes: shared readers,
//! exclusive writers, deterministic outcomes.

use consequence_repro::dmt_api::{CommonConfig, CostModel, Runtime, RuntimeMemExt, Tid};
use consequence_repro::dmt_baselines::{make_runtime, RuntimeKind};

fn cfg() -> CommonConfig {
    CommonConfig {
        heap_pages: 16,
        max_threads: 16,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// Readers sum a table that writers mutate under the write lock; every
/// read must observe a consistent (fully-applied) state.
fn reader_writer_program(rt: &mut dyn Runtime) -> (u64, u64) {
    let l = rt.create_rwlock();
    // Invariant: cells 0 and 8 always sum to 100.
    rt.init_u64(0, 60);
    rt.init_u64(8, 40);
    rt.run(Box::new(move |ctx| {
        let writers: Vec<Tid> = (0..2u64)
            .map(|i| {
                ctx.spawn(Box::new(move |c| {
                    for j in 0..15 {
                        c.rw_write_lock(l);
                        let a = c.ld_u64(0);
                        let delta = (i * 5 + j) % 17 + 1;
                        let moved = delta.min(a);
                        c.st_u64(0, a - moved);
                        let b = c.ld_u64(8);
                        c.st_u64(8, b + moved);
                        c.rw_write_unlock(l);
                        c.tick(300);
                    }
                }))
            })
            .collect();
        let readers: Vec<Tid> = (0..3usize)
            .map(|r| {
                ctx.spawn(Box::new(move |c| {
                    let mut violations = 0u64;
                    for _ in 0..20 {
                        c.rw_read_lock(l);
                        let sum = c.ld_u64(0) + c.ld_u64(8);
                        c.rw_read_unlock(l);
                        if sum != 100 {
                            violations += 1;
                        }
                        c.tick(150);
                    }
                    c.st_u64(64 + 8 * r, violations);
                }))
            })
            .collect();
        for k in writers.into_iter().chain(readers) {
            ctx.join(k);
        }
    }));
    let violations: u64 = (0..3).map(|r| rt.final_u64(64 + 8 * r)).sum();
    (rt.final_u64(0) + rt.final_u64(8), violations)
}

#[test]
fn rwlock_preserves_invariants_under_all_runtimes() {
    for kind in RuntimeKind::ALL {
        let mut rt = make_runtime(kind, cfg());
        let (total, violations) = reader_writer_program(rt.as_mut());
        assert_eq!(
            total,
            100,
            "{}: money moved out of the system",
            kind.label()
        );
        assert_eq!(
            violations,
            0,
            "{}: readers saw torn writer state",
            kind.label()
        );
    }
}

#[test]
fn rwlock_outcomes_are_deterministic() {
    for kind in [
        RuntimeKind::ConsequenceIc,
        RuntimeKind::Dwc,
        RuntimeKind::DThreads,
    ] {
        let run = || {
            let mut rt = make_runtime(kind, cfg());
            reader_writer_program(rt.as_mut());
            rt.final_hash(0, 1024)
        };
        assert_eq!(run(), run(), "{}", kind.label());
    }
}

/// Readers genuinely share under Consequence: two readers inside the lock
/// overlap in virtual time (unlike DThreads' exclusive alias).
#[test]
fn readers_share_under_consequence() {
    let run = |kind: RuntimeKind| {
        let mut rt = make_runtime(kind, cfg());
        let l = rt.create_rwlock();
        let report = rt.run(Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..4u64)
                .map(|_| {
                    ctx.spawn(Box::new(move |c| {
                        c.rw_read_lock(l);
                        c.tick(1_000_000); // long shared read section
                        c.rw_read_unlock(l);
                    }))
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        }));
        report.virtual_cycles
    };
    let shared = run(RuntimeKind::ConsequenceIc);
    let exclusive = run(RuntimeKind::DThreads);
    assert!(
        shared < 2_500_000,
        "four 1M-cycle read sections must overlap (got {shared})"
    );
    assert!(
        exclusive > 3_900_000,
        "DThreads' exclusive alias serializes them (got {exclusive})"
    );
}

#[test]
fn read_unlock_without_lock_is_contained() {
    // API misuse unwinds the offending thread, but the containment layer
    // turns that into a reported panic instead of crashing the process.
    let mut rt = make_runtime(RuntimeKind::ConsequenceIc, cfg());
    let l = rt.create_rwlock();
    let report = rt.run(Box::new(move |ctx| ctx.rw_read_unlock(l)));
    assert_eq!(
        report.panics.len(),
        1,
        "misuse must be contained: {report:?}"
    );
    assert!(
        report.panics[0].1.contains("read-unlocking"),
        "unexpected panic message: {:?}",
        report.panics[0]
    );
}
