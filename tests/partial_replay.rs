//! Crash-durable tracing: salvage of torn `.dmtrace` containers and
//! replay of failed runs to their fault point. See `docs/TRACE_FORMAT.md`
//! ("Durability & salvage") and `docs/REPLAY.md` ("Replaying failed
//! runs").

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use consequence::replay::options_for_label;
use consequence::ConsequenceRuntime;
use dmt_api::{
    CommonConfig, CostModel, FixedPanic, PanicSite, PerturbHandle, Runtime, Tid, TraceHandle,
};
use dmt_bench::replay::{ident_meta, record_to, replay_file};
use dmt_trace::{DiskSink, PartialTrace, Trace, TraceMeta, HEADER_LEN};
use dmt_workloads::{workload_by_name, Params};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dmt-partial-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Records one kmeans cell and returns the finished container's bytes
/// plus its recording summary.
fn recorded_bytes(dir: &Path) -> (dmt_bench::replay::Recorded, Vec<u8>) {
    let rec = record_to(dir, "consequence-ic", "kmeans", 2, 1, 42).unwrap();
    let bytes = std::fs::read(&rec.path).unwrap();
    (rec, bytes)
}

/// Records a run under `perturb` into a durable sink and abandons it —
/// no `finish` — leaving the torn container a crash would leave. Returns
/// the live run's contained panic set.
fn record_and_abandon(
    path: &Path,
    workload: &str,
    threads: usize,
    input_seed: u64,
    perturb: PerturbHandle,
) -> Vec<(Tid, String)> {
    let opts = options_for_label("consequence-ic").unwrap();
    let w = workload_by_name(workload).unwrap();
    let p = Params::new(threads, 1, input_seed);
    let ident = ident_meta(
        "consequence-ic",
        workload,
        threads,
        1,
        input_seed,
        w.heap_pages(&p),
        64,
        opts.fingerprint(),
        &perturb,
    );
    let sink = Arc::new(DiskSink::create_durable(path, &ident, 1).unwrap());
    let cfg = CommonConfig {
        heap_pages: w.heap_pages(&p),
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace: TraceHandle::to(Arc::clone(&sink) as _),
        perturb,
        witness: dmt_api::WitnessHandle::off(),
    };
    let mut rt = ConsequenceRuntime::new(cfg, opts);
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    sink.seal_and_flush().unwrap();
    report.panics
}

/// Satellite: byte-level truncation fuzz. A valid durable container cut
/// at EVERY byte offset must either salvage to a bit-exact prefix of the
/// original events or fail with a typed error — never panic, never
/// accept corrupt events.
#[test]
fn salvage_survives_truncation_at_every_byte_offset() {
    let dir = Scratch::new("fuzz");
    let (rec, bytes) = recorded_bytes(&dir.0);
    let full = Trace::from_bytes(&bytes).unwrap();
    assert_eq!(full.events.len() as u64, rec.events);

    let mut salvageable = 0u64;
    for cut in 0..=bytes.len() {
        match PartialTrace::from_bytes(&bytes[..cut]) {
            Ok(p) => {
                salvageable += 1;
                let n = p.trace.events.len();
                assert_eq!(
                    p.trace.events,
                    full.events[..n],
                    "cut at {cut}: salvaged events are not a prefix of the recording"
                );
                assert_eq!(p.trace.meta.event_count, n as u64, "cut at {cut}");
                assert_eq!(p.loss.events_recovered, n as u64, "cut at {cut}");
                assert!(
                    p.loss.tear_offset as usize <= cut,
                    "cut at {cut}: tear past the cut"
                );
                assert_eq!(
                    p.loss.complete,
                    cut == bytes.len(),
                    "cut at {cut}: only the untruncated file is complete"
                );
                // The salvaged meta must still carry the recording's
                // identity — that's what the write-ahead record is for.
                assert_eq!(p.trace.meta.workload, "kmeans", "cut at {cut}");
                assert_eq!(p.trace.meta.runtime, "consequence-ic", "cut at {cut}");
            }
            Err(_) => {
                // Typed rejection is fine — but a cut past the identity
                // record must always salvage (possibly to zero events).
                let ident_len = u32::from_le_bytes(bytes[48..52].try_into().unwrap()) as usize;
                assert!(
                    cut < HEADER_LEN + ident_len,
                    "cut at {cut}: anchor was durable yet salvage failed"
                );
            }
        }
    }
    assert!(
        salvageable as usize > bytes.len() / 2,
        "only {salvageable} of {} cuts salvaged",
        bytes.len() + 1
    );
}

/// Flipping any single byte of the salvaged region must never panic and
/// never smuggle corrupt events into an accepted prefix: every event
/// page the salvage accepts is digest-checked, so a flipped payload byte
/// costs that page and everything after it.
#[test]
fn salvage_rejects_flipped_bytes_in_accepted_pages() {
    let dir = Scratch::new("flip");
    let (_, bytes) = recorded_bytes(&dir.0);
    let full = Trace::from_bytes(&bytes).unwrap();
    // Tear off the directory so every parse goes down the salvage path.
    let torn = &bytes[..bytes.len() - 40];
    let baseline = PartialTrace::from_bytes(torn).unwrap();
    assert!(!baseline.trace.events.is_empty());
    // Stride keeps the loop fast; the offsets still cover header,
    // identity record, page headers and payloads.
    for flip in (0..torn.len()).step_by(7) {
        let mut mutated = torn.to_vec();
        mutated[flip] ^= 0x01;
        if let Ok(p) = PartialTrace::from_bytes(&mutated) {
            let n = p.trace.events.len();
            assert_eq!(
                p.trace.events,
                full.events[..n],
                "flip at {flip}: accepted events diverge from the recording"
            );
        }
    }
}

/// Tentpole: a healthy run's torn recording replays its salvaged prefix
/// bit-identically and reports clean exhaustion — not divergence — when
/// the live run continues past the recording's end.
#[test]
fn healthy_partial_replays_prefix_and_exhausts_cleanly() {
    let dir = Scratch::new("healthy");
    let (rec, bytes) = recorded_bytes(&dir.0);
    let ident_len = u32::from_le_bytes(bytes[48..52].try_into().unwrap()) as usize;
    let events_start = HEADER_LEN + ident_len;
    let page1_len = u32::from_le_bytes(
        bytes[events_start + 4..events_start + 8]
            .try_into()
            .unwrap(),
    ) as usize;
    let cut = events_start + 16 + page1_len + 5;
    let torn = dir.0.join("torn.dmtrace");
    std::fs::write(&torn, &bytes[..cut]).unwrap();

    let salvaged = Trace::salvage(&torn).unwrap();
    assert_eq!(salvaged.loss.pages_recovered, 1);
    assert_eq!(salvaged.trace.meta.event_count, 512);
    assert!(salvaged.loss.bytes_lost > 0);

    let rep = replay_file(&torn).unwrap();
    assert!(rep.partial, "salvage fallback did not engage");
    assert!(
        rep.ok(),
        "salvaged prefix diverged: {}",
        rep.divergence.as_deref().unwrap_or("(no diagnosis)")
    );
    assert!(
        rep.divergence.is_none(),
        "exhaustion reported as divergence"
    );
    assert_eq!(rep.recorded_events, 512);
    assert!(
        rep.replayed_events >= rec.events,
        "live run fell short of the original recording"
    );
    assert_eq!(
        rep.prefix_hash,
        Some(salvaged.trace.meta.schedule_hash),
        "prefix hash does not match the salvaged schedule"
    );
    assert_eq!(
        rep.exhausted_at,
        Some(512),
        "exhaustion not at the prefix boundary"
    );
    assert_eq!(rep.bytes_lost, salvaged.loss.bytes_lost);
}

/// A salvage that recovers zero events (killed before the first durable
/// page) is a valid salvage but nothing to replay — the driver must say
/// so rather than "replay" an empty schedule as success.
#[test]
fn zero_event_salvage_is_not_replayable() {
    let dir = Scratch::new("empty");
    let (_, bytes) = recorded_bytes(&dir.0);
    let ident_len = u32::from_le_bytes(bytes[48..52].try_into().unwrap()) as usize;
    let cut = HEADER_LEN + ident_len + 3; // anchor durable, no full page
    let torn = dir.0.join("young.dmtrace");
    std::fs::write(&torn, &bytes[..cut]).unwrap();

    let salvaged = Trace::salvage(&torn).unwrap();
    assert_eq!(salvaged.trace.meta.event_count, 0);
    let err = replay_file(&torn).unwrap_err();
    assert!(
        err.contains("nothing to replay"),
        "zero-event salvage replayed: {err}"
    );
}

/// Satellite: replay-to-fault determinism. A run with an injected panic
/// is recorded and torn; salvaging and replaying it twice must agree on
/// the schedule-hash prefix, the contained panic set, and the exhaustion
/// coordinates — the failed run replays to its fault point exactly.
#[test]
fn injected_panic_run_replays_to_fault_point_twice_identically() {
    let dir = Scratch::new("panic");
    let path = dir.0.join("panicked.dmtrace");
    let perturb = PerturbHandle::to(Arc::new(FixedPanic {
        site: PanicSite::Lock,
        victim: Tid(1),
        nth: 0,
        inner: PerturbHandle::off(),
    }));
    let recorded_panics = record_and_abandon(&path, "kmeans", 2, 42, perturb);
    assert!(
        !recorded_panics.is_empty(),
        "injected panic never fired — the scenario is vacuous"
    );

    let partial = Trace::salvage(&path).unwrap();
    assert!(
        partial.trace.meta.panic_site != 0,
        "panic triple not stamped"
    );
    assert!(partial.trace.meta.event_count > 0);

    let mut outcomes = Vec::new();
    let mut panic_sets = Vec::new();
    for _ in 0..2 {
        let w = workload_by_name("kmeans").unwrap();
        let p = Params::new(2, 1, 42);
        let (mut rt, monitor) = ConsequenceRuntime::new_replaying_partial(&partial).unwrap();
        let prepared = w.prepare(&mut rt, &p);
        let mut report = rt.run(prepared.job);
        panic_sets.push(report.panics.clone());
        outcomes.push(monitor.finish(&mut report));
    }
    let (a, b) = (&outcomes[0], &outcomes[1]);
    assert!(a.partial && b.partial);
    assert!(
        a.prefix_matches(),
        "first replay broke the prefix: {:?}",
        a.divergence
    );
    assert!(
        b.prefix_matches(),
        "second replay broke the prefix: {:?}",
        b.divergence
    );
    assert_eq!(a.prefix_hash, b.prefix_hash, "schedule-hash prefix differs");
    assert_eq!(a.replayed_hash, b.replayed_hash);
    assert_eq!(a.replayed_events, b.replayed_events);
    assert_eq!(
        a.exhausted_at, b.exhausted_at,
        "exhaustion coordinates differ"
    );
    assert_eq!(panic_sets[0], panic_sets[1], "contained panic set differs");
    assert_eq!(
        panic_sets[0], recorded_panics,
        "replayed panics differ from the recorded run's"
    );
}

/// The committed crashed-run container salvages with pinned stats — the
/// on-disk salvage behavior is part of the format contract, so a change
/// here is a format change and must be deliberate.
#[test]
fn committed_crashed_corpus_salvages_with_pinned_stats() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/crashed-kmeans-consequence-ic-t2-s1.dmtrace");
    let p = Trace::salvage(&path).unwrap();
    assert_eq!(p.loss.pages_recovered, 1);
    assert_eq!(p.loss.events_recovered, 512);
    assert_eq!(p.loss.bytes_lost, 7);
    assert!(!p.loss.complete);
    assert_eq!(p.trace.meta.event_count, 512);
    assert_eq!(p.trace.meta.schedule_hash, 0xb60c_62f2_eac0_415a);
    assert_eq!(p.trace.meta.workload, "kmeans");
    assert_eq!(p.trace.meta.runtime, "consequence-ic");

    // And it replays to a clean exhaustion through the normal driver —
    // the same path `committed_corpus_replays_clean` exercises.
    let rep = replay_file(&path).unwrap();
    assert!(rep.partial);
    assert!(rep.ok(), "{:?}", rep.divergence);
    assert_eq!(rep.prefix_hash, Some(0xb60c_62f2_eac0_415a));
}

/// The identity extension is invisible to legacy layouts: a writer
/// without a write-ahead record (`TraceWriter::create`) produces a
/// container whose reserved header tail is zero, and salvage rejects it
/// with a typed error instead of guessing.
#[test]
fn unfinished_legacy_container_is_typed_unsalvageable() {
    let dir = Scratch::new("legacy");
    let path = dir.0.join("legacy.dmtrace");
    let w = dmt_trace::TraceWriter::create(&path).unwrap();
    drop(w); // never finished, no identity record
    let err = Trace::salvage(&path).unwrap_err();
    assert!(
        err.to_string().contains("write-ahead identity record"),
        "untyped salvage failure: {err}"
    );
}

/// Crash-durability also holds for recordings that carry a perturbation
/// identity: the write-ahead record preserves the panic triple even when
/// the digests never got stamped, and `TraceMeta` round-trips the
/// extension fields.
#[test]
fn write_ahead_identity_preserves_the_panic_triple() {
    let dir = Scratch::new("ident");
    let path = dir.0.join("armed.dmtrace");
    let perturb = PerturbHandle::to(Arc::new(FixedPanic {
        site: PanicSite::Commit,
        victim: Tid(3),
        nth: 5,
        inner: PerturbHandle::off(),
    }));
    let opts = options_for_label("consequence-ic").unwrap();
    let ident = ident_meta(
        "consequence-ic",
        "kmeans",
        2,
        1,
        42,
        64,
        64,
        opts.fingerprint(),
        &perturb,
    );
    assert_eq!(ident.panic_site, PanicSite::Commit.code());
    assert_eq!(ident.panic_victim, 3);
    assert_eq!(ident.panic_nth, 5);
    let sink = DiskSink::create_durable(&path, &ident, 1).unwrap();
    drop(sink); // killed before any event
    let p = Trace::salvage(&path).unwrap();
    assert_eq!(p.trace.meta.panic_site, PanicSite::Commit.code());
    assert_eq!(p.trace.meta.panic_victim, 3);
    assert_eq!(p.trace.meta.panic_nth, 5);
    assert_eq!(p.trace.meta.event_count, 0);
    let roundtrip = TraceMeta::from_bytes(&p.trace.meta.to_bytes()).unwrap();
    assert_eq!(roundtrip, p.trace.meta);
}
