//! Sharded token domains: the determinism contract of `dmt-shard` as
//! exercised from the umbrella crate. See `docs/SHARDING.md`.
//!
//! The load-bearing property is **shard lockstep**: a 1-shard sharded run
//! is not merely equivalent to the unsharded `dmt_server` workload — it
//! executes the identical job under the identical configuration, so its
//! schedule hash and output hash must match bit for bit. On top of that,
//! every shard count must reproduce its own schedule exactly across
//! repeated runs, and every partition must end in the same final store.

use std::sync::Arc;

use consequence_repro::consequence::{ConsequenceRuntime, Options};
use consequence_repro::dmt_api::{
    CommonConfig, CostModel, HashSink, PerturbHandle, Runtime, TraceHandle,
};
use consequence_repro::dmt_shard::{run_sharded_server, CaptureMode, ShardCfg};
use consequence_repro::dmt_workloads::{workload_by_name, Params, Validation};

/// Runs the unsharded registry `dmt_server` workload under exactly the
/// configuration a shard domain runs (see `dmt_shard::run_sharded_server`),
/// returning `(schedule_hash, output_hash)`.
fn run_unsharded(workers: usize, scale: u32, seed: u64) -> (u64, u64) {
    let w = workload_by_name("dmt_server").expect("registry has dmt_server");
    let p = Params::new(workers, scale, seed);
    let sink = Arc::new(HashSink::new());
    let cfg = CommonConfig {
        heap_pages: w.heap_pages(&p),
        max_threads: workers + 2,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: TraceHandle::to(Arc::clone(&sink) as _),
        perturb: PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    };
    let mut rt = ConsequenceRuntime::new(cfg, Options::consequence_ic());
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(&rt);
    assert!(
        v.matches_reference,
        "unsharded dmt_server failed validation"
    );
    (report.schedule_hash, v.output_hash)
}

fn shard_cfg(shards: u32, workers: usize, seed: u64) -> ShardCfg {
    let mut cfg = ShardCfg::new(shards, workers, Params::new(workers, 1, seed));
    cfg.capture = CaptureMode::Hash;
    cfg
}

/// Shard lockstep, as a property over seeds: for every input seed, the
/// 1-shard run's root-domain schedule and output are bit-identical to the
/// unsharded workload's.
#[test]
fn one_shard_is_bit_identical_to_unsharded() {
    for seed in [7u64, 42, 0xDEC0DE] {
        let (sched, out) = run_unsharded(3, 1, seed);
        let r = run_sharded_server(&shard_cfg(1, 3, seed));
        assert_eq!(r.domains.len(), 1);
        assert_eq!(
            r.domains[0].schedule_hash, sched,
            "seed {seed}: 1-shard schedule diverged from unsharded"
        );
        assert_eq!(
            r.domains[0].output_hash, out,
            "seed {seed}: 1-shard output diverged from unsharded"
        );
    }
}

/// Multi-shard determinism: repeated runs of one configuration reproduce
/// the combined hash and every per-domain hash bit for bit, and distinct
/// seeds produce distinct schedules (the hash is not degenerate).
#[test]
fn multi_shard_schedules_reproduce_exactly() {
    let a = run_sharded_server(&shard_cfg(4, 2, 42));
    let b = run_sharded_server(&shard_cfg(4, 2, 42));
    assert_eq!(a.schedule_hash, b.schedule_hash);
    assert_eq!(a.output_hash, b.output_hash);
    assert_eq!(a.commit_hash, b.commit_hash);
    for (da, db) in a.domains.iter().zip(&b.domains) {
        assert_eq!(da.schedule_hash, db.schedule_hash, "domain {}", da.domain);
        assert_eq!(da.output_hash, db.output_hash, "domain {}", da.domain);
    }
    let c = run_sharded_server(&shard_cfg(4, 2, 43));
    assert_ne!(
        a.schedule_hash, c.schedule_hash,
        "seed does not reach the schedule"
    );
}

/// Semantic invariance: every partition of the same traffic — across
/// shard counts and across shard-map seeds — must end in the same final
/// store, even though the schedules legitimately differ.
#[test]
fn final_store_is_invariant_across_partitions() {
    let r1 = run_sharded_server(&shard_cfg(1, 2, 42));
    let r2 = run_sharded_server(&shard_cfg(2, 2, 42));
    let r4 = run_sharded_server(&shard_cfg(4, 2, 42));
    assert_eq!(r1.store_hash, r2.store_hash);
    assert_eq!(r2.store_hash, r4.store_hash);
    assert_ne!(r2.schedule_hash, r4.schedule_hash);

    let mut remapped = shard_cfg(4, 2, 42);
    remapped.opts.shard_map_seed = 0xB10C;
    let rm = run_sharded_server(&remapped);
    assert_eq!(rm.store_hash, r4.store_hash, "map seed changed the store");
    assert_ne!(
        rm.schedule_hash, r4.schedule_hash,
        "map seed does not route"
    );
}
