//! The sharded runtime: one token domain per shard, rendezvous between
//! epochs.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use consequence::{ConsequenceRuntime, Options};
use dmt_api::trace::{Event, HashSink, MemorySink};
use dmt_api::{
    CommonConfig, CostModel, DomainId, Fnv1a, PerturbHandle, Runtime, TraceHandle, WitnessHandle,
};
use dmt_workloads::server::{DomainPlan, DomainServer, Exchange, ServerSpec};
use dmt_workloads::Params;

use crate::map::ShardMap;

/// What each domain's trace handle captures during a sharded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureMode {
    /// No tracing — benchmark-true event emission cost (one branch).
    Off,
    /// Fold per-domain schedule hashes only (cheap, no event storage).
    Hash,
    /// Buffer every schedule event per domain, for differential testing
    /// and trace recording.
    Events,
}

/// Configuration of a sharded server run.
#[derive(Clone, Debug)]
pub struct ShardCfg {
    /// Shard domain count (1 = the unsharded schedule, bit-identical to
    /// the registry `dmt_server` workload).
    pub shards: u32,
    /// Pool workers per domain.
    pub workers: usize,
    /// Server sizing (`scale` multiplies traffic, `seed` generates it).
    pub params: Params,
    /// Scheduler options for every domain. `shard_domains` and
    /// `shard_map_seed` are stamped from `shards` and this field's own
    /// `shard_map_seed` before running, so the fingerprint matches what
    /// actually executed.
    pub opts: Options,
    /// Trace capture mode.
    pub capture: CaptureMode,
}

impl ShardCfg {
    /// A standard configuration: Consequence-IC domains, hash capture.
    pub fn new(shards: u32, workers: usize, params: Params) -> ShardCfg {
        ShardCfg {
            shards,
            workers,
            params,
            opts: Options::consequence_ic(),
            capture: CaptureMode::Hash,
        }
    }
}

/// One domain's slice of a [`ShardReport`].
#[derive(Clone, Debug)]
pub struct DomainReport {
    /// The domain.
    pub domain: DomainId,
    /// The domain's schedule hash (domain-stamped FNV-1a; for
    /// [`DomainId::ROOT`] identical to the unsharded hash of the same
    /// event stream).
    pub schedule_hash: u64,
    /// Buffered `(domain, event)` stream — empty unless
    /// [`CaptureMode::Events`].
    pub events: Vec<(DomainId, Event)>,
    /// Requests this domain served.
    pub processed: u64,
    /// Keys this domain owns.
    pub keys: u64,
    /// Final `(global key, value)` pairs of the domain's store slice.
    pub kv: Vec<(u64, u64)>,
    /// Domain output digest (store + responses + processed).
    pub output_hash: u64,
    /// The domain runtime's commit-log hash (versioned-memory history).
    pub commit_log_hash: u64,
    /// Global-token acquisitions inside the domain.
    pub token_acquisitions: u64,
    /// Deterministic mutex acquisitions inside the domain.
    pub lock_acquires: u64,
    /// Critical-path virtual cycles of the domain.
    pub virtual_cycles: u64,
    /// Wall-clock time of the domain's run.
    pub wall: Duration,
    /// Workload panics contained inside the domain (injected or real),
    /// `(tid, message)` in containment order.
    pub panics: Vec<(dmt_api::Tid, String)>,
}

/// The result of a sharded server run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Domains run, ascending.
    pub domains: Vec<DomainReport>,
    /// Combined schedule hash: FNV-1a over `(domain, per-domain hash)` in
    /// domain order. Bit-identical across runs of one configuration.
    pub schedule_hash: u64,
    /// Digest of the final global store, `(key, value)` ascending by key.
    /// **Invariant across shard counts and map seeds** — every mutation
    /// commutes — so it is the shard-diff semantic oracle.
    pub store_hash: u64,
    /// Combined output digest (per-domain output hashes, domain order).
    /// Deterministic per configuration; legitimately differs across shard
    /// counts (`Get` responses depend on serving order).
    pub output_hash: u64,
    /// Combined commit-log digest (per-domain commit-log hashes, domain
    /// order). Deterministic per configuration.
    pub commit_hash: u64,
    /// Requests the configuration was sized for.
    pub requests: u64,
    /// Requests actually served, summed over domains.
    pub processed: u64,
    /// Whether every request was served (`processed == requests`). Always
    /// true unless losses were tolerated (see [`DomainHooks`]).
    pub complete: bool,
    /// Contained panics summed over domains.
    pub panics: u64,
    /// Total sync operations: token acquisitions summed over domains.
    pub sync_ops: u64,
    /// Wall-clock time of the whole run (slowest domain).
    pub wall: Duration,
}

/// A rendezvous gate that tolerates permanent departures.
///
/// Behaves like a reusable [`std::sync::Barrier`] over `parties`
/// participants, except a participant may [`resign`](PhaseGate::resign)
/// forever: every subsequent phase then needs one fewer arrival. Without
/// this, one shard domain dying (an injected panic, a contained fault)
/// would hang every sibling at the next epoch rendezvous — the exact
/// failure the mixed-scenario matrix composes on purpose.
///
/// Determinism: a domain's death epoch is a pure function of `(seed,
/// options)` — panics are injected at deterministic schedule points — so
/// the set of domains attending any given phase, and therefore each
/// phase's outcome, is deterministic even though the *physical* moment of
/// resignation is not. Resignation only ever happens between phases
/// (domain drivers never unwind inside a gate), so a resign can never
/// split one logical phase in two.
pub struct PhaseGate {
    parties: usize,
    st: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    /// Arrivals in the current phase.
    arrived: usize,
    /// Permanent departures (never reset).
    resigned: usize,
    /// Completed-phase counter; waiters sleep until it moves.
    gen: u64,
}

impl PhaseGate {
    /// A gate over `parties` participants.
    pub fn new(parties: usize) -> PhaseGate {
        PhaseGate {
            parties,
            st: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arrives at the current phase and blocks until it completes, i.e.
    /// until every non-resigned participant has arrived.
    pub fn wait(&self) {
        let mut st = self.lock();
        st.arrived += 1;
        if st.arrived + st.resigned >= self.parties {
            st.arrived = 0;
            st.gen += 1;
            self.cv.notify_all();
            return;
        }
        let gen = st.gen;
        while st.gen == gen {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Permanently withdraws one participant. If the current phase was
    /// only waiting on the resigner, it completes now.
    pub fn resign(&self) {
        let mut st = self.lock();
        st.resigned += 1;
        if st.arrived > 0 && st.arrived + st.resigned >= self.parties {
            st.arrived = 0;
            st.gen += 1;
            self.cv.notify_all();
        }
    }
}

/// Host-side credit exchange between shard domains.
///
/// Domain drivers call [`Exchange::exchange`] once per epoch. The
/// implementation posts each outgoing credit to its destination domain
/// (routed by the shard map), meets every sibling at a [`PhaseGate`],
/// takes its own inbox, meets them again (so nobody posts epoch `e + 1`
/// credits into an inbox still being drained), and returns the inbox in
/// canonical `(source domain, outbox order)` order. Outbox order is
/// deterministic — each source outbox fills under its domain's token — so
/// the returned credit sequence is a pure function of `(seed, options)`.
///
/// A domain that stops serving early must [`resign`](StdExchange::resign)
/// so the survivors' gates shrink; [`run_sharded_server`] installs a drop
/// guard that does this on every domain exit path.
pub struct StdExchange {
    map: ShardMap,
    post: PhaseGate,
    take: PhaseGate,
    inboxes: Mutex<Vec<Vec<Posted>>>,
}

/// One posted credit: `(source domain, outbox seq, key, amount)`.
type Posted = (usize, usize, u64, u64);

impl StdExchange {
    /// An exchange for the map's domains.
    pub fn new(map: ShardMap) -> StdExchange {
        let n = map.shards() as usize;
        StdExchange {
            map,
            post: PhaseGate::new(n),
            take: PhaseGate::new(n),
            inboxes: Mutex::new(vec![Vec::new(); n]),
        }
    }

    /// Permanently withdraws one domain from both rendezvous gates.
    /// Called exactly once per domain, after its runtime can no longer
    /// call [`Exchange::exchange`].
    pub fn resign(&self) {
        self.post.resign();
        self.take.resign();
    }
}

impl Exchange for StdExchange {
    fn exchange(&self, domain: usize, _epoch: usize, outgoing: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        {
            let mut inboxes = self.inboxes.lock().unwrap_or_else(|e| e.into_inner());
            for (seq, (key, amount)) in outgoing.into_iter().enumerate() {
                let dst = self.map.index_of(key);
                inboxes[dst].push((domain, seq, key, amount));
            }
        }
        self.post.wait();
        let mut mine = {
            let mut inboxes = self.inboxes.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut inboxes[domain])
        };
        self.take.wait();
        mine.sort_unstable_by_key(|&(src, seq, _, _)| (src, seq));
        mine.into_iter().map(|(_, _, k, a)| (k, a)).collect()
    }
}

/// Per-domain instrumentation for [`run_sharded_server_hooked`].
///
/// Vectors are indexed by domain and padded with off-handles, so the
/// empty default instruments nothing.
#[derive(Clone, Debug, Default)]
pub struct DomainHooks {
    /// Fault / panic injectors, one per domain (off when absent).
    pub perturb: Vec<PerturbHandle>,
    /// Resource witnesses, one per domain (off when absent).
    pub witness: Vec<WitnessHandle>,
    /// Tolerate injected losses: when a domain dies early (contained
    /// panic of its driver), skip the served-every-request assert and
    /// report [`ShardReport::complete`] `false` instead.
    pub tolerate_losses: bool,
}

/// Runs the deterministic server across `cfg.shards` token domains.
///
/// Each domain is a full Consequence runtime — its own clock table, token
/// and heap — running on its own OS thread, serving the requests whose
/// keys the shard map assigns it. Domains rendezvous through a
/// [`StdExchange`] between epochs; everything else is domain-local. The
/// per-domain schedules are bit-identical per `(seed, options)`, and the
/// combined store must always equal the sequential reference.
///
/// # Panics
///
/// Panics if a domain thread panics, if a domain serves a request it does
/// not own, or if the served request count disagrees with the spec.
pub fn run_sharded_server(cfg: &ShardCfg) -> ShardReport {
    run_sharded_server_hooked(cfg, &DomainHooks::default())
}

/// [`run_sharded_server`] with per-domain instrumentation attached: fault
/// injectors, panic plans and resource witnesses ride into each domain's
/// `CommonConfig`. This is the mixed-scenario matrix entry point — the
/// composition perturb × panic × shard × record runs through here.
pub fn run_sharded_server_hooked(cfg: &ShardCfg, hooks: &DomainHooks) -> ShardReport {
    let spec = ServerSpec::of(&cfg.params);
    let mut opts = cfg.opts.clone();
    opts.shard_domains = cfg.shards;
    let map = ShardMap::new(cfg.shards, opts.shard_map_seed);
    let plans = DomainPlan::build(&spec, cfg.shards as usize, &|k| map.index_of(k));
    let exchange: Arc<StdExchange> = Arc::new(StdExchange::new(map));

    let t0 = Instant::now();
    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let opts = opts.clone();
            let exchange = Arc::clone(&exchange);
            let capture = cfg.capture;
            let workers = cfg.workers;
            let perturb = hooks
                .perturb
                .get(plan.domain)
                .cloned()
                .unwrap_or_else(PerturbHandle::off);
            let witness = hooks
                .witness
                .get(plan.domain)
                .cloned()
                .unwrap_or_else(WitnessHandle::off);
            std::thread::spawn(move || {
                run_domain(
                    spec, plan, workers, opts, capture, exchange, perturb, witness,
                )
            })
        })
        .collect();
    let domains: Vec<DomainReport> = handles
        .into_iter()
        .map(|h| h.join().expect("domain thread panicked"))
        .collect();
    let wall = t0.elapsed();

    let mut sched = Fnv1a::new();
    let mut out = Fnv1a::new();
    let mut commits = Fnv1a::new();
    let mut kv: Vec<(u64, u64)> = Vec::with_capacity(spec.keys);
    for d in &domains {
        sched.update(&u64::from(d.domain.0).to_le_bytes());
        sched.update(&d.schedule_hash.to_le_bytes());
        out.update(&d.output_hash.to_le_bytes());
        commits.update(&d.commit_log_hash.to_le_bytes());
        kv.extend_from_slice(&d.kv);
    }
    kv.sort_unstable_by_key(|&(k, _)| k);
    let mut store = Fnv1a::new();
    for (k, v) in &kv {
        store.update(&k.to_le_bytes());
        store.update(&v.to_le_bytes());
    }

    let processed: u64 = domains.iter().map(|d| d.processed).sum();
    let complete = processed == spec.requests as u64;
    if !hooks.tolerate_losses {
        assert_eq!(
            processed, spec.requests as u64,
            "served {processed} of {} requests",
            spec.requests
        );
    }
    ShardReport {
        sync_ops: domains.iter().map(|d| d.token_acquisitions).sum(),
        panics: domains.iter().map(|d| d.panics.len() as u64).sum(),
        schedule_hash: sched.digest(),
        store_hash: store.digest(),
        output_hash: out.digest(),
        commit_hash: commits.digest(),
        requests: spec.requests as u64,
        processed,
        complete,
        wall,
        domains,
    }
}

/// Resigns a domain from the exchange on every exit path — normal
/// completion, contained early death, or a panic out of the report
/// harvesting — so siblings never hang on a gate the domain will not
/// attend. Resignation strictly follows the domain's last possible
/// [`Exchange::exchange`] call (the runtime has returned by then).
struct ResignOnExit(Arc<StdExchange>);

impl Drop for ResignOnExit {
    fn drop(&mut self) {
        self.0.resign();
    }
}

#[allow(clippy::too_many_arguments)]
fn run_domain(
    spec: ServerSpec,
    plan: DomainPlan,
    workers: usize,
    opts: Options,
    capture: CaptureMode,
    exchange: Arc<StdExchange>,
    perturb: PerturbHandle,
    witness: WitnessHandle,
) -> DomainReport {
    let domain = DomainId(plan.domain as u32);
    let (hash_sink, mem_sink, trace) = match capture {
        CaptureMode::Off => (None, None, TraceHandle::off()),
        CaptureMode::Hash => {
            let s = Arc::new(HashSink::new());
            (
                Some(Arc::clone(&s)),
                None,
                TraceHandle::to_domain(s, domain),
            )
        }
        CaptureMode::Events => {
            let s = Arc::new(MemorySink::new(1 << 22));
            (
                None,
                Some(Arc::clone(&s)),
                TraceHandle::to_domain(s, domain),
            )
        }
    };
    let common = CommonConfig {
        heap_pages: DomainServer::heap_pages(&spec, plan.keys.len(), workers),
        max_threads: workers + 2,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace,
        perturb,
        witness,
    };
    let mut rt = ConsequenceRuntime::new(common, opts);
    let resign = ResignOnExit(Arc::clone(&exchange));
    let (job, srv) = DomainServer::prepare(
        &mut rt,
        &spec,
        &plan,
        workers,
        exchange as Arc<dyn Exchange>,
    );
    let report = rt.run(job);
    drop(resign);

    let (events, dropped) = mem_sink
        .as_ref()
        .map_or((Vec::new(), 0), |s| s.take_domains());
    assert_eq!(dropped, 0, "domain {domain} event buffer overflowed");
    let schedule_hash = match (&hash_sink, capture) {
        (Some(s), _) => dmt_api::trace::TraceSink::schedule_hash(s.as_ref()),
        (None, CaptureMode::Events) => {
            let mut h = Fnv1a::new();
            for (d, ev) in &events {
                ev.fold_domain(*d, &mut h);
            }
            h.digest()
        }
        _ => 0,
    };
    DomainReport {
        domain,
        schedule_hash,
        events,
        processed: srv.processed(&rt),
        keys: plan.keys.len() as u64,
        kv: srv.final_kv(&rt),
        output_hash: srv.output_hash(&rt),
        commit_log_hash: report.commit_log_hash,
        token_acquisitions: report.counters.token_acquisitions,
        lock_acquires: report.counters.lock_acquires,
        virtual_cycles: report.virtual_cycles,
        wall: report.wall,
        panics: report.panics,
    }
}

impl ShardReport {
    /// The run's canonical `(domain, event)` stream: every domain's
    /// events concatenated in domain order. Deterministic per
    /// configuration (each domain's stream is token-ordered); requires
    /// [`CaptureMode::Events`].
    pub fn canonical_events(&self) -> Vec<(DomainId, Event)> {
        let mut all = Vec::new();
        for d in &self.domains {
            all.extend_from_slice(&d.events);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: u32) -> ShardCfg {
        let mut c = ShardCfg::new(shards, 3, Params::new(3, 1, 7));
        c.capture = CaptureMode::Hash;
        c
    }

    #[test]
    fn sharded_runs_serve_every_request_and_agree_on_the_store() {
        let r1 = run_sharded_server(&cfg(1));
        let r2 = run_sharded_server(&cfg(2));
        assert_eq!(r1.processed, r1.requests);
        assert_eq!(r2.processed, r2.requests);
        // The order-invariant store digest must not depend on sharding.
        assert_eq!(r1.store_hash, r2.store_hash);
        // The schedules are different partitions of the same traffic.
        assert_ne!(r1.schedule_hash, r2.schedule_hash);
        assert_eq!(r2.domains.len(), 2);
    }

    #[test]
    fn same_seed_same_schedule_every_time() {
        let a = run_sharded_server(&cfg(2));
        let b = run_sharded_server(&cfg(2));
        assert_eq!(a.schedule_hash, b.schedule_hash);
        assert_eq!(a.output_hash, b.output_hash);
        for (da, db) in a.domains.iter().zip(&b.domains) {
            assert_eq!(da.schedule_hash, db.schedule_hash, "domain {}", da.domain);
        }
    }

    #[test]
    fn phase_gate_absorbs_resignations() {
        let g = Arc::new(PhaseGate::new(3));
        g.resign();
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || {
            g2.wait();
            g2.wait();
        });
        g.wait();
        g.wait();
        h.join().unwrap();
        // A second resignation leaves one live party: waits return alone.
        g.resign();
        g.wait();
        g.wait();
    }

    /// A deterministic assassin: thread `tid` dies at its `nth` operation
    /// of class `site`, nothing else is perturbed.
    struct DieAt {
        site: dmt_api::PanicSite,
        tid: dmt_api::Tid,
        nth: u64,
    }

    impl dmt_api::Perturber for DieAt {
        fn hit(&self, _: dmt_api::PerturbSite, _: dmt_api::Tid) -> u64 {
            0
        }
        fn panic_at(&self, site: dmt_api::PanicSite, tid: dmt_api::Tid, nth: u64) -> bool {
            site == self.site && tid == self.tid && nth == self.nth
        }
    }

    #[test]
    fn dead_domain_resigns_and_survivors_complete_reproducibly() {
        let run = || {
            let mut c = cfg(2);
            // The dying domain's workers starve; a short watchdog turns
            // that into a prompt contained shutdown.
            c.opts.watchdog_stall_ms = Some(300);
            let hooks = DomainHooks {
                perturb: vec![
                    PerturbHandle::off(),
                    PerturbHandle::to(Arc::new(DieAt {
                        site: dmt_api::PanicSite::Commit,
                        tid: dmt_api::Tid(0),
                        nth: 1,
                    })),
                ],
                witness: Vec::new(),
                tolerate_losses: true,
            };
            run_sharded_server_hooked(&c, &hooks)
        };
        let a = run();
        // Domain 1's driver died: its tail of the request stream is lost,
        // but nobody hangs — the exchange gates shrank by resignation.
        assert!(!a.complete, "driver death must lose requests");
        assert!(a.processed < a.requests);
        assert!(a.panics >= 1);
        // The composition is reproducible: same death point, same
        // survivor schedule, same final store.
        let b = run();
        assert_eq!(a.schedule_hash, b.schedule_hash);
        assert_eq!(a.processed, b.processed);
        assert_eq!(a.store_hash, b.store_hash);
        assert_eq!(a.panics, b.panics);
    }
}
