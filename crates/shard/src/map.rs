//! The deterministic shard map: global key → token domain.

use dmt_api::{DomainId, Fnv1a};

/// A pure function from global keys to shard domains.
///
/// The map is the *only* routing authority in the sharded runtime: it
/// decides which domain owns each key's store cell, which domain serves
/// each request, and where a cross-shard credit lands. It is a pure
/// function of `(shards, seed)` — both folded into
/// `Options::fingerprint()` — so two runs of the same configuration route
/// identically, and a replay under a different map is rejected before it
/// starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
    seed: u64,
}

impl ShardMap {
    /// A map over `shards` domains, scrambled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32, seed: u64) -> ShardMap {
        assert!(shards > 0, "a sharded runtime needs at least one domain");
        ShardMap { shards, seed }
    }

    /// Number of domains this map routes into.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The domain index owning `key`, in `0..shards`.
    pub fn index_of(&self, key: u64) -> usize {
        let mut h = Fnv1a::new();
        h.update(&self.seed.to_le_bytes());
        h.update(&key.to_le_bytes());
        (h.digest() % self.shards as u64) as usize
    }

    /// The domain id owning `key`.
    pub fn domain_of(&self, key: u64) -> DomainId {
        DomainId(self.index_of(key) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_total_and_stable() {
        let m = ShardMap::new(4, 7);
        for k in 0..10_000u64 {
            let d = m.index_of(k);
            assert!(d < 4);
            assert_eq!(d, m.index_of(k), "unstable for key {k}");
            assert_eq!(m.domain_of(k), DomainId(d as u32));
        }
    }

    #[test]
    fn single_shard_routes_everything_to_root() {
        let m = ShardMap::new(1, 999);
        for k in 0..1000u64 {
            assert_eq!(m.domain_of(k), DomainId::ROOT);
        }
    }

    #[test]
    fn seed_moves_keys_between_domains() {
        let a = ShardMap::new(4, 0);
        let b = ShardMap::new(4, 1);
        let moved = (0..1000u64)
            .filter(|&k| a.index_of(k) != b.index_of(k))
            .count();
        assert!(moved > 250, "seed change moved only {moved}/1000 keys");
    }

    #[test]
    fn domains_are_reasonably_balanced() {
        let m = ShardMap::new(4, 42);
        let mut counts = [0usize; 4];
        for k in 0..4096u64 {
            counts[m.index_of(k)] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                (640..=1408).contains(&c),
                "domain {d} owns {c} of 4096 keys"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_shards_panics() {
        let _ = ShardMap::new(0, 0);
    }
}
