//! `dmt-shard`: sharded token domains with deterministic cross-shard
//! rendezvous.
//!
//! The Consequence token (§3.2) serializes every synchronization
//! operation of a run through one GMIC queue. That is the determinism
//! anchor — and, as thread counts grow, the scalability ceiling: every
//! waiter contends on one clock table and one grant path. This subsystem
//! partitions a run into independent **token domains**: each domain is a
//! complete Consequence runtime — its own det-clock table, token, heap
//! and thread pool — serving the slice of state a deterministic
//! [`ShardMap`] assigns it. Within a domain the ordinary token machinery
//! produces the ordinary bit-identical schedule; *across* domains the
//! only coupling is an epoch-boundary **rendezvous** ([`StdExchange`])
//! whose message order is a pure function of `(seed, options)`.
//!
//! Determinism therefore composes: the sharded schedule is the list of
//! per-domain schedules plus the (deterministic) rendezvous streams, and
//! the combined [`ShardReport::schedule_hash`] must be bit-identical per
//! configuration. A 1-shard run executes the *identical* job the
//! unsharded `dmt_server` registry workload executes, in
//! [`dmt_api::DomainId::ROOT`], so its hash is bit-identical to the
//! unsharded hash — the `shard_lockstep` oracle. See `docs/SHARDING.md`
//! at the workspace root.
//!
//! * [`map`] — the deterministic key → domain routing function;
//! * [`runtime`] — [`run_sharded_server`]: one runtime per domain,
//!   combined reporting;
//! * [`record`] — sharded trace recording into `.dmtrace` containers and
//!   re-execution verification.

#![deny(missing_docs)]

pub mod map;
pub mod record;
pub mod runtime;

pub use map::ShardMap;
pub use record::{record_server_trace, verify_server_trace, ShardReplay};
pub use runtime::{
    run_sharded_server, run_sharded_server_hooked, CaptureMode, DomainHooks, DomainReport,
    PhaseGate, ShardCfg, ShardReport, StdExchange,
};
