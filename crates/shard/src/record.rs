//! Recording sharded runs into `.dmtrace` containers, and verifying them
//! by deterministic re-execution.
//!
//! A sharded run has no single grant script — each domain's token runs
//! free — so sharded traces are **re-execution verified** rather than
//! grant-scripted: the canonical `(domain, event)` stream (every domain's
//! token-ordered events, concatenated in domain order) is recorded, and
//! verification re-runs the named configuration from scratch and compares
//! the streams event by event with
//! [`dmt_api::trace::diagnose_domains`]. Because each domain's schedule
//! is bit-identical per `(seed, options)`, a correct build reproduces the
//! recording exactly; a divergence report names the shard that split.
//!
//! Recorded containers use the runtime label `sharded-ic-<shards>` and,
//! by convention, Consequence-IC options with shard-map seed 0 — the
//! options fingerprint in the META stream (which folds both shard
//! parameters) seals that convention.

use std::path::Path;

use consequence::Options;
use dmt_api::Fnv1a;
use dmt_trace::{Trace, TraceMeta, TraceWriter};
use dmt_workloads::server::{DomainServer, ServerSpec};
use dmt_workloads::Params;

use crate::runtime::{run_sharded_server, CaptureMode, ShardCfg, ShardReport};

/// Runtime-label prefix of sharded recordings: `sharded-ic-<shards>`.
pub const SHARDED_LABEL_PREFIX: &str = "sharded-ic-";

/// The result of verifying one sharded container by re-execution.
#[derive(Clone, Debug)]
pub struct ShardReplay {
    /// The container verified.
    pub path: String,
    /// Shard domains the recording names.
    pub shards: u32,
    /// Schedule events in the recording.
    pub recorded_events: u64,
    /// Schedule events the re-execution produced.
    pub replayed_events: u64,
    /// Recorded canonical-stream schedule hash (from the META stream).
    pub recorded_hash: u64,
    /// Canonical-stream schedule hash of the re-execution.
    pub replayed_hash: u64,
    /// Cumulative-hash checkpoints the re-execution reproduced.
    pub checkpoints_passed: u64,
    /// Checkpoints in the recording.
    pub checkpoints_total: u64,
    /// Whether the re-executed combined output hash matched.
    pub output_match: bool,
    /// Whether the re-executed combined commit-log hash matched.
    pub commit_log_match: bool,
    /// First-divergent-event diagnosis (with the divergent domain), or
    /// `None` when the re-execution tracked the recording exactly.
    pub divergence: Option<String>,
}

impl ShardReplay {
    /// Whether the re-execution reproduced the recording completely.
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
            && self.recorded_events == self.replayed_events
            && self.recorded_hash == self.replayed_hash
            && self.checkpoints_passed == self.checkpoints_total
            && self.output_match
            && self.commit_log_match
    }
}

/// The canonical shard configuration a recording (or its verification)
/// runs: Consequence-IC options, shard-map seed 0, event capture.
fn canonical_cfg(shards: u32, workers: usize, params: Params) -> ShardCfg {
    let mut cfg = ShardCfg::new(shards, workers, params);
    cfg.opts = Options::consequence_ic();
    cfg.capture = CaptureMode::Events;
    cfg
}

/// Records one sharded server run into `path`.
///
/// Runs `shards` domains with `workers` pool workers each, writes the
/// canonical `(domain, event)` stream into a `.dmtrace` container, stamps
/// the run's identity and digests into the META stream, and re-validates
/// the written container before returning.
pub fn record_server_trace(
    shards: u32,
    workers: usize,
    params: Params,
    path: &Path,
) -> Result<(TraceMeta, ShardReport), String> {
    let cfg = canonical_cfg(shards, workers, params);
    let report = run_sharded_server(&cfg);

    let mut opts = cfg.opts.clone();
    opts.shard_domains = shards;
    let spec = ServerSpec::of(&params);
    let mut w = TraceWriter::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    for (d, ev) in report.canonical_events() {
        w.push_in_domain(&ev, d)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let meta = TraceMeta {
        runtime: format!("{SHARDED_LABEL_PREFIX}{shards}"),
        workload: "dmt_server".to_string(),
        threads: workers as u64,
        scale: params.scale as u64,
        input_seed: params.seed,
        // Nominal sizing: the single-domain upper bound (each domain owns
        // a subset of the keys, so every domain heap fits under it).
        heap_pages: DomainServer::heap_pages(&spec, spec.keys, workers) as u64,
        max_threads: workers as u64 + 2,
        options_fingerprint: opts.fingerprint(),
        perturb_seed: 0,
        perturb_plan: 0,
        event_count: 0,   // stamped by the writer
        schedule_hash: 0, // stamped by the writer
        commit_log_hash: report.commit_hash,
        output_hash: report.output_hash,
        checkpoint_interval: 0, // stamped by the writer
        panic_site: 0,
        panic_victim: 0,
        panic_nth: 0,
    };
    let meta = w
        .finish(meta)
        .map_err(|e| format!("finish {}: {e}", path.display()))?;
    // Immediate round-trip: a container we cannot re-open is useless.
    Trace::open(path).map_err(|e| format!("re-validate {}: {e}", path.display()))?;
    Ok((meta, report))
}

/// Verifies a sharded container by re-executing the configuration it
/// names and comparing the canonical event streams.
///
/// Returns an error when the container does not parse, names a different
/// workload, or was recorded under options whose fingerprint this build
/// cannot reproduce; schedule differences are reported in the returned
/// [`ShardReplay`], not as errors.
pub fn verify_server_trace(path: &Path) -> Result<ShardReplay, String> {
    let trace = Trace::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    verify_against(&trace, path)
}

/// [`verify_server_trace`] for an already-opened container.
pub fn verify_against(trace: &Trace, path: &Path) -> Result<ShardReplay, String> {
    let shards: u32 = trace
        .meta
        .runtime
        .strip_prefix(SHARDED_LABEL_PREFIX)
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("{:?} is not a sharded runtime label", trace.meta.runtime))?;
    if trace.meta.workload != "dmt_server" {
        return Err(format!(
            "sharded traces record dmt_server, not {:?}",
            trace.meta.workload
        ));
    }
    let params = Params::new(
        trace.meta.threads as usize,
        trace.meta.scale as u32,
        trace.meta.input_seed,
    );
    let cfg = canonical_cfg(shards, trace.meta.threads as usize, params);
    let mut opts = cfg.opts.clone();
    opts.shard_domains = shards;
    let current = opts.fingerprint();
    if current != trace.meta.options_fingerprint {
        return Err(format!(
            "options fingerprint mismatch: recorded {:#018x}, this build {current:#018x}",
            trace.meta.options_fingerprint
        ));
    }

    let report = run_sharded_server(&cfg);
    let live = report.canonical_events();

    // Replayed canonical-stream hash, and checkpoint reproduction: the
    // recording checkpoints the cumulative hash every page of events, so
    // fold the live stream and compare at each recorded boundary.
    let mut h = Fnv1a::new();
    let mut folded = 0u64;
    let mut next_cp = 0usize;
    let mut checkpoints_passed = 0u64;
    for (d, ev) in &live {
        ev.fold_domain(*d, &mut h);
        folded += 1;
        while next_cp < trace.checkpoints.len() && trace.checkpoints[next_cp].events == folded {
            if trace.checkpoints[next_cp].hash == h.digest() {
                checkpoints_passed += 1;
            }
            next_cp += 1;
        }
    }
    let replayed_hash = h.digest();

    let recorded = trace.domain_events();
    let divergence = dmt_api::trace::diagnose_domains(&recorded, &live).map(|d| d.to_string());

    Ok(ShardReplay {
        path: path.display().to_string(),
        shards,
        recorded_events: trace.meta.event_count,
        replayed_events: live.len() as u64,
        recorded_hash: trace.meta.schedule_hash,
        replayed_hash,
        checkpoints_passed,
        checkpoints_total: trace.checkpoints.len() as u64,
        output_match: report.output_hash == trace.meta.output_hash,
        commit_log_match: report.commit_hash == trace.meta.commit_log_hash,
        divergence,
    })
}

/// One-line human rendering of a sharded verification result.
pub fn summarize(r: &ShardReplay) -> String {
    let verdict = if r.ok() { "OK" } else { "DIVERGED" };
    format!(
        "[{verdict}] dmt_server sharded-ic-{} {}: events {}/{} hash {:#018x}/{:#018x} checkpoints {}/{} output={} commits={}",
        r.shards,
        r.path,
        r.replayed_events,
        r.recorded_events,
        r.replayed_hash,
        r.recorded_hash,
        r.checkpoints_passed,
        r.checkpoints_total,
        r.output_match,
        r.commit_log_match,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TmpDir(std::path::PathBuf);
    impl Drop for TmpDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    fn tmpdir(tag: &str) -> TmpDir {
        let d = std::env::temp_dir().join(format!("dmt-shard-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("create tmpdir");
        TmpDir(d)
    }

    #[test]
    fn sharded_recording_round_trips_and_verifies() {
        let dir = tmpdir("roundtrip");
        let path = dir.0.join("server-2.dmtrace");
        let (meta, report) =
            record_server_trace(2, 2, Params::new(2, 1, 11), &path).expect("record");
        assert_eq!(meta.runtime, "sharded-ic-2");
        assert_eq!(meta.event_count, report.canonical_events().len() as u64);
        let v = verify_server_trace(&path).expect("verify");
        assert!(v.ok(), "{}", summarize(&v));
        assert_eq!(v.shards, 2);
        assert_eq!(v.checkpoints_passed, v.checkpoints_total);
    }

    #[test]
    fn verification_rejects_foreign_labels() {
        let dir = tmpdir("label");
        let path = dir.0.join("server-1.dmtrace");
        record_server_trace(1, 2, Params::new(2, 1, 5), &path).expect("record");
        let mut bad = Trace::open(&path).expect("open");
        bad.meta.runtime = "consequence-ic".to_string();
        assert!(verify_against(&bad, &path).is_err());
    }
}
