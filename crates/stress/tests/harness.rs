//! End-to-end harness tests: the matrix holds on correct runtimes, the
//! report is self-describing, and the injected bug is caught and shrunk.

use dmt_baselines::RuntimeKind;
use dmt_stress::{
    plan_handle, run_inject_bug, run_matrix, run_sched_diff, run_workload, StressConfig,
};

use dmt_api::PerturbPlan;

fn tiny_matrix(runtimes: Vec<RuntimeKind>, seeds: u64) -> StressConfig {
    StressConfig {
        workloads: vec!["histogram".to_string()],
        runtimes,
        seeds,
        base_seed: 0x5EED,
        threads: 2,
        scale: 1,
        input_seed: 42,
    }
}

#[test]
fn deterministic_cells_are_hash_invariant_under_perturbation() {
    let cfg = tiny_matrix(vec![RuntimeKind::ConsequenceIc, RuntimeKind::DThreads], 2);
    let report = run_matrix(&cfg, |_| {});
    assert!(report.passed, "violations: {:?}", report.violations);
    assert_eq!(report.total_runs, 2 * 3);
    for cell in &report.cells {
        assert_eq!(
            cell.distinct_hashes, 1,
            "{} under {} was not invariant",
            cell.workload, cell.runtime
        );
        assert!(cell.validated);
    }
}

#[test]
fn reports_are_self_describing() {
    let plan = PerturbPlan::full(5);
    let run = run_workload(
        RuntimeKind::ConsequenceIc,
        "histogram",
        2,
        1,
        42,
        plan_handle(&plan),
    );
    assert_eq!(run.report.perturb_seed, 5);
    assert_eq!(run.report.perturb_plan, plan.digest());
    assert!(run.matches_reference);

    let off = run_workload(
        RuntimeKind::ConsequenceIc,
        "histogram",
        2,
        1,
        42,
        dmt_api::PerturbHandle::off(),
    );
    assert_eq!(off.report.perturb_seed, 0);
    assert_eq!(off.report.perturb_plan, 0);
    assert_eq!(off.schedule_hash, run.schedule_hash);
}

#[test]
fn injected_bug_is_caught_shrunk_and_diagnosed() {
    // Divergence under the bug depends on physical timing; a couple of
    // attempts keep this deterministic-enough for CI without weakening the
    // assertion (each attempt sweeps 8 seeds of full-strength plans).
    let mut out = run_inject_bug(8, 4, 400);
    for _ in 0..2 {
        if out.caught {
            break;
        }
        out = run_inject_bug(8, 4, 400);
    }
    assert!(out.caught, "injected eligibility bug was never detected");
    assert_ne!(out.baseline_hash, out.observed_hash);
    let diagnosis = out.diagnosis.expect("a divergence trace must be captured");
    assert!(
        diagnosis.contains("diverge at event"),
        "diagnosis does not name the first divergent event: {diagnosis}"
    );
}

/// PR 4: the fast scheduler must be schedule- and output-identical to the
/// reference scheduler on whole executions, across perturbation seeds and
/// both token-order policies.
#[test]
fn fast_and_reference_schedulers_agree_end_to_end() {
    let cfg = tiny_matrix(
        vec![RuntimeKind::ConsequenceIc, RuntimeKind::ConsequenceRr],
        1,
    );
    let report = run_sched_diff(&cfg, |_| {});
    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        assert!(
            cell.schedules_match && cell.outputs_match && cell.validated,
            "{} under {} diverged: {cell:?}",
            cell.workload,
            cell.runtime
        );
        assert_eq!(cell.fast_hash, cell.reference_hash);
        assert_eq!(cell.runs, 4);
    }
    assert!(report.passed);
    assert_eq!(report.total_runs, 8);
}
