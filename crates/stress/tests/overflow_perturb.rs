//! Adaptive counter-overflow (§3.2) under forced-overflow perturbations.
//!
//! PR 1 asserted schedule determinism only with adaptive overflow *off*;
//! the paper says publication frequency has "no effect on determinism, only
//! on real time". This closes the gap: with adaptation ON (the
//! `consequence-ic` default), forcing every publication interval to its
//! minimum (a publication storm) or stretching it a thousandfold must leave
//! the schedule hash bit-identical — while the publication counters prove
//! the perturbation actually fired.

use std::sync::Arc;

use dmt_api::{PerturbHandle, PerturbSite, Perturber, Tid};
use dmt_baselines::RuntimeKind;
use dmt_stress::run_workload;

/// Forces every policy-chosen overflow interval to a fixed value.
struct ForceInterval(u64);

impl Perturber for ForceInterval {
    fn hit(&self, _site: PerturbSite, _tid: Tid) -> u64 {
        0
    }

    fn overflow_interval(&self, _tid: Tid, _interval: u64) -> u64 {
        self.0
    }
}

fn run_with_interval(name: &str, forced: Option<u64>) -> (u64, u64) {
    let perturb = match forced {
        Some(iv) => PerturbHandle::to(Arc::new(ForceInterval(iv))),
        None => PerturbHandle::off(),
    };
    let run = run_workload(RuntimeKind::ConsequenceIc, name, 4, 1, 42, perturb);
    assert!(run.matches_reference, "{name} output diverged");
    (run.schedule_hash, run.report.counters.publications)
}

#[test]
fn forced_overflow_never_moves_the_schedule_with_adaptation_on() {
    // kmeans is publication-heavy: fork-join rounds keep threads waiting on
    // each other's published clocks.
    let (base_hash, base_pubs) = run_with_interval("kmeans", None);
    let (early_hash, early_pubs) = run_with_interval("kmeans", Some(1));
    let (late_hash, late_pubs) = run_with_interval("kmeans", Some(u64::MAX));

    assert_eq!(
        early_hash, base_hash,
        "publication storm moved the schedule"
    );
    assert_eq!(
        late_hash, base_hash,
        "starved publication moved the schedule"
    );

    // The perturbation must actually have fired: a forced interval of 1
    // publishes far more often than the adaptive policy, a near-infinite
    // one far less.
    assert!(
        early_pubs > base_pubs,
        "interval=1 did not increase publications ({early_pubs} vs {base_pubs})"
    );
    assert!(
        late_pubs < early_pubs,
        "interval=MAX did not decrease publications ({late_pubs} vs {early_pubs})"
    );
}

#[test]
fn biased_overflow_is_invariant_across_runtimes() {
    for kind in [RuntimeKind::ConsequenceRr, RuntimeKind::Dwc] {
        let base = run_workload(kind, "histogram", 2, 1, 42, PerturbHandle::off());
        let storm = run_workload(
            kind,
            "histogram",
            2,
            1,
            42,
            PerturbHandle::to(Arc::new(ForceInterval(1))),
        );
        assert_eq!(
            storm.schedule_hash,
            base.schedule_hash,
            "{} schedule moved under forced overflow",
            kind.label()
        );
    }
}
