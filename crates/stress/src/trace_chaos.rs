//! `stress --trace-chaos`: crash-durable recording under injected
//! failure.
//!
//! The durability claim (see `docs/TRACE_FORMAT.md`, "Durability &
//! salvage") is that a recording killed at *any* point — process death,
//! injected panic, short write, ENOSPC, a torn tail the medium lied
//! about — leaves a `.dmtrace` container whose durable prefix
//! [`Trace::salvage`] recovers, and that replaying the salvaged prefix
//! reproduces the recorded schedule bit-identically up to the tear. A
//! failed run is exactly as reproducible as a healthy one, up to the
//! last event that reached storage.
//!
//! This mode attacks that claim the way the main fuzzer attacks the
//! timing claim, with four scenarios per seed:
//!
//! 1. **Simulated crash** — record with a durable sink, drop it without
//!    `finish`, salvage, replay twice: the prefix must replay without
//!    divergence (clean exhaustion, not a mismatch) and both replays
//!    must agree on the prefix hash and exhaustion coordinates.
//! 2. **Injected panic** — a [`FixedPanic`] kills one seeded victim
//!    mid-run, the recording is torn after the contained death;
//!    salvage + two replays must reproduce the same schedule prefix
//!    (the contained panic is part of the schedule, so agreement on the
//!    prefix hash is agreement on the fault).
//! 3. **I/O faults** — the sink writes through a seeded [`FaultyMedia`]
//!    (one cell per [`IoFaultKind`]); erroring media must surface as a
//!    degraded recording in `RunReport::fault` while the run itself
//!    completes, and the bytes that did land must salvage and replay.
//! 4. **Real SIGKILL** — the harness re-executes itself
//!    (`--chaos-child`) recording in a loop, kills the child with
//!    SIGKILL mid-recording, then salvages and replays whatever hit the
//!    disk.
//!
//! Exit is nonzero if any salvage fails where one is owed, or any
//! salvaged prefix fails to reproduce.

use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use consequence::replay::options_for_label;
use consequence::ConsequenceRuntime;
use dmt_api::{
    CommonConfig, CostModel, FixedPanic, IoFaultKind, IoFaultPlan, PerturbHandle, Runtime,
    TraceHandle,
};
use dmt_bench::json_struct;
use dmt_bench::replay::{ident_meta, replay_file, Replayed};
use dmt_trace::{DiskSink, Trace, TraceMedia};
use dmt_workloads::{workload_by_name, Params};

use crate::mix64;
use crate::panic_inject::PanicInjector;

/// Storage that fails on a seeded plan, for drilling the salvage path.
///
/// Wraps a real file so the bytes that "survive" the fault are on disk
/// for [`Trace::salvage`]. The three kinds model distinct media
/// betrayals:
///
/// - [`IoFaultKind::ShortWrite`]: writes past the trigger offset are
///   truncated at the boundary; once nothing more fits, writes return
///   `Ok(0)` and the writer's `write_all` surfaces `WriteZero`.
/// - [`IoFaultKind::NoSpace`]: the first write crossing the trigger
///   errors with `StorageFull`, like a full disk.
/// - [`IoFaultKind::TornTail`]: writes past the trigger *claim* success
///   but the bytes never land — the writer finishes happily and the
///   betrayal only shows when digests are checked at open.
pub struct FaultyMedia {
    inner: File,
    pos: u64,
    kind: IoFaultKind,
    at_byte: u64,
}

impl FaultyMedia {
    /// Opens `path` (truncating) as faulty storage failing per `plan`.
    ///
    /// The trigger offset is floored at 2 KiB so the header and
    /// write-ahead identity record always land: chaos drills salvage of
    /// the *schedule*; a container whose anchor never reached storage is
    /// unsalvageable by design (the truncation fuzz covers that).
    pub fn create(path: &Path, plan: IoFaultPlan) -> io::Result<FaultyMedia> {
        Ok(FaultyMedia {
            inner: File::create(path)?,
            pos: 0,
            kind: plan.kind,
            at_byte: plan.at_byte.max(2048),
        })
    }
}

impl Write for FaultyMedia {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let end = self.pos + buf.len() as u64;
        if end <= self.at_byte {
            let n = self.inner.write(buf)?;
            self.pos += n as u64;
            return Ok(n);
        }
        match self.kind {
            IoFaultKind::ShortWrite => {
                // Absorb what still fits; at the boundary return Ok(0),
                // which write_all turns into WriteZero.
                let fit = (self.at_byte.saturating_sub(self.pos)) as usize;
                if fit == 0 {
                    return Ok(0);
                }
                let n = self.inner.write(&buf[..fit])?;
                self.pos += n as u64;
                Ok(n)
            }
            IoFaultKind::NoSpace => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            IoFaultKind::TornTail => {
                // Lie: persist what fits, claim it all landed.
                let fit = (self.at_byte.saturating_sub(self.pos)) as usize;
                if fit > 0 {
                    self.inner.write_all(&buf[..fit])?;
                }
                self.pos = end;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for FaultyMedia {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let p = self.inner.seek(pos)?;
        self.pos = p;
        Ok(p)
    }
}

impl TraceMedia for FaultyMedia {}

/// One chaos scenario outcome.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// Scenario name: `crash`, `panic`, `io-short-write`, `io-no-space`,
    /// `io-torn-tail`, `sigkill`.
    pub scenario: String,
    pub workload: String,
    pub seed: u64,
    /// Events the salvage recovered from the torn container.
    pub salvaged_events: u64,
    /// Bytes past the tear the salvage gave up on.
    pub bytes_lost: u64,
    /// The fault as observed (injected description or `RunReport::fault`).
    pub fault: String,
    /// The torn container salvaged where a salvage was owed.
    pub salvaged: bool,
    /// Every replay of the salvaged prefix reproduced it (no divergence,
    /// prefix hash equal, clean exhaustion).
    pub reproduced: bool,
    /// Two independent replays agreed with each other on the prefix
    /// hash, replayed hash and exhaustion coordinates.
    pub deterministic: bool,
}

/// The full `--trace-chaos` result.
#[derive(Clone, Debug)]
pub struct TraceChaosReport {
    pub threads: usize,
    pub seeds: u64,
    pub base_seed: u64,
    pub total_runs: u64,
    pub cells: Vec<ChaosCell>,
    pub passed: bool,
}

json_struct!(ChaosCell {
    scenario,
    workload,
    seed,
    salvaged_events,
    bytes_lost,
    fault,
    salvaged,
    reproduced,
    deterministic
});

json_struct!(TraceChaosReport {
    threads,
    seeds,
    base_seed,
    total_runs,
    cells,
    passed
});

struct TmpDir(PathBuf);
impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
fn tmpdir(tag: &str) -> TmpDir {
    let d = std::env::temp_dir().join(format!("dmt-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create chaos tmpdir");
    TmpDir(d)
}

/// The chaos recording cell: reverse_index under Consequence-IC. Chosen
/// for trace volume — ~83 event pages (~190 KiB) at 2 threads, scale 1 —
/// so every seeded fault offset (up to 48 KiB) lands mid-stream and a
/// salvage genuinely loses a tail.
const CHAOS_RUNTIME: &str = "consequence-ic";
const CHAOS_WORKLOAD: &str = "reverse_index";

/// Records one cell through `sink` (already attached media/file) without
/// ever calling `finish` — the recording equivalent of dying. Returns
/// the run's fault string, if the sink degraded it.
fn record_and_abandon(
    workload: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
    perturb: PerturbHandle,
    sink: Arc<DiskSink>,
) -> Option<String> {
    let opts = options_for_label(CHAOS_RUNTIME).expect("chaos runtime is a preset");
    let w = workload_by_name(workload).expect("chaos workload exists");
    let p = Params::new(threads, scale, input_seed);
    let cfg = CommonConfig {
        heap_pages: w.heap_pages(&p),
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace: TraceHandle::to(Arc::clone(&sink) as _),
        perturb,
        witness: dmt_api::WitnessHandle::off(),
    };
    let mut rt = ConsequenceRuntime::new(cfg, opts);
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    // Crash-consistency point: everything recorded so far reaches the OS
    // (ignore errors — faulty media may refuse), then the sink is dropped
    // without finish, leaving the container torn.
    let _ = sink.seal_and_flush();
    report.fault
}

/// The write-ahead identity record the chaos cells record under.
fn chaos_ident(
    threads: usize,
    scale: u32,
    input_seed: u64,
    perturb: &PerturbHandle,
) -> dmt_trace::TraceMeta {
    let opts = options_for_label(CHAOS_RUNTIME).expect("chaos runtime is a preset");
    let w = workload_by_name(CHAOS_WORKLOAD).expect("chaos workload exists");
    let p = Params::new(threads, scale, input_seed);
    ident_meta(
        CHAOS_RUNTIME,
        CHAOS_WORKLOAD,
        threads,
        scale,
        input_seed,
        w.heap_pages(&p),
        64,
        opts.fingerprint(),
        perturb,
    )
}

/// Salvages `path` and replays it twice, folding the outcome into a cell.
fn salvage_and_replay(
    scenario: &str,
    seed: u64,
    fault: String,
    path: &Path,
    total_runs: &mut u64,
) -> ChaosCell {
    let (salvaged, salvaged_events, bytes_lost) = match Trace::salvage(path) {
        Ok(p) => (true, p.trace.meta.event_count, p.loss.bytes_lost),
        Err(_) => (false, 0, 0),
    };
    let (reproduced, deterministic) = if salvaged && salvaged_events > 0 {
        let a = replay_file(path);
        let b = replay_file(path);
        *total_runs += 2;
        match (a, b) {
            (Ok(a), Ok(b)) => (a.ok() && b.ok(), replays_agree(&a, &b)),
            _ => (false, false),
        }
    } else {
        // Nothing recoverable to replay: reproduction is vacuous, but
        // the salvage verdict still gates the cell.
        (salvaged, salvaged)
    };
    ChaosCell {
        scenario: scenario.to_string(),
        workload: CHAOS_WORKLOAD.to_string(),
        seed,
        salvaged_events,
        bytes_lost,
        fault,
        salvaged,
        reproduced,
        deterministic,
    }
}

fn replays_agree(a: &Replayed, b: &Replayed) -> bool {
    a.prefix_hash == b.prefix_hash
        && a.replayed_hash == b.replayed_hash
        && a.exhausted_at == b.exhausted_at
        && a.replayed_events == b.replayed_events
}

/// Scenario 1: durable recording dropped without `finish`.
fn crash_cell(
    dir: &Path,
    threads: usize,
    scale: u32,
    seed: u64,
    total_runs: &mut u64,
) -> ChaosCell {
    let path = dir.join(format!("crash-{seed}.dmtrace"));
    let perturb = PerturbHandle::off();
    let ident = chaos_ident(threads, scale, seed, &perturb);
    let sink = Arc::new(DiskSink::create_durable(&path, &ident, 1).expect("create durable sink"));
    let fault = record_and_abandon(CHAOS_WORKLOAD, threads, scale, seed, perturb, sink);
    *total_runs += 1;
    salvage_and_replay(
        "crash",
        seed,
        fault.unwrap_or_else(|| "simulated crash: sink dropped without finish".into()),
        &path,
        total_runs,
    )
}

/// Scenario 2: a seeded [`FixedPanic`] kills one victim mid-run; the
/// recording of the panicked run is then torn. The salvaged prefix
/// contains the contained death, so two agreeing replays reproduce the
/// failure at its fault point.
fn panic_cell(
    dir: &Path,
    threads: usize,
    scale: u32,
    seed: u64,
    total_runs: &mut u64,
) -> ChaosCell {
    let path = dir.join(format!("panic-{seed}.dmtrace"));
    let inj = PanicInjector::from_seed(seed, threads);
    let perturb = PerturbHandle::to(Arc::new(FixedPanic {
        site: inj.site,
        victim: inj.victim,
        nth: inj.nth,
        inner: PerturbHandle::off(),
    }));
    let ident = chaos_ident(threads, scale, seed, &perturb);
    let sink = Arc::new(DiskSink::create_durable(&path, &ident, 1).expect("create durable sink"));
    let fault = record_and_abandon(CHAOS_WORKLOAD, threads, scale, seed, perturb, sink);
    *total_runs += 1;
    salvage_and_replay(
        "panic",
        seed,
        fault.unwrap_or_else(|| {
            format!(
                "injected panic: {} victim {} nth {}",
                inj.site.name(),
                inj.victim.0,
                inj.nth
            )
        }),
        &path,
        total_runs,
    )
}

/// Scenario 3: the sink writes through seeded [`FaultyMedia`]. Erroring
/// kinds must degrade (not kill) the run — `RunReport::fault` names the
/// write failure — and the surviving bytes must salvage and replay.
fn io_fault_cell(
    dir: &Path,
    threads: usize,
    scale: u32,
    seed: u64,
    kind: IoFaultKind,
    total_runs: &mut u64,
) -> ChaosCell {
    let path = dir.join(format!("io-{kind}-{seed}.dmtrace"));
    let mut plan = IoFaultPlan::from_seed(seed);
    plan.kind = kind;
    let perturb = PerturbHandle::off();
    let ident = chaos_ident(threads, scale, seed, &perturb);
    let media = FaultyMedia::create(&path, plan).expect("create faulty media");
    let sink = Arc::new(
        DiskSink::create_on(Box::new(media), Some(&ident), 1).expect("create sink on faulty media"),
    );
    let fault = record_and_abandon(CHAOS_WORKLOAD, threads, scale, seed, perturb, sink);
    *total_runs += 1;
    let scenario = format!("io-{kind}");
    let mut cell = salvage_and_replay(
        &scenario,
        seed,
        fault
            .clone()
            .unwrap_or_else(|| format!("injected {plan} (run not degraded)")),
        &path,
        total_runs,
    );
    // Erroring media must have surfaced as a degraded recording — a
    // silently lost trace is its own failure (torn tails are silent by
    // construction; their betrayal is caught at salvage instead).
    if kind != IoFaultKind::TornTail {
        let degraded = fault.is_some_and(|f| f.contains("degraded recording"));
        cell.reproduced &= degraded;
        if !degraded {
            cell.fault = format!("{} — but RunReport::fault never surfaced it", cell.fault);
        }
    }
    cell
}

/// Scenario 4: a real `SIGKILL` of a recording child process.
///
/// Spawns the current executable with `--chaos-child DIR` (see
/// [`run_chaos_child`]), waits for a container to start growing on
/// disk, kills the child outright, then salvages and replays what
/// landed. Finished containers from earlier loop iterations replay as
/// full traces; the torn last one exercises the salvage path. Files too
/// young to carry the write-ahead anchor (the kill raced the first
/// flush) are skipped — durability starts at the anchor.
fn sigkill_cell(threads: usize, scale: u32, seed: u64, total_runs: &mut u64) -> ChaosCell {
    let dir = tmpdir(&format!("sigkill-{seed}"));
    let exe = match std::env::current_exe() {
        Ok(e) => e,
        Err(e) => {
            return ChaosCell {
                scenario: "sigkill".into(),
                workload: CHAOS_WORKLOAD.into(),
                seed,
                salvaged_events: 0,
                bytes_lost: 0,
                fault: format!("current_exe: {e}"),
                salvaged: false,
                reproduced: false,
                deterministic: false,
            }
        }
    };
    let mut child = std::process::Command::new(exe)
        .arg("--chaos-child")
        .arg(&dir.0)
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--scale")
        .arg(scale.to_string())
        .arg("--base-seed")
        .arg(seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn chaos child");
    // Kill once some recording visibly grew past its identity anchor.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let grown = std::fs::read_dir(&dir.0)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok())
            .any(|e| e.metadata().is_ok_and(|m| m.len() > 4096));
        if grown || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();
    *total_runs += 1;

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir.0)
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dmtrace"))
        .collect();
    files.sort();
    let mut salvaged_events = 0u64;
    let mut bytes_lost = 0u64;
    let mut owed = 0u64;
    let mut salvaged_ok = 0u64;
    let mut reproduced = true;
    let mut deterministic = true;
    for f in &files {
        let len = std::fs::metadata(f).map(|m| m.len()).unwrap_or(0);
        match Trace::salvage(f) {
            Ok(p) => {
                owed += 1;
                salvaged_ok += 1;
                salvaged_events += p.trace.meta.event_count;
                bytes_lost += p.loss.bytes_lost;
                if p.trace.meta.event_count > 0 {
                    let a = replay_file(f);
                    let b = replay_file(f);
                    *total_runs += 2;
                    match (a, b) {
                        (Ok(a), Ok(b)) => {
                            reproduced &= a.ok() && b.ok();
                            deterministic &= replays_agree(&a, &b);
                        }
                        _ => {
                            reproduced = false;
                            deterministic = false;
                        }
                    }
                }
            }
            // A file the kill caught before the anchor flush has nothing
            // durable in it yet; anything bigger owed us a salvage.
            Err(_) if len < 256 => {}
            Err(_) => {
                owed += 1;
                reproduced = false;
            }
        }
    }
    ChaosCell {
        scenario: "sigkill".into(),
        workload: CHAOS_WORKLOAD.into(),
        seed,
        salvaged_events,
        bytes_lost,
        fault: format!(
            "SIGKILL mid-recording: {} container(s), {} salvaged",
            files.len(),
            salvaged_ok
        ),
        salvaged: !files.is_empty() && salvaged_ok == owed,
        reproduced,
        deterministic,
    }
}

/// The child side of the SIGKILL scenario: records durable containers in
/// a loop (cadence 1 — every page flushed) until killed. Never returns.
pub fn run_chaos_child(dir: &Path, threads: usize, scale: u32, base_seed: u64) -> ! {
    std::fs::create_dir_all(dir).expect("create chaos child dir");
    let mut i = 0u64;
    loop {
        let seed = base_seed ^ i;
        let path = dir.join(format!("kill-{i:04}.dmtrace"));
        let perturb = PerturbHandle::off();
        let ident = chaos_ident(threads, scale, seed, &perturb);
        let sink =
            Arc::new(DiskSink::create_durable(&path, &ident, 1).expect("create durable sink"));
        let opts = options_for_label(CHAOS_RUNTIME).expect("chaos runtime is a preset");
        let w = workload_by_name(CHAOS_WORKLOAD).expect("chaos workload exists");
        let p = Params::new(threads, scale, seed);
        let cfg = CommonConfig {
            heap_pages: w.heap_pages(&p),
            max_threads: 64,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget: 4,
            trace: TraceHandle::to(Arc::clone(&sink) as Arc<dyn dmt_api::trace::TraceSink>),
            perturb,
            witness: dmt_api::WitnessHandle::off(),
        };
        let mut rt = ConsequenceRuntime::new(cfg, opts);
        let prepared = w.prepare(&mut rt, &p);
        let report = rt.run(prepared.job);
        let _ = sink.finish(dmt_trace::TraceMeta {
            commit_log_hash: report.commit_log_hash,
            ..ident
        });
        i += 1;
    }
}

/// Runs the trace-chaos matrix and returns the report.
///
/// `seeds` chaos rounds; each round runs the crash, panic and three
/// I/O-fault scenarios, plus one real-SIGKILL scenario for the whole
/// matrix (process spawning is the expensive part).
pub fn run_trace_chaos(
    threads: usize,
    scale: u32,
    seeds: u64,
    base_seed: u64,
    mut progress: impl FnMut(&ChaosCell),
) -> TraceChaosReport {
    let dir = tmpdir("cells");
    let mut cells = Vec::new();
    let mut total_runs = 0u64;
    for s in 0..seeds.max(1) {
        let seed = mix64(base_seed ^ 0x7AC3_CAFE ^ (s + 1));
        let c = crash_cell(&dir.0, threads, scale, seed, &mut total_runs);
        progress(&c);
        cells.push(c);
        let c = panic_cell(&dir.0, threads, scale, seed, &mut total_runs);
        progress(&c);
        cells.push(c);
        for kind in IoFaultKind::ALL {
            let c = io_fault_cell(&dir.0, threads, scale, seed, kind, &mut total_runs);
            progress(&c);
            cells.push(c);
        }
    }
    let c = sigkill_cell(
        threads,
        scale,
        mix64(base_seed ^ 0x51_6B11),
        &mut total_runs,
    );
    progress(&c);
    cells.push(c);

    let passed = cells
        .iter()
        .all(|c| c.salvaged && c.reproduced && c.deterministic);
    TraceChaosReport {
        threads,
        seeds,
        base_seed,
        total_runs,
        cells,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_api::Tid;
    use dmt_trace::{TraceError, TraceWriter};

    fn sample_events(n: u64) -> Vec<dmt_api::trace::Event> {
        (0..n)
            .map(|i| dmt_api::trace::Event::TokenAcquire {
                tid: Tid((i % 3) as u32),
                clock: 100 + i,
            })
            .collect()
    }

    #[test]
    fn short_write_media_truncates_then_zero_writes() {
        let dir = tmpdir("t-short");
        let path = dir.0.join("m.bin");
        let mut m = FaultyMedia::create(
            &path,
            IoFaultPlan {
                kind: IoFaultKind::ShortWrite,
                at_byte: 0, // floored to 2048
            },
        )
        .unwrap();
        let chunk = vec![0xAB; 1500];
        assert_eq!(m.write(&chunk).unwrap(), 1500);
        assert_eq!(m.write(&chunk).unwrap(), 548, "truncated at the floor");
        assert_eq!(m.write(&chunk).unwrap(), 0, "nothing fits any more");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 2048);
    }

    #[test]
    fn torn_tail_media_lies_about_persistence() {
        let dir = tmpdir("t-torn");
        let path = dir.0.join("m.bin");
        let mut m = FaultyMedia::create(
            &path,
            IoFaultPlan {
                kind: IoFaultKind::TornTail,
                at_byte: 4096,
            },
        )
        .unwrap();
        let chunk = vec![0xCD; 3000];
        assert_eq!(m.write(&chunk).unwrap(), 3000);
        assert_eq!(m.write(&chunk).unwrap(), 3000, "claims success");
        m.flush().unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            4096,
            "only the pre-tear bytes landed"
        );
        // Seeking back (the header patch) still works on the real region.
        m.seek(SeekFrom::Start(0)).unwrap();
        assert_eq!(m.write(&[1, 2, 3]).unwrap(), 3);
    }

    /// Satellite regression: a mid-run write error must surface into
    /// `RunReport::fault` as a degraded recording — the run completes,
    /// the loss is named, and the bytes that landed salvage.
    #[test]
    fn disk_write_error_degrades_the_run_report() {
        let dir = tmpdir("t-degrade");
        let path = dir.0.join("degraded.dmtrace");
        let perturb = PerturbHandle::off();
        let ident = chaos_ident(2, 1, 7, &perturb);
        let media = FaultyMedia::create(
            &path,
            IoFaultPlan {
                kind: IoFaultKind::NoSpace,
                at_byte: 8 * 1024,
            },
        )
        .unwrap();
        let sink = Arc::new(DiskSink::create_on(Box::new(media), Some(&ident), 1).unwrap());
        let opts = options_for_label(CHAOS_RUNTIME).unwrap();
        let w = workload_by_name(CHAOS_WORKLOAD).unwrap();
        let p = Params::new(2, 1, 7);
        let cfg = CommonConfig {
            heap_pages: w.heap_pages(&p),
            max_threads: 64,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget: 4,
            trace: TraceHandle::to(Arc::clone(&sink) as _),
            perturb,
            witness: dmt_api::WitnessHandle::off(),
        };
        let mut rt = ConsequenceRuntime::new(cfg, opts);
        let prepared = w.prepare(&mut rt, &p);
        let report = rt.run(prepared.job);
        let fault = report
            .fault
            .expect("write error must reach RunReport::fault");
        assert!(
            fault.contains("degraded recording") && fault.contains("trace write failed"),
            "fault names the degradation: {fault}"
        );
        assert!(report.degraded, "a degraded recording marks the run");
        assert!(
            fault.contains("at event #"),
            "fault names the point of failure: {fault}"
        );
        // The sink refuses to pretend the container is complete.
        assert!(sink.finish(ident.clone()).is_err());
        // What landed before ENOSPC is salvageable.
        let p = Trace::salvage(&path).expect("prefix salvages");
        assert!(p.trace.meta.event_count > 0, "flushed pages recovered");
        assert!(!p.loss.complete);
    }

    #[test]
    fn crash_cell_salvages_and_reproduces() {
        let dir = tmpdir("t-crash");
        let mut runs = 0;
        let c = crash_cell(&dir.0, 2, 1, 11, &mut runs);
        assert!(c.salvaged, "{c:?}");
        assert!(c.reproduced, "{c:?}");
        assert!(c.deterministic, "{c:?}");
        assert!(c.salvaged_events > 0, "{c:?}");
    }

    #[test]
    fn torn_tail_container_falls_back_to_salvage() {
        // A finished-looking container whose tail never landed: the
        // directory offset is patched into the header but points at
        // dropped bytes, so open() fails and salvage recovers the prefix.
        let dir = tmpdir("t-tornfull");
        let path = dir.0.join("torn.dmtrace");
        let perturb = PerturbHandle::off();
        let ident = chaos_ident(2, 1, 3, &perturb);
        let media = FaultyMedia::create(
            &path,
            IoFaultPlan {
                kind: IoFaultKind::TornTail,
                at_byte: 3 * 1024,
            },
        )
        .unwrap();
        let mut w = TraceWriter::create_on(Box::new(media), Some(&ident), 1).unwrap();
        for ev in sample_events(2000) {
            w.push(&ev).unwrap();
        }
        // finish() succeeds — the medium lied — but open() sees the tear.
        w.finish(ident).unwrap();
        assert!(matches!(
            Trace::open(&path),
            Err(TraceError::Truncated { .. } | TraceError::ChecksumMismatch { .. })
        ));
        let p = Trace::salvage(&path).expect("prefix salvages");
        assert!(p.trace.meta.event_count > 0);
        assert!(p.trace.meta.event_count < 2000);
    }
}
