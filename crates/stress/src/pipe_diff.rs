//! `stress --pipe-diff`: differential validation of the commit pipeline.
//!
//! The pipelined asynchronous commit takes byte merging, commit-log
//! folding, GC execution and twin preparation off the token's critical
//! path and runs them on a background settle pool. Its contract is the
//! same shape as the fast scheduler's: the pipeline changes how fast a
//! commit's bookkeeping happens, never anything the schedule or the
//! program can observe — every deferred cost is charged to the owning
//! thread's logical clock at publish time, and the settle pool's ordered
//! frontier folds the commit log in exactly the serial order.
//!
//! This mode checks that contract end to end. For every workload × every
//! Consequence-backed runtime (dwc, consequence-rr, consequence-ic) it
//! runs the pipelined configuration and the serial oracle
//! (`Options::without("pipeline_commit")`) over the same
//! perturbation-seed matrix the main fuzzer uses, and requires every run
//! — baseline and perturbed, pipelined and serial — to produce the same
//! schedule hash, the same output hash **and the same commit-log hash**.
//! The commit-log digest is the extra oracle the pipeline needs: it folds
//! `(version, committer, page, page-content hash)` for every committed
//! page, so a settle that merged wrong bytes, folded out of order, or ran
//! GC against the wrong chain state diverges even when the program output
//! happens not to.

use consequence::Options;
use dmt_api::{PerturbHandle, PerturbPlan};
use dmt_baselines::RuntimeKind;
use dmt_bench::json_struct;

use crate::sched_diff::run_consequence_workload;
use crate::{mix64, plan_handle, StressConfig};

/// The base option presets that run on Consequence's versioned memory.
/// Other kinds (pthreads, dthreads) have no commit path to pipeline.
fn kind_options(kind: RuntimeKind) -> Option<Options> {
    match kind {
        RuntimeKind::Dwc => Some(Options::dwc()),
        RuntimeKind::ConsequenceRr => Some(Options::consequence_rr()),
        RuntimeKind::ConsequenceIc => Some(Options::consequence_ic()),
        _ => None,
    }
}

/// One workload × runtime cell of the pipeline-differential matrix.
#[derive(Clone, Debug)]
pub struct PipeDiffCell {
    pub workload: String,
    pub runtime: String,
    /// Total runs in the cell: (pipelined + serial) × (baseline + seeds).
    pub runs: u64,
    /// Unperturbed schedule hash with the pipeline on.
    pub pipelined_hash: u64,
    /// Unperturbed schedule hash under the serial oracle.
    pub serial_hash: u64,
    /// Every run (both modes, every seed) hashed to `pipelined_hash`.
    pub schedules_match: bool,
    /// Every run produced the same output hash.
    pub outputs_match: bool,
    /// Every run folded the same commit-log digest.
    pub commit_logs_match: bool,
    /// Every run matched the sequential reference output.
    pub validated: bool,
}

/// The full pipeline-differential result.
#[derive(Clone, Debug)]
pub struct PipeDiffReport {
    pub threads: usize,
    pub seeds: u64,
    pub base_seed: u64,
    pub total_runs: u64,
    pub cells: Vec<PipeDiffCell>,
    pub passed: bool,
}

json_struct!(PipeDiffCell {
    workload,
    runtime,
    runs,
    pipelined_hash,
    serial_hash,
    schedules_match,
    outputs_match,
    commit_logs_match,
    validated
});

json_struct!(PipeDiffReport {
    threads,
    seeds,
    base_seed,
    total_runs,
    cells,
    passed
});

/// Runs the pipelined-vs-serial commit matrix and returns the report.
///
/// Non-Consequence runtimes in `cfg.runtimes` are skipped. `progress` is
/// called once per finished cell.
pub fn run_pipe_diff(
    cfg: &StressConfig,
    mut progress: impl FnMut(&PipeDiffCell),
) -> PipeDiffReport {
    let mut cells = Vec::new();
    let mut total_runs = 0u64;

    for (wi, name) in cfg.workloads.iter().enumerate() {
        for (ki, &kind) in cfg.runtimes.iter().enumerate() {
            let Some(base_opts) = kind_options(kind) else {
                continue;
            };
            let piped_opts = base_opts.clone();
            let serial_opts = base_opts.without("pipeline_commit");
            let run = |opts: &Options, perturb: PerturbHandle| {
                run_consequence_workload(
                    opts.clone(),
                    name,
                    cfg.threads,
                    cfg.scale,
                    cfg.input_seed,
                    perturb,
                )
            };

            let piped = run(&piped_opts, PerturbHandle::off());
            let serial = run(&serial_opts, PerturbHandle::off());
            total_runs += 2;
            let mut schedules_match = piped.schedule_hash == serial.schedule_hash;
            let mut outputs_match = piped.output_hash == serial.output_hash;
            let mut commit_logs_match =
                piped.report.commit_log_hash == serial.report.commit_log_hash;
            let mut validated = piped.matches_reference && serial.matches_reference;
            let log_hash = piped.report.commit_log_hash;

            // Same derivation as `run_matrix`, salted so this mode
            // exercises plans distinct from the other differential modes.
            let cell_salt = mix64(cfg.base_seed ^ 0x919E_D1FF ^ ((wi as u64) << 32) ^ (ki as u64));
            for s in 0..cfg.seeds {
                let plan = PerturbPlan::full(mix64(cell_salt ^ (s + 1)));
                let pp = run(&piped_opts, plan_handle(&plan));
                let ps = run(&serial_opts, plan_handle(&plan));
                total_runs += 2;
                schedules_match &= pp.schedule_hash == piped.schedule_hash
                    && ps.schedule_hash == piped.schedule_hash;
                outputs_match &=
                    pp.output_hash == piped.output_hash && ps.output_hash == piped.output_hash;
                commit_logs_match &=
                    pp.report.commit_log_hash == log_hash && ps.report.commit_log_hash == log_hash;
                validated &= pp.matches_reference && ps.matches_reference;
            }

            let cell = PipeDiffCell {
                workload: name.clone(),
                runtime: kind.label().to_string(),
                runs: 2 * (1 + cfg.seeds),
                pipelined_hash: piped.schedule_hash,
                serial_hash: serial.schedule_hash,
                schedules_match,
                outputs_match,
                commit_logs_match,
                validated,
            };
            progress(&cell);
            cells.push(cell);
        }
    }

    let passed = !cells.is_empty()
        && cells
            .iter()
            .all(|c| c.schedules_match && c.outputs_match && c.commit_logs_match && c.validated);
    PipeDiffReport {
        threads: cfg.threads,
        seeds: cfg.seeds,
        base_seed: cfg.base_seed,
        total_runs,
        cells,
        passed,
    }
}
