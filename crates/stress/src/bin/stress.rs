//! Differential fuzzing CLI for the determinism contract.
//!
//! ```text
//! cargo run -p dmt-stress --release --bin stress -- --smoke
//! cargo run -p dmt-stress --release --bin stress -- --deep
//! cargo run -p dmt-stress --release --bin stress -- --inject-bug
//! cargo run -p dmt-stress --release --bin stress -- --inject-panic
//! cargo run -p dmt-stress --release --bin stress -- --sched-diff
//! cargo run -p dmt-stress --release --bin stress -- --pipe-diff
//! cargo run -p dmt-stress --release --bin stress -- --shard-diff
//! cargo run -p dmt-stress --release --bin stress -- --record traces/
//! cargo run -p dmt-stress --release --bin stress -- --replay traces/
//! cargo run -p dmt-stress --release --bin stress -- --soak --smoke
//! cargo run -p dmt-stress --release --bin stress -- --trace-chaos
//! cargo run -p dmt-stress --release --bin stress -- \
//!     --workloads histogram,kmeans --runtimes consequence-ic --seeds 4
//! ```
//!
//! Matrix modes exit 0 when every oracle held (schedule hash invariant
//! across all perturbation seeds for the deterministic runtimes, outputs
//! equal to the sequential reference, pthreads control observed to vary)
//! and 1 otherwise. `--inject-bug` inverts the convention: it *must* catch
//! the deliberately injected eligibility bug, print the shrunk reproducer
//! plus the first divergent event, and exit 1; exiting 0 means the harness
//! failed to detect a real determinism bug. `--inject-panic` kills one
//! seeded victim thread per run at a lock/barrier/commit site and requires
//! the death to be contained deterministically — same schedule hash, same
//! panic set on rerun, no hangs — exiting 0 when containment held
//! everywhere. `--sched-diff` runs the seed
//! matrix under both the fast and the reference scheduler and exits 1 on
//! any schedule-hash or output divergence between them (the PR 4 fast
//! path must be bit-identical). `--pipe-diff` runs the same matrix with
//! the commit pipeline on versus the serial oracle
//! (`Options::without("pipeline_commit")`) and exits 1 on any schedule,
//! output or commit-log divergence — the asynchronous settle pool must be
//! unobservable. `--shard-diff` runs the `dmt_server`
//! workload across 1/2/4 token domains and exits 1 unless every shard
//! count is run-to-run deterministic, the 1-shard schedule is bit-identical
//! to the unsharded registry workload, and every final store matches the
//! sequential reference (see `docs/SHARDING.md`). `--record <dir>` writes one `.dmtrace`
//! container per workload × Consequence runtime of the active matrix,
//! plus one sharded-server container (2 token domains)
//! (see `docs/TRACE_FORMAT.md`); `--replay <file-or-dir>` re-executes
//! recorded containers and exits 1 on any schedule, output or commit-log
//! divergence, printing the first-divergent-event diagnosis (see
//! `docs/REPLAY.md`). `--soak` runs the bounded-resource soak grid
//! (64-thread smoke; 256-thread full with `--deep`) followed by the
//! mixed-scenario matrix — all 16 on/off compositions of perturbation ×
//! injected panic × sharding × live recording — and exits 1 unless every
//! soak cell stayed within its resource envelope and every composition
//! reproduced its schedule hash and held its semantic oracle (see
//! `docs/SOAK.md`). `--trace-chaos` records under injected failure —
//! simulated crashes, seeded thread deaths, short writes, ENOSPC, torn
//! tails, and a real SIGKILL of a recording child — then salvages each
//! torn container and replays it to its fault point, exiting 1 on any
//! unsalvageable container or unreproduced failure (see
//! `docs/TRACE_FORMAT.md`). JSON reports land in `target/stress/`.
//! See `docs/STRESS.md`.

use std::fs;
use std::time::Instant;

use consequence::replay;
use dmt_baselines::RuntimeKind;
use dmt_bench::json::ToJson;
use dmt_bench::replay::{record_to, replay_file, summarize, trace_files};
use dmt_stress::{
    run_inject_bug, run_matrix, run_panic_inject, run_pipe_diff, run_sched_diff, run_shard_diff,
    StressConfig,
};

fn dump<T: ToJson>(name: &str, value: &T) {
    let dir = "target/stress";
    let _ = fs::create_dir_all(dir);
    let path = format!("{dir}/{name}.json");
    if fs::write(&path, value.to_json()).is_ok() {
        eprintln!("[json: {path}]");
    }
}

fn runtime_by_label(label: &str) -> Option<RuntimeKind> {
    RuntimeKind::ALL.into_iter().find(|k| k.label() == label)
}

fn usage() -> ! {
    eprintln!(
        "usage: stress [--smoke|--deep|--inject-bug|--inject-panic|--sched-diff|--pipe-diff|--shard-diff|--soak|--trace-chaos] \
         [--record DIR] [--replay FILE-OR-DIR] \
         [--workloads a,b,..] [--runtimes a,b,..] [--seeds N] [--threads N] [--scale N] \
         [--base-seed N]"
    );
    std::process::exit(2);
}

fn parse_u64(args: &[String], i: &mut usize, flag: &str) -> u64 {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric argument");
            usage()
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = "smoke".to_string();
    let mut cfg = StressConfig::smoke();
    let mut custom = false;
    let mut inject = false;
    let mut inject_panic = false;
    let mut sched_diff = false;
    let mut pipe_diff = false;
    let mut shard_diff = false;
    let mut soak = false;
    let mut trace_chaos = false;
    let mut record_dir: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut chaos_child: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-chaos" => trace_chaos = true,
            "--chaos-child" => {
                i += 1;
                chaos_child = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--record" => {
                i += 1;
                record_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--replay" => {
                i += 1;
                replay_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--smoke" => {
                mode = "smoke".into();
                let c = StressConfig::smoke();
                if !custom {
                    cfg = c;
                }
            }
            "--deep" => {
                mode = "deep".into();
                let base = StressConfig::deep();
                if custom {
                    cfg.seeds = base.seeds;
                    cfg.threads = base.threads;
                } else {
                    cfg = base;
                }
            }
            "--inject-bug" => inject = true,
            "--inject-panic" => inject_panic = true,
            "--sched-diff" => sched_diff = true,
            "--pipe-diff" => pipe_diff = true,
            "--shard-diff" => shard_diff = true,
            "--soak" => soak = true,
            "--workloads" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                cfg.workloads = list.split(',').map(String::from).collect();
                custom = true;
                mode = "custom".into();
            }
            "--runtimes" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                cfg.runtimes = list
                    .split(',')
                    .map(|l| {
                        runtime_by_label(l).unwrap_or_else(|| {
                            eprintln!("unknown runtime {l:?} (labels: pthreads, dthreads, dwc, consequence-rr, consequence-ic)");
                            usage()
                        })
                    })
                    .collect();
                custom = true;
                mode = "custom".into();
            }
            "--seeds" => cfg.seeds = parse_u64(&args, &mut i, "--seeds"),
            "--threads" => cfg.threads = parse_u64(&args, &mut i, "--threads") as usize,
            "--scale" => cfg.scale = parse_u64(&args, &mut i, "--scale") as u32,
            "--base-seed" => cfg.base_seed = parse_u64(&args, &mut i, "--base-seed"),
            _ => usage(),
        }
        i += 1;
    }

    // Internal: the SIGKILL chaos scenario's child half. Records durable
    // containers in a loop until the parent kills it. Never returns.
    if let Some(dir) = chaos_child {
        dmt_stress::run_chaos_child(
            std::path::Path::new(&dir),
            cfg.threads,
            cfg.scale,
            cfg.base_seed,
        );
    }

    let t0 = Instant::now();
    if trace_chaos {
        let rounds = cfg.seeds.clamp(1, 2);
        println!(
            "== stress --trace-chaos: crash-durable recording under injected failure, {rounds} round(s)"
        );
        println!(
            "{:<16}{:<12}{:>10}{:>12}{:>10}{:>12}{:>14}",
            "scenario", "workload", "salvaged", "events", "lost", "reproduced", "deterministic"
        );
        let report =
            dmt_stress::run_trace_chaos(cfg.threads, cfg.scale, rounds, cfg.base_seed, |cell| {
                println!(
                    "{:<16}{:<12}{:>10}{:>12}{:>10}{:>12}{:>14}",
                    cell.scenario,
                    cell.workload,
                    if cell.salvaged { "yes" } else { "NO" },
                    cell.salvaged_events,
                    cell.bytes_lost,
                    if cell.reproduced { "yes" } else { "NO" },
                    if cell.deterministic { "yes" } else { "NO" }
                );
            });
        for cell in report
            .cells
            .iter()
            .filter(|c| !(c.salvaged && c.reproduced && c.deterministic))
        {
            println!(
                "UNREPRODUCED [{}] seed {:#x}: {}",
                cell.scenario, cell.seed, cell.fault
            );
        }
        println!(
            "{}: {} cells, {} runs",
            if report.passed { "PASSED" } else { "FAILED" },
            report.cells.len(),
            report.total_runs
        );
        dump("trace_chaos", &report);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if report.passed { 0 } else { 1 });
    }
    if soak {
        let smoke = mode != "deep";
        println!(
            "== stress --soak ({}): bounded-resource soak, then the mixed-scenario matrix",
            if smoke { "smoke" } else { "full" }
        );
        let sr = dmt_bench::soak::run_soak_bench(smoke);
        for c in &sr.cells {
            println!(
                "{:<24}{:<16}{:>4} threads {:>5} iters {:>9} samples  {}  {}",
                c.workload,
                c.runtime,
                c.threads,
                c.iterations,
                c.samples,
                if c.within_bounds { "bounded" } else { "LEAKED" },
                if c.deterministic {
                    "deterministic"
                } else {
                    "DIVERGED"
                }
            );
        }
        let soak_ok = match dmt_bench::soak::validate_report(&sr.to_json()) {
            Ok(()) => true,
            Err(e) => {
                println!("soak artifact INVALID: {e}");
                false
            }
        };
        dump("soak", &sr);
        println!(
            "soak: {} cells, max {} threads, all bounded: {}, all deterministic: {}",
            sr.cells.len(),
            sr.max_threads,
            sr.all_within_bounds,
            sr.all_deterministic
        );

        println!(
            "== mixed-scenario matrix: perturb x panic x shard x record, {} workers",
            cfg.threads
        );
        println!(
            "{:<9}{:<7}{:<7}{:<8}{:>20}{:>8}{:>8}",
            "perturb", "panic", "shard", "record", "schedule_hash", "panics", "verdict"
        );
        let mr = dmt_stress::run_mixed_matrix(
            cfg.threads,
            cfg.scale,
            cfg.input_seed,
            cfg.base_seed,
            |cell| {
                println!(
                    "{:<9}{:<7}{:<7}{:<8}{:>#20x}{:>8}{:>8}",
                    if cell.perturb { "on" } else { "-" },
                    if cell.panic { "on" } else { "-" },
                    if cell.shard { "on" } else { "-" },
                    if cell.record { "on" } else { "-" },
                    cell.schedule_hash,
                    cell.panics,
                    if cell.deterministic && cell.oracle_ok && cell.record_ok && cell.invariant {
                        "ok"
                    } else {
                        "FAILED"
                    }
                );
            },
        );
        dump("matrix", &mr);
        println!(
            "{}: {} compositions, {} runs",
            if soak_ok && mr.passed {
                "PASSED"
            } else {
                "FAILED"
            },
            mr.compositions,
            mr.total_runs
        );
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if soak_ok && mr.passed { 0 } else { 1 });
    }

    if let Some(dir) = record_dir {
        println!("== stress --record: persisting one trace per workload x Consequence runtime");
        let dir = std::path::PathBuf::from(dir);
        let runtimes: Vec<&str> = cfg
            .runtimes
            .iter()
            .map(|k| k.label())
            .filter(|l| replay::options_for_label(l).is_some())
            .collect();
        if runtimes.is_empty() {
            eprintln!(
                "no recordable runtime selected (labels: consequence-ic, consequence-rr, dwc)"
            );
            std::process::exit(2);
        }
        let mut recorded = Vec::new();
        let mut failed = false;
        for name in &cfg.workloads {
            for label in &runtimes {
                match record_to(&dir, label, name, cfg.threads, cfg.scale, cfg.input_seed) {
                    Ok(r) => {
                        println!(
                            "[{}] {name} {label}: {} events, hash {:#018x}, {} bytes -> {}",
                            if r.validated { "ok" } else { "INVALID" },
                            r.events,
                            r.schedule_hash,
                            r.bytes,
                            r.path
                        );
                        failed |= !r.validated;
                        recorded.push(r);
                    }
                    Err(e) => {
                        println!("[FAILED] {name} {label}: {e}");
                        failed = true;
                    }
                }
            }
        }
        // One sharded-server container rides along: 2 token domains, 2
        // workers each (see dmt_shard::record for the label convention).
        let sp = dmt_workloads::Params::new(2, cfg.scale, cfg.input_seed);
        let spath = dir.join(format!("dmt_server-sharded-ic-2-t2-s{}.dmtrace", cfg.scale));
        match dmt_shard::record_server_trace(2, 2, sp, &spath) {
            Ok((meta, _)) => println!(
                "[ok] dmt_server sharded-ic-2: {} events, hash {:#018x} -> {}",
                meta.event_count,
                meta.schedule_hash,
                spath.display()
            ),
            Err(e) => {
                println!("[FAILED] dmt_server sharded-ic-2: {e}");
                failed = true;
            }
        }
        dump("record", &recorded);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if failed { 1 } else { 0 });
    }

    if let Some(path) = replay_path {
        println!("== stress --replay: re-executing recorded traces");
        let files = trace_files(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let mut results = Vec::new();
        let mut failed = false;
        for f in &files {
            match replay_file(f) {
                Ok(r) => {
                    println!("{}", summarize(&r));
                    if let Some(d) = &r.divergence {
                        println!("{d}");
                    }
                    failed |= !r.ok();
                    results.push(r);
                }
                Err(e) => {
                    println!("[FAILED] {}: {e}", f.display());
                    failed = true;
                }
            }
        }
        dump("replay", &results);
        println!(
            "{}: {} trace(s) replayed",
            if failed { "FAILED" } else { "PASSED" },
            files.len()
        );
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if failed { 1 } else { 0 });
    }

    if inject {
        println!("== stress --inject-bug: eligibility-check bypass must be caught");
        let out = run_inject_bug(12, 4, 400);
        dump("inject_bug", &out);
        if out.caught {
            println!("CAUGHT: schedule hash moved under the injected bug");
            println!(
                "  baseline {:#x} vs observed {:#x} (trigger seed {:#x}, {} runs)",
                out.baseline_hash, out.observed_hash, out.trigger_seed, out.runs
            );
            println!("  shrunk reproducer: {}", out.shrunk_plan);
            println!("  surviving sites: [{}]", out.shrunk_sites.join(", "));
            match &out.diagnosis {
                Some(d) => println!("{d}"),
                None => println!("  (no divergence trace captured)"),
            }
            eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
            // Nonzero by design: a determinism violation was (correctly)
            // detected. CI asserts this exit code.
            std::process::exit(1);
        }
        println!(
            "NOT CAUGHT after {} runs — the harness failed to detect the injected bug",
            out.runs
        );
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(0);
    }

    if inject_panic {
        println!(
            "== stress --inject-panic: seeded thread deaths must be contained deterministically"
        );
        println!(
            "{:<16}{:<16}{:>6}{:>6}{:>8}{:>14}{:>11}",
            "workload", "runtime", "runs", "hits", "panics", "reproducible", "validated"
        );
        let report = run_panic_inject(&cfg, |cell| {
            println!(
                "{:<16}{:<16}{:>6}{:>6}{:>8}{:>14}{:>11}",
                cell.workload,
                cell.runtime,
                cell.runs,
                cell.hits,
                cell.panics,
                if cell.reproducible { "yes" } else { "NO" },
                if cell.validated { "yes" } else { "NO" }
            );
        });
        println!(
            "{}: {} runs, {} injected deaths contained",
            if report.passed { "PASSED" } else { "FAILED" },
            report.total_runs,
            report.total_hits
        );
        dump("inject_panic", &report);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if report.passed { 0 } else { 1 });
    }

    if shard_diff {
        println!(
            "== stress --shard-diff: dmt_server across 1/2/4 token domains, {} workers/domain, {} repeats",
            cfg.threads,
            cfg.seeds.max(2)
        );
        println!(
            "{:<8}{:>6}{:>20}{:>20}{:>15}{:>10}{:>10}",
            "shards",
            "runs",
            "schedule_hash",
            "store_hash",
            "deterministic",
            "store_ok",
            "lockstep"
        );
        let report = run_shard_diff(&cfg, |cell| {
            println!(
                "{:<8}{:>6}{:>#20x}{:>#20x}{:>15}{:>10}{:>10}",
                cell.shards,
                cell.runs,
                cell.schedule_hash,
                cell.store_hash,
                cell.deterministic,
                cell.store_matches_reference,
                cell.lockstep
            );
        });
        println!(
            "map-seed check: store_ok={} schedule_moves={}",
            report.map_seed_store_ok, report.map_seed_schedule_moves
        );
        println!(
            "{}: {} cells, unsharded hash {:#018x}",
            if report.passed { "PASSED" } else { "FAILED" },
            report.cells.len(),
            report.unsharded_hash
        );
        dump("shard_diff", &report);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if report.passed { 0 } else { 1 });
    }

    if sched_diff {
        println!(
            "== stress --sched-diff: fast vs reference scheduler, {} workloads x {} seeds, {} threads",
            cfg.workloads.len(),
            cfg.seeds,
            cfg.threads
        );
        println!(
            "{:<16}{:<16}{:>6}{:>20}{:>20}{:>11}",
            "workload", "runtime", "runs", "fast_hash", "reference_hash", "verdict"
        );
        let report = run_sched_diff(&cfg, |cell| {
            println!(
                "{:<16}{:<16}{:>6}{:>#20x}{:>#20x}{:>11}",
                cell.workload,
                cell.runtime,
                cell.runs,
                cell.fast_hash,
                cell.reference_hash,
                if cell.schedules_match && cell.outputs_match && cell.validated {
                    "identical"
                } else {
                    "DIVERGED"
                }
            );
        });
        println!(
            "{}: {} runs, {} cells",
            if report.passed { "PASSED" } else { "FAILED" },
            report.total_runs,
            report.cells.len()
        );
        dump("sched_diff", &report);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if report.passed { 0 } else { 1 });
    }

    if pipe_diff {
        println!(
            "== stress --pipe-diff: pipelined vs serial commit, {} workloads x {} seeds, {} threads",
            cfg.workloads.len(),
            cfg.seeds,
            cfg.threads
        );
        println!(
            "{:<16}{:<16}{:>6}{:>20}{:>20}{:>11}",
            "workload", "runtime", "runs", "pipelined_hash", "serial_hash", "verdict"
        );
        let report = run_pipe_diff(&cfg, |cell| {
            println!(
                "{:<16}{:<16}{:>6}{:>#20x}{:>#20x}{:>11}",
                cell.workload,
                cell.runtime,
                cell.runs,
                cell.pipelined_hash,
                cell.serial_hash,
                if cell.schedules_match
                    && cell.outputs_match
                    && cell.commit_logs_match
                    && cell.validated
                {
                    "identical"
                } else {
                    "DIVERGED"
                }
            );
        });
        println!(
            "{}: {} runs, {} cells",
            if report.passed { "PASSED" } else { "FAILED" },
            report.total_runs,
            report.cells.len()
        );
        dump("pipe_diff", &report);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if report.passed { 0 } else { 1 });
    }

    println!(
        "== stress --{mode}: {} workloads x {} runtimes x {} seeds, {} threads",
        cfg.workloads.len(),
        cfg.runtimes.len(),
        cfg.seeds,
        cfg.threads
    );
    println!(
        "{:<16}{:<16}{:>6}{:>20}{:>10}{:>11}",
        "workload", "runtime", "runs", "baseline_hash", "distinct", "validated"
    );
    let mut report = run_matrix(&cfg, |cell| {
        println!(
            "{:<16}{:<16}{:>6}{:>#20x}{:>10}{:>11}",
            cell.workload,
            cell.runtime,
            cell.runs,
            cell.baseline_hash,
            cell.distinct_hashes,
            if cell.validated { "yes" } else { "NO" }
        );
    });
    report.mode = mode.clone();

    for v in &report.violations {
        println!();
        println!(
            "VIOLATION [{}] {} under {}: baseline {:#x} vs observed {:#x}",
            v.oracle, v.workload, v.runtime, v.baseline_hash, v.observed_hash
        );
        if !v.shrunk_plan.is_empty() {
            println!("  shrunk reproducer: {}", v.shrunk_plan);
        }
        if let Some(d) = &v.diagnosis {
            println!("{d}");
        }
    }
    if report.pthreads_runs > 0 {
        println!(
            "pthreads negative control: {} distinct hashes over {} runs{}",
            report.pthreads_distinct_hashes,
            report.pthreads_runs,
            if report.pthreads_distinct_hashes > 1 {
                " (varies, as expected)"
            } else {
                " — NEVER varied; perturbation instrumentation looks dead"
            }
        );
    }
    println!(
        "{}: {} runs, {} violations",
        if report.passed { "PASSED" } else { "FAILED" },
        report.total_runs,
        report.violations.len()
    );
    dump(&mode, &report);
    eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
    std::process::exit(if report.passed { 0 } else { 1 });
}
