//! Stress-report types and their JSON serialization.
//!
//! Serialized with `dmt-bench`'s hand-rolled [`dmt_bench::json_struct!`]
//! macro — the workspace builds offline with no serde dependency. A report
//! is self-describing: every violation carries the master seed, the plan
//! digest and the shrunk plan text, so `stress --workloads W --runtimes R
//! --base-seed S` plus the printed plan reproduces the failure (see
//! `docs/STRESS.md`).

use dmt_api::PerturbPlan;
use dmt_baselines::RuntimeKind;
use dmt_bench::json_struct;

use crate::CellRun;

/// Per-cell summary: one workload under one runtime across all seeds.
#[derive(Clone, Debug)]
pub struct CellSummary {
    pub workload: String,
    pub runtime: String,
    /// Total runs in the cell (baseline + one per seed).
    pub runs: u64,
    /// Schedule hash of the unperturbed baseline run.
    pub baseline_hash: u64,
    /// Distinct schedule hashes observed (1 = invariant; pthreads is
    /// expected to exceed 1).
    pub distinct_hashes: u64,
    /// Whether every checked run matched the sequential reference.
    pub validated: bool,
}

/// One oracle violation, with its minimized reproducer.
#[derive(Clone, Debug)]
pub struct Violation {
    pub workload: String,
    pub runtime: String,
    /// Which oracle failed: `"schedule_hash"` or `"output"`.
    pub oracle: String,
    /// Master seed of the triggering plan (0 for the unperturbed baseline).
    pub perturb_seed: u64,
    /// Digest of the triggering plan.
    pub plan_digest: u64,
    pub baseline_hash: u64,
    pub observed_hash: u64,
    /// Sites surviving the shrink (empty = fails even unperturbed).
    pub shrunk_sites: Vec<String>,
    /// The shrunk plan, printed (reproducer input).
    pub shrunk_plan: String,
    /// Digest of the shrunk plan.
    pub shrunk_digest: u64,
    /// Formatted first-divergent-event diagnosis, when one was captured.
    pub diagnosis: Option<String>,
}

impl Violation {
    /// A schedule-hash invariance violation with its shrunk reproducer.
    pub fn schedule(
        workload: &str,
        kind: RuntimeKind,
        plan: &PerturbPlan,
        shrunk: &PerturbPlan,
        baseline_hash: u64,
        observed_hash: u64,
        diagnosis: Option<String>,
    ) -> Violation {
        Violation {
            workload: workload.to_string(),
            runtime: kind.label().to_string(),
            oracle: "schedule_hash".to_string(),
            perturb_seed: plan.seed,
            plan_digest: plan.digest(),
            baseline_hash,
            observed_hash,
            shrunk_sites: shrunk
                .entries
                .iter()
                .map(|e| e.site.name().to_string())
                .collect(),
            shrunk_plan: shrunk.to_string(),
            shrunk_digest: shrunk.digest(),
            diagnosis,
        }
    }

    /// An output-oracle violation (no schedule divergence to shrink).
    pub fn output(
        workload: &str,
        kind: RuntimeKind,
        perturb_seed: u64,
        plan_digest: u64,
        base: &CellRun,
        observed_hash: u64,
    ) -> Violation {
        Violation {
            workload: workload.to_string(),
            runtime: kind.label().to_string(),
            oracle: "output".to_string(),
            perturb_seed,
            plan_digest,
            baseline_hash: base.output_hash,
            observed_hash,
            shrunk_sites: Vec::new(),
            shrunk_plan: String::new(),
            shrunk_digest: 0,
            diagnosis: None,
        }
    }
}

/// The full matrix result.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// `"smoke"`, `"deep"` or `"custom"` (set by the CLI).
    pub mode: String,
    pub threads: usize,
    pub seeds: u64,
    pub base_seed: u64,
    pub total_runs: u64,
    pub pthreads_runs: u64,
    /// Distinct pthreads schedule hashes across the whole matrix; > 1 means
    /// the negative control varied as expected.
    pub pthreads_distinct_hashes: u64,
    pub cells: Vec<CellSummary>,
    pub violations: Vec<Violation>,
    pub passed: bool,
}

json_struct!(CellSummary {
    workload,
    runtime,
    runs,
    baseline_hash,
    distinct_hashes,
    validated
});

json_struct!(Violation {
    workload,
    runtime,
    oracle,
    perturb_seed,
    plan_digest,
    baseline_hash,
    observed_hash,
    shrunk_sites,
    shrunk_plan,
    shrunk_digest,
    diagnosis
});

json_struct!(StressReport {
    mode,
    threads,
    seeds,
    base_seed,
    total_runs,
    pthreads_runs,
    pthreads_distinct_hashes,
    cells,
    violations,
    passed
});

json_struct!(crate::InjectOutcome {
    caught,
    baseline_hash,
    observed_hash,
    trigger_seed,
    shrunk_sites,
    shrunk_plan,
    shrunk_digest,
    diagnosis,
    runs
});

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_bench::json::ToJson;

    #[test]
    fn report_serializes_to_json() {
        let r = StressReport {
            mode: "smoke".into(),
            threads: 4,
            seeds: 8,
            base_seed: 1,
            total_runs: 9,
            pthreads_runs: 0,
            pthreads_distinct_hashes: 0,
            cells: vec![CellSummary {
                workload: "histogram".into(),
                runtime: "consequence-ic".into(),
                runs: 9,
                baseline_hash: 0xabc,
                distinct_hashes: 1,
                validated: true,
            }],
            violations: vec![],
            passed: true,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"violations\":[]"));
        assert!(j.contains("\"distinct_hashes\":1"));
    }

    #[test]
    fn violation_carries_the_reproducer() {
        let plan = PerturbPlan::full(5);
        let shrunk = PerturbPlan::only(5, &[dmt_api::PerturbSite::Commit]);
        let v = Violation::schedule(
            "kmeans",
            RuntimeKind::ConsequenceIc,
            &plan,
            &shrunk,
            1,
            2,
            Some("schedules diverge at event #3".into()),
        );
        assert_eq!(v.perturb_seed, 5);
        assert_eq!(v.plan_digest, plan.digest());
        assert_eq!(v.shrunk_sites, vec!["commit".to_string()]);
        assert_eq!(v.shrunk_digest, shrunk.digest());
        let j = v.to_json();
        assert!(j.contains("\"oracle\":\"schedule_hash\""));
        assert!(j.contains("diverge at event"));
    }
}
