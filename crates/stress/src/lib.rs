//! `dmt-stress`: deterministic fault-injection and schedule-perturbation
//! fuzzing for the whole workspace.
//!
//! The paper's core claim (§2.1, §3.5) is that a Consequence schedule is a
//! pure function of the program, invariant under arbitrary physical timing.
//! This crate attacks that claim adversarially: it attaches a seeded
//! [`PlanPerturber`] to every runtime hook point (see `dmt_api::perturb`),
//! runs a workload × runtime × seed matrix, and checks three oracles per
//! cell:
//!
//! 1. **Schedule-hash invariance** — a deterministic runtime's schedule
//!    hash must be bit-identical across every perturbation seed;
//! 2. **Output correctness** — the output hash must equal the sequential
//!    reference on every run;
//! 3. **Negative control** — pthreads, which makes no determinism promise,
//!    is expected to vary (if it never does, the perturbation
//!    instrumentation itself is dead).
//!
//! On a violation the harness records [`MemorySink`] traces, runs the
//! divergence [`diagnose`] pass, and [`shrink`]s the failing plan to a
//! minimal reproducer naming the first divergent event. See
//! `docs/STRESS.md`.

pub mod inject;
pub mod matrix;
pub mod panic_inject;
pub mod pipe_diff;
pub mod report;
pub mod sched_diff;
pub mod shard_diff;
pub mod shrink;
pub mod trace_chaos;

use std::collections::BTreeSet;
use std::sync::Arc;

use dmt_api::trace::{diagnose, Event, MemorySink};
use dmt_api::{
    CommonConfig, CostModel, PerturbHandle, PerturbPlan, PlanPerturber, RunReport, TraceHandle,
};
use dmt_baselines::{make_runtime, RuntimeKind};
use dmt_workloads::{workload_by_name, Params, Validation};

pub use inject::{run_inject_bug, InjectOutcome};
pub use matrix::{run_mixed_matrix, MatrixCell, MatrixReport, MATRIX_SHARDS};
pub use panic_inject::{run_panic_inject, PanicCell, PanicInjectReport, PanicInjector};
pub use pipe_diff::{run_pipe_diff, PipeDiffCell, PipeDiffReport};
pub use report::{CellSummary, StressReport, Violation};
pub use sched_diff::{run_consequence_workload, run_sched_diff, SchedDiffCell, SchedDiffReport};
pub use shard_diff::{run_shard_diff, ShardDiffCell, ShardDiffReport, SHARD_COUNTS};
pub use shrink::shrink_plan;
pub use trace_chaos::{run_chaos_child, run_trace_chaos, ChaosCell, FaultyMedia, TraceChaosReport};

/// Events a repro-trace sink retains (oldest dropped beyond this).
pub const TRACE_CAP: usize = 1 << 16;

/// SplitMix64: derives independent per-cell plan seeds from the master seed.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Matrix configuration: the cross product the driver sweeps.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Workload names (see `dmt_workloads::all_workloads`).
    pub workloads: Vec<String>,
    /// Runtimes to drive.
    pub runtimes: Vec<RuntimeKind>,
    /// Perturbation seeds per cell (on top of one unperturbed baseline).
    pub seeds: u64,
    /// Master seed all per-cell plan seeds derive from.
    pub base_seed: u64,
    /// Worker threads per run.
    pub threads: usize,
    /// Workload problem-size multiplier.
    pub scale: u32,
    /// Workload input seed.
    pub input_seed: u64,
}

impl StressConfig {
    /// CI-sized matrix: 3 workloads × 5 runtimes × 8 seeds at 4 threads.
    pub fn smoke() -> StressConfig {
        StressConfig {
            workloads: ["histogram", "kmeans", "reverse_index"]
                .into_iter()
                .map(String::from)
                .collect(),
            runtimes: RuntimeKind::ALL.to_vec(),
            seeds: 8,
            base_seed: 0xC0FF_EE00,
            threads: 4,
            scale: 1,
            input_seed: 42,
        }
    }

    /// Overnight-sized matrix: the hard benchmarks, more seeds, more
    /// threads.
    pub fn deep() -> StressConfig {
        StressConfig {
            workloads: [
                "histogram",
                "kmeans",
                "reverse_index",
                "ferret",
                "dedup",
                "ocean_cp",
                "lu_cb",
                "canneal",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            runtimes: RuntimeKind::ALL.to_vec(),
            seeds: 16,
            base_seed: 0xC0FF_EE00,
            threads: 8,
            scale: 1,
            input_seed: 42,
        }
    }
}

/// One traced execution of a workload cell.
#[derive(Clone, Debug)]
pub struct CellRun {
    /// Schedule hash of the run (from an attached hashing sink).
    pub schedule_hash: u64,
    /// FNV-1a digest of the output region.
    pub output_hash: u64,
    /// Whether the output matched the sequential reference.
    pub matches_reference: bool,
    /// The full run report.
    pub report: RunReport,
}

pub(crate) fn cell_cfg(pages: usize, trace: TraceHandle, perturb: PerturbHandle) -> CommonConfig {
    CommonConfig {
        heap_pages: pages,
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace,
        perturb,
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// Runs one workload under one runtime with a hashing trace sink and the
/// given perturber.
pub fn run_workload(
    kind: RuntimeKind,
    name: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
    perturb: PerturbHandle,
) -> CellRun {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let p = Params::new(threads, scale, input_seed);
    let sink = Arc::new(dmt_api::HashSink::new());
    let cfg = cell_cfg(w.heap_pages(&p), TraceHandle::to(sink), perturb);
    let mut rt = make_runtime(kind, cfg);
    let prepared = w.prepare(rt.as_mut(), &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(rt.as_ref());
    CellRun {
        schedule_hash: report.schedule_hash,
        output_hash: v.output_hash,
        matches_reference: v.matches_reference,
        report,
    }
}

/// Like [`run_workload`], but records the schedule into a bounded
/// [`MemorySink`] for divergence diagnosis. Returns the retained events and
/// how many older ones the ring bound dropped.
pub fn record_workload(
    kind: RuntimeKind,
    name: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
    perturb: PerturbHandle,
) -> (CellRun, Vec<Event>, u64) {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let p = Params::new(threads, scale, input_seed);
    let sink = Arc::new(MemorySink::new(TRACE_CAP));
    let cfg = cell_cfg(
        w.heap_pages(&p),
        TraceHandle::to(Arc::clone(&sink) as _),
        perturb,
    );
    let mut rt = make_runtime(kind, cfg);
    let prepared = w.prepare(rt.as_mut(), &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(rt.as_ref());
    let (events, dropped) = sink.take();
    (
        CellRun {
            schedule_hash: report.schedule_hash,
            output_hash: v.output_hash,
            matches_reference: v.matches_reference,
            report,
        },
        events,
        dropped,
    )
}

/// A handle executing `plan` at full strength.
pub fn plan_handle(plan: &PerturbPlan) -> PerturbHandle {
    PerturbHandle::to(Arc::new(PlanPerturber::new(plan.clone())))
}

/// An abstract system under test: how to run it for a hash and how to run
/// it while recording a trace. Lets the shrinker and diagnoser work on both
/// workload cells and the synthetic inject-bug program.
pub struct Target<'a> {
    /// Runs once under the given perturber, returning the schedule hash.
    pub run_hash: Box<dyn Fn(PerturbHandle) -> u64 + 'a>,
    /// Runs once while recording, returning the events and the hash.
    pub record: Box<dyn Fn(PerturbHandle) -> (Vec<Event>, u64) + 'a>,
}

impl Target<'_> {
    /// Whether `plan` makes the target's hash diverge from `base_hash`
    /// within `attempts` tries. Divergence under a real determinism bug
    /// depends on physical timing, so one quiet run does not prove a plan
    /// innocent; `runs` is bumped per executed probe.
    pub fn diverges(
        &self,
        plan: &PerturbPlan,
        base_hash: u64,
        attempts: u32,
        runs: &mut u64,
    ) -> bool {
        for _ in 0..attempts {
            *runs += 1;
            if (self.run_hash)(plan_handle(plan)) != base_hash {
                return true;
            }
        }
        false
    }
}

/// Full violation workup: shrinks `plan` to a minimal still-failing
/// reproducer, then records an unperturbed and a perturbed trace and
/// diagnoses the first divergent event. Returns the shrunk plan and the
/// diagnosis (formatted), if one could be captured.
pub fn investigate(
    target: &Target<'_>,
    plan: &PerturbPlan,
    base_hash: u64,
    runs: &mut u64,
) -> (PerturbPlan, Option<String>) {
    let shrunk = shrink_plan(plan.clone(), |cand| {
        target.diverges(cand, base_hash, 3, runs)
    });
    let (base_events, _) = (target.record)(PerturbHandle::off());
    *runs += 1;
    // Divergence under a real bug is timing-dependent, and the timing that
    // made the shrunk plan fail during shrinking may have drifted by the
    // time we record traces (e.g. a loaded CI host). Probe the shrunk plan
    // first, then fall back to the original full-strength plan — a
    // diagnosis from either names the same first divergent event class.
    let mut diagnosis = None;
    'plans: for candidate in [&shrunk, plan] {
        for _ in 0..8 {
            let (events, hash) = (target.record)(plan_handle(candidate));
            *runs += 1;
            if hash == base_hash {
                continue;
            }
            if let Some(d) = diagnose(&base_events, &events) {
                diagnosis = Some(d.to_string());
                break 'plans;
            }
        }
    }
    (shrunk, diagnosis)
}

fn workload_target<'a>(kind: RuntimeKind, name: &'a str, cfg: &'a StressConfig) -> Target<'a> {
    Target {
        run_hash: Box::new(move |p| {
            run_workload(kind, name, cfg.threads, cfg.scale, cfg.input_seed, p).schedule_hash
        }),
        record: Box::new(move |p| {
            let (run, events, _) =
                record_workload(kind, name, cfg.threads, cfg.scale, cfg.input_seed, p);
            (events, run.schedule_hash)
        }),
    }
}

/// Runs the full differential-fuzzing matrix and returns the report.
///
/// `progress` is called once per finished cell with a one-line summary
/// (pass `|_| {}` to stay quiet).
pub fn run_matrix(cfg: &StressConfig, mut progress: impl FnMut(&CellSummary)) -> StressReport {
    let mut cells = Vec::new();
    let mut violations = Vec::new();
    let mut total_runs = 0u64;
    let mut pthreads_hashes: BTreeSet<u64> = BTreeSet::new();
    let mut pthreads_runs = 0u64;

    for (wi, name) in cfg.workloads.iter().enumerate() {
        for (ki, &kind) in cfg.runtimes.iter().enumerate() {
            let deterministic = kind != RuntimeKind::Pthreads;
            let cell_salt = mix64(cfg.base_seed ^ ((wi as u64) << 32) ^ (ki as u64));
            let base = run_workload(
                kind,
                name,
                cfg.threads,
                cfg.scale,
                cfg.input_seed,
                PerturbHandle::off(),
            );
            total_runs += 1;
            let mut distinct: BTreeSet<u64> = BTreeSet::new();
            distinct.insert(base.schedule_hash);
            let mut validated = base.matches_reference;
            if deterministic && !base.matches_reference {
                violations.push(Violation::output(name, kind, 0, 0, &base, base.output_hash));
            }

            for s in 0..cfg.seeds {
                let plan = PerturbPlan::full(mix64(cell_salt ^ (s + 1)));
                let run = run_workload(
                    kind,
                    name,
                    cfg.threads,
                    cfg.scale,
                    cfg.input_seed,
                    plan_handle(&plan),
                );
                total_runs += 1;
                distinct.insert(run.schedule_hash);
                if !deterministic {
                    continue;
                }
                validated &= run.matches_reference;
                if run.schedule_hash != base.schedule_hash {
                    let target = workload_target(kind, name, cfg);
                    let (shrunk, diagnosis) =
                        investigate(&target, &plan, base.schedule_hash, &mut total_runs);
                    violations.push(Violation::schedule(
                        name,
                        kind,
                        &plan,
                        &shrunk,
                        base.schedule_hash,
                        run.schedule_hash,
                        diagnosis,
                    ));
                }
                if !run.matches_reference || run.output_hash != base.output_hash {
                    violations.push(Violation::output(
                        name,
                        kind,
                        plan.seed,
                        plan.digest(),
                        &base,
                        run.output_hash,
                    ));
                }
            }

            if !deterministic {
                pthreads_hashes.extend(&distinct);
                pthreads_runs += 1 + cfg.seeds;
            }
            let cell = CellSummary {
                workload: name.clone(),
                runtime: kind.label().to_string(),
                runs: 1 + cfg.seeds,
                baseline_hash: base.schedule_hash,
                distinct_hashes: distinct.len() as u64,
                validated,
            };
            progress(&cell);
            cells.push(cell);
        }
    }

    let has_pthreads = cfg.runtimes.contains(&RuntimeKind::Pthreads);
    let pthreads_varied = pthreads_hashes.len() > 1;
    let passed = violations.is_empty() && (!has_pthreads || pthreads_varied);
    StressReport {
        mode: String::new(),
        threads: cfg.threads,
        seeds: cfg.seeds,
        base_seed: cfg.base_seed,
        total_runs,
        pthreads_runs,
        pthreads_distinct_hashes: pthreads_hashes.len() as u64,
        cells,
        violations,
        passed,
    }
}
