//! `stress --sched-diff`: differential validation of the scheduler fast
//! path.
//!
//! PR 4 replaced the reference scheduler's global-lock clock table and
//! `notify_all` token handoff with lock-free publication slots, targeted
//! per-thread wakeups and O(log T) eligibility queues (`det_clock::fast`).
//! The optimization contract is that the *schedule* — and therefore every
//! output — is bit-identical to the reference implementation: the fast
//! structures change how fast a grant happens, never which thread gets it.
//!
//! This mode checks that contract end to end. For every workload × every
//! Consequence-backed runtime (dwc, consequence-rr, consequence-ic) it
//! runs the fast scheduler and the reference scheduler
//! (`Options::without("fast_sched")`) over the same perturbation-seed
//! matrix the main fuzzer uses, and requires every run — baseline and
//! perturbed, fast and reference — to produce the same schedule hash and
//! the same output hash. A single divergent grant anywhere in the run
//! changes the hash, so this is a whole-execution oracle on top of the
//! per-query `fast_lockstep` property test in `det-clock`.

use consequence::Options;
use dmt_api::{PerturbHandle, PerturbPlan, TraceHandle};
use dmt_baselines::{make_consequence, RuntimeKind};
use dmt_bench::json_struct;
use dmt_workloads::{workload_by_name, Params, Validation};
use std::sync::Arc;

use crate::{cell_cfg, mix64, plan_handle, CellRun, StressConfig};

/// The base option presets whose runtimes the fast scheduler backs. Other
/// kinds (pthreads, dthreads) never touch the clock table.
fn kind_options(kind: RuntimeKind) -> Option<Options> {
    match kind {
        RuntimeKind::Dwc => Some(Options::dwc()),
        RuntimeKind::ConsequenceRr => Some(Options::consequence_rr()),
        RuntimeKind::ConsequenceIc => Some(Options::consequence_ic()),
        _ => None,
    }
}

/// Like [`crate::run_workload`], but builds the Consequence runtime with
/// explicit [`Options`] so both scheduler implementations can be driven.
pub fn run_consequence_workload(
    opts: Options,
    name: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
    perturb: PerturbHandle,
) -> CellRun {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let p = Params::new(threads, scale, input_seed);
    let sink = Arc::new(dmt_api::HashSink::new());
    let cfg = cell_cfg(w.heap_pages(&p), TraceHandle::to(sink), perturb);
    let mut rt = make_consequence(cfg, opts);
    let prepared = w.prepare(rt.as_mut(), &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(rt.as_ref());
    CellRun {
        schedule_hash: report.schedule_hash,
        output_hash: v.output_hash,
        matches_reference: v.matches_reference,
        report,
    }
}

/// One workload × runtime cell of the scheduler-differential matrix.
#[derive(Clone, Debug)]
pub struct SchedDiffCell {
    pub workload: String,
    pub runtime: String,
    /// Total runs in the cell: (fast + reference) × (baseline + seeds).
    pub runs: u64,
    /// Unperturbed schedule hash under the fast scheduler.
    pub fast_hash: u64,
    /// Unperturbed schedule hash under the reference scheduler.
    pub reference_hash: u64,
    /// Every run (both schedulers, every seed) hashed to `fast_hash`.
    pub schedules_match: bool,
    /// Every run produced the same output hash.
    pub outputs_match: bool,
    /// Every run matched the sequential reference output.
    pub validated: bool,
}

/// The full scheduler-differential result.
#[derive(Clone, Debug)]
pub struct SchedDiffReport {
    pub threads: usize,
    pub seeds: u64,
    pub base_seed: u64,
    pub total_runs: u64,
    pub cells: Vec<SchedDiffCell>,
    pub passed: bool,
}

json_struct!(SchedDiffCell {
    workload,
    runtime,
    runs,
    fast_hash,
    reference_hash,
    schedules_match,
    outputs_match,
    validated
});

json_struct!(SchedDiffReport {
    threads,
    seeds,
    base_seed,
    total_runs,
    cells,
    passed
});

/// Runs the fast-vs-reference scheduler matrix and returns the report.
///
/// Non-Consequence runtimes in `cfg.runtimes` are skipped (they have no
/// scheduler to swap). `progress` is called once per finished cell.
pub fn run_sched_diff(
    cfg: &StressConfig,
    mut progress: impl FnMut(&SchedDiffCell),
) -> SchedDiffReport {
    let mut cells = Vec::new();
    let mut total_runs = 0u64;

    for (wi, name) in cfg.workloads.iter().enumerate() {
        for (ki, &kind) in cfg.runtimes.iter().enumerate() {
            let Some(base_opts) = kind_options(kind) else {
                continue;
            };
            let fast_opts = base_opts.clone();
            let ref_opts = base_opts.without("fast_sched");
            let run = |opts: &Options, perturb: PerturbHandle| {
                run_consequence_workload(
                    opts.clone(),
                    name,
                    cfg.threads,
                    cfg.scale,
                    cfg.input_seed,
                    perturb,
                )
            };

            let fast = run(&fast_opts, PerturbHandle::off());
            let refr = run(&ref_opts, PerturbHandle::off());
            total_runs += 2;
            let mut schedules_match = fast.schedule_hash == refr.schedule_hash;
            let mut outputs_match = fast.output_hash == refr.output_hash;
            let mut validated = fast.matches_reference && refr.matches_reference;

            // Same derivation as `run_matrix`, salted so the two modes
            // exercise distinct plans.
            let cell_salt = mix64(cfg.base_seed ^ 0x5C4E_D1FF ^ ((wi as u64) << 32) ^ (ki as u64));
            for s in 0..cfg.seeds {
                let plan = PerturbPlan::full(mix64(cell_salt ^ (s + 1)));
                let pf = run(&fast_opts, plan_handle(&plan));
                let pr = run(&ref_opts, plan_handle(&plan));
                total_runs += 2;
                schedules_match &= pf.schedule_hash == fast.schedule_hash
                    && pr.schedule_hash == fast.schedule_hash;
                outputs_match &=
                    pf.output_hash == fast.output_hash && pr.output_hash == fast.output_hash;
                validated &= pf.matches_reference && pr.matches_reference;
            }

            let cell = SchedDiffCell {
                workload: name.clone(),
                runtime: kind.label().to_string(),
                runs: 2 * (1 + cfg.seeds),
                fast_hash: fast.schedule_hash,
                reference_hash: refr.schedule_hash,
                schedules_match,
                outputs_match,
                validated,
            };
            progress(&cell);
            cells.push(cell);
        }
    }

    let passed = !cells.is_empty()
        && cells
            .iter()
            .all(|c| c.schedules_match && c.outputs_match && c.validated);
    SchedDiffReport {
        threads: cfg.threads,
        seeds: cfg.seeds,
        base_seed: cfg.base_seed,
        total_runs,
        cells,
        passed,
    }
}
