//! Failing-plan minimization.
//!
//! A full-strength [`PerturbPlan`] fires at nine sites; a reproducer that
//! says "any perturbation breaks it" is useless for debugging. The shrinker
//! reduces a failing plan in three phases:
//!
//! 1. **Bisection over sites** — repeatedly keep whichever half of the
//!    entry list still fails;
//! 2. **Linear minimization** — drop each remaining entry that is not
//!    needed for the failure;
//! 3. **Canonicalization** — per surviving entry, replace the seed with the
//!    smallest still-failing value and lower the intensity as far as the
//!    failure allows.
//!
//! The predicate decides "still fails" (typically: re-run the cell under
//! the candidate plan and compare schedule hashes, with retries — see
//! [`crate::Target::diverges`]). A plan may legitimately shrink to *empty*:
//! that means the target diverges even unperturbed, which is itself the
//! strongest possible reproducer.

use dmt_api::{PerturbEntry, PerturbPlan};

fn sub(plan: &PerturbPlan, entries: Vec<PerturbEntry>) -> PerturbPlan {
    PerturbPlan {
        seed: plan.seed,
        entries,
    }
}

/// Minimizes `plan` while `fails` keeps returning `true` for candidates.
///
/// `fails(&plan)` is assumed `true` on entry (the caller observed the
/// failure); the result is a plan for which every tested reduction stopped
/// failing — minimal up to the predicate's flakiness.
pub fn shrink_plan(
    mut plan: PerturbPlan,
    mut fails: impl FnMut(&PerturbPlan) -> bool,
) -> PerturbPlan {
    // Phase 1: bisection. Candidates are strictly smaller than the current
    // plan, so this terminates.
    loop {
        let n = plan.entries.len();
        if n == 0 {
            break;
        }
        let mid = n / 2;
        let first = sub(&plan, plan.entries[..mid].to_vec());
        if first.entries.len() < n && fails(&first) {
            plan = first;
            continue;
        }
        let second = sub(&plan, plan.entries[mid..].to_vec());
        if second.entries.len() < n && fails(&second) {
            plan = second;
            continue;
        }
        break;
    }

    // Phase 2: drop any entry the failure does not need.
    let mut i = 0;
    while i < plan.entries.len() {
        let mut cand = plan.clone();
        cand.entries.remove(i);
        if fails(&cand) {
            plan = cand;
        } else {
            i += 1;
        }
    }

    // Phase 3: canonicalize each surviving entry.
    for i in 0..plan.entries.len() {
        for seed in 0..4u64 {
            if plan.entries[i].seed == seed {
                break;
            }
            let mut cand = plan.clone();
            cand.entries[i].seed = seed;
            if fails(&cand) {
                plan = cand;
                break;
            }
        }
        for intensity in 0..plan.entries[i].intensity {
            let mut cand = plan.clone();
            cand.entries[i].intensity = intensity;
            if fails(&cand) {
                plan = cand;
                break;
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_api::PerturbSite;

    #[test]
    fn shrinks_to_the_single_guilty_site() {
        let mut probes = 0u32;
        let shrunk = shrink_plan(PerturbPlan::full(7), |p| {
            probes += 1;
            p.entries
                .iter()
                .any(|e| e.site == PerturbSite::TokenAcquire)
        });
        assert_eq!(shrunk.entries.len(), 1);
        assert_eq!(shrunk.entries[0].site, PerturbSite::TokenAcquire);
        // Canonicalization drove the seed and intensity to their minima.
        assert_eq!(shrunk.entries[0].seed, 0);
        assert_eq!(shrunk.entries[0].intensity, 0);
        assert!(probes < 64, "shrinking took {probes} probes");
    }

    #[test]
    fn keeps_a_conjunction_of_sites() {
        let need = [PerturbSite::Commit, PerturbSite::Barrier];
        let shrunk = shrink_plan(PerturbPlan::full(3), |p| {
            need.iter().all(|s| p.entries.iter().any(|e| e.site == *s))
        });
        let sites: Vec<PerturbSite> = shrunk.entries.iter().map(|e| e.site).collect();
        assert_eq!(sites, need);
    }

    #[test]
    fn shrinks_to_empty_when_failure_is_unconditional() {
        let shrunk = shrink_plan(PerturbPlan::full(9), |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn preserves_master_seed_for_provenance() {
        let shrunk = shrink_plan(PerturbPlan::full(0xAB), |p| {
            p.entries.iter().any(|e| e.site == PerturbSite::Fault)
        });
        assert_eq!(shrunk.seed, 0xAB);
        assert_ne!(shrunk.digest(), PerturbPlan::full(0xAB).digest());
    }
}
