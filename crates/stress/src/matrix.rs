//! `stress --soak`: the mixed-scenario matrix.
//!
//! Every adversarial subsystem in this workspace attacks the determinism
//! contract along **one** axis: timing perturbation (`run_matrix`),
//! injected deaths (`run_panic_inject`), token-domain sharding
//! (`run_shard_diff`), live trace recording (`--record`). Real failures
//! compose. This module runs the deterministic request server under every
//! on/off combination of the four axes — all 16 compositions, including
//! perturb × panic × shard × record in a *single run* — and holds each
//! composition to the same oracles as the single-axis modes:
//!
//! 1. **Reproducibility** — two runs of one composition produce identical
//!    schedule hashes, semantic digests, contained-panic counts and
//!    completion states;
//! 2. **Timing invariance** — within a `(panic, shard)` group, turning
//!    perturbation or recording on must not move the schedule hash: both
//!    are observation/noise, never schedule input;
//! 3. **Semantics** — panic-free compositions must serve every request
//!    and reproduce the sequential reference store; panic compositions
//!    must actually fire their injected death and (sharded) report the
//!    loss instead of hanging — the [`dmt_shard::PhaseGate`] resignation
//!    protocol under test;
//! 4. **Recording fidelity** — recorded compositions must buffer the full
//!    event stream (nothing dropped) and the buffered stream must fold to
//!    the run's schedule hash bit for bit.
//!
//! A cross-axis leak — a perturbation draw that feeds the scheduler, a
//! panic whose containment point depends on recording overhead, a
//! rendezvous that deadlocks when its peer died — moves exactly one of
//! these digests. See `docs/SOAK.md`.

use std::sync::Arc;

use consequence::{ConsequenceRuntime, Options};
use dmt_api::trace::{HashSink, MemorySink};
use dmt_api::{
    CommonConfig, CostModel, Fnv1a, PanicSite, PerturbHandle, PerturbPlan, PerturbSite, Perturber,
    PlanPerturber, Runtime, Tid, TraceHandle, WitnessHandle,
};
use dmt_bench::json_struct;
use dmt_shard::{run_sharded_server_hooked, CaptureMode, DomainHooks, ShardCfg};
use dmt_workloads::server::ServerSpec;
use dmt_workloads::{workload_by_name, Params};

use crate::mix64;

/// Token domains of the sharded compositions.
pub const MATRIX_SHARDS: u32 = 2;

/// Event capacity of the recording compositions' sink — sized so nothing
/// is ever dropped (fidelity is an oracle here, unlike the soak cells
/// that assert bounded-ring *occupancy*).
const MATRIX_RING: usize = 1 << 20;

/// Salt deriving the matrix's perturbation-plan seeds.
const MATRIX_SALT: u64 = 0x50AC_AB1E;

/// One on/off composition of the four scenario axes.
#[derive(Clone, Copy, Debug)]
struct Comp {
    perturb: bool,
    panic: bool,
    shard: bool,
    record: bool,
}

impl Comp {
    /// All 16 compositions, base case first.
    fn all() -> impl Iterator<Item = Comp> {
        (0u32..16).map(|bits| Comp {
            perturb: bits & 1 != 0,
            panic: bits & 2 != 0,
            shard: bits & 4 != 0,
            record: bits & 8 != 0,
        })
    }
}

/// Composes the timing fuzzer with a deterministic assassin so one
/// perturber handle carries both scenario axes into a runtime. Both
/// delegates are pure functions of their call arguments, so the
/// composition is exactly as replayable as its parts.
struct Composite {
    timing: Option<PlanPerturber>,
    killer: Option<(PanicSite, Tid, u64)>,
}

impl Perturber for Composite {
    fn hit(&self, site: PerturbSite, tid: Tid) -> u64 {
        self.timing.as_ref().map_or(0, |t| t.hit(site, tid))
    }

    fn panic_at(&self, site: PanicSite, tid: Tid, nth: u64) -> bool {
        self.killer == Some((site, tid, nth))
    }

    fn seed(&self) -> u64 {
        self.timing.as_ref().map_or(0, |t| t.seed())
    }
}

fn composite(timing: Option<PerturbPlan>, killer: Option<(PanicSite, Tid, u64)>) -> PerturbHandle {
    if timing.is_none() && killer.is_none() {
        return PerturbHandle::off();
    }
    PerturbHandle::to(Arc::new(Composite {
        timing: timing.map(PlanPerturber::new),
        killer,
    }))
}

/// What one execution of a composition reports to the oracles.
struct CompRun {
    schedule_hash: u64,
    /// Semantic digest: final-store hash (sharded) or output hash
    /// (unsharded).
    semantic_hash: u64,
    panics: u64,
    /// Served every request and matched the sequential reference.
    complete: bool,
    /// Recording fidelity held (vacuously true when not recording).
    record_ok: bool,
}

/// One composition's row in the report.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Timing perturbation attached.
    pub perturb: bool,
    /// Deterministic thread death injected.
    pub panic: bool,
    /// Run across token domains.
    pub shard: bool,
    /// Live trace recording attached.
    pub record: bool,
    /// Runs executed (2: run + rerun).
    pub runs: u64,
    /// The composition's schedule hash.
    pub schedule_hash: u64,
    /// Contained panics per run.
    pub panics: u64,
    /// Both runs agreed on every digest.
    pub deterministic: bool,
    /// The composition's semantic oracle held (see module docs).
    pub oracle_ok: bool,
    /// Recording fidelity held.
    pub record_ok: bool,
    /// Schedule hash matches the composition's `(panic, shard)` group —
    /// perturbation and recording did not move the schedule.
    pub invariant: bool,
}

/// The full mixed-scenario result.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Worker threads per runtime (per domain when sharded).
    pub threads: usize,
    /// Master seed of the perturbation plans.
    pub base_seed: u64,
    /// Compositions run (16).
    pub compositions: u64,
    /// Total executions.
    pub total_runs: u64,
    /// Per-composition rows.
    pub cells: Vec<MatrixCell>,
    /// Every oracle held in every composition.
    pub passed: bool,
}

json_struct!(MatrixCell {
    perturb,
    panic,
    shard,
    record,
    runs,
    schedule_hash,
    panics,
    deterministic,
    oracle_ok,
    record_ok,
    invariant
});

json_struct!(MatrixReport {
    threads,
    base_seed,
    compositions,
    total_runs,
    cells,
    passed
});

/// The unsharded server under one composition: the registry `dmt_server`
/// workload on a single Consequence-IC runtime.
fn run_unsharded(c: Comp, threads: usize, scale: u32, input_seed: u64, base_seed: u64) -> CompRun {
    let w = workload_by_name("dmt_server").expect("registry has dmt_server");
    let p = Params::new(threads, scale, input_seed);
    let mem = c.record.then(|| Arc::new(MemorySink::new(MATRIX_RING)));
    let trace = match &mem {
        Some(s) => TraceHandle::to(Arc::clone(s) as _),
        None => TraceHandle::to(Arc::new(HashSink::new()) as _),
    };
    let timing = c
        .perturb
        .then(|| PerturbPlan::full(mix64(base_seed ^ MATRIX_SALT)));
    // The victim is a pool worker (never the driver): its death is
    // contained, the survivors keep serving, the run completes short.
    let killer = c.panic.then_some((PanicSite::Commit, Tid(1), 1));
    let cfg = CommonConfig {
        heap_pages: w.heap_pages(&p),
        max_threads: threads + 2,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace,
        perturb: composite(timing, killer),
        witness: WitnessHandle::off(),
    };
    let mut opts = Options::consequence_ic();
    if c.panic {
        // A dead worker can starve the epoch; a short watchdog turns that
        // into a prompt contained shutdown instead of a 5 s stall.
        opts.watchdog_stall_ms = Some(500);
    }
    let mut rt = ConsequenceRuntime::new(cfg, opts);
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    let v = (prepared.validate)(&rt);
    let record_ok = mem.is_none_or(|s| {
        let (events, dropped) = s.take();
        let mut h = Fnv1a::new();
        for ev in &events {
            ev.fold(&mut h);
        }
        dropped == 0 && !events.is_empty() && h.digest() == report.schedule_hash
    });
    CompRun {
        schedule_hash: report.schedule_hash,
        semantic_hash: v.output_hash,
        panics: report.panics.len() as u64,
        complete: v.matches_reference,
        record_ok,
    }
}

/// The sharded server under one composition: [`MATRIX_SHARDS`] token
/// domains, hooks carrying the scenario into each domain's config.
fn run_sharded(c: Comp, workers: usize, scale: u32, input_seed: u64, base_seed: u64) -> CompRun {
    let mut cfg = ShardCfg::new(
        MATRIX_SHARDS,
        workers,
        Params::new(workers, scale, input_seed),
    );
    cfg.capture = if c.record {
        CaptureMode::Events
    } else {
        CaptureMode::Hash
    };
    if c.panic {
        cfg.opts.watchdog_stall_ms = Some(300);
    }
    let reference = reference_store_hash(&ServerSpec::of(&cfg.params));
    let hooks = DomainHooks {
        perturb: (0..MATRIX_SHARDS as usize)
            .map(|d| {
                let timing = c
                    .perturb
                    .then(|| PerturbPlan::full(mix64(base_seed ^ MATRIX_SALT ^ (d as u64 + 1))));
                // Kill the *driver* of the last domain: the hardest case —
                // the whole domain goes dark mid-run and its siblings must
                // resign it from the rendezvous instead of hanging.
                let killer = (c.panic && d == MATRIX_SHARDS as usize - 1).then_some((
                    PanicSite::Commit,
                    Tid(0),
                    1,
                ));
                composite(timing, killer)
            })
            .collect(),
        witness: Vec::new(),
        tolerate_losses: c.panic,
    };
    let r = run_sharded_server_hooked(&cfg, &hooks);
    let record_ok = !c.record || !r.canonical_events().is_empty();
    CompRun {
        schedule_hash: r.schedule_hash,
        semantic_hash: r.store_hash,
        panics: r.panics,
        complete: r.complete && r.store_hash == reference,
        record_ok,
    }
}

/// Sequential-reference store digest, folded exactly like
/// `ShardReport::store_hash`.
fn reference_store_hash(spec: &ServerSpec) -> u64 {
    let mut h = Fnv1a::new();
    for (k, v) in spec.expected_store().iter().enumerate() {
        h.update(&(k as u64).to_le_bytes());
        h.update(&v.to_le_bytes());
    }
    h.digest()
}

fn run_composition(c: Comp, threads: usize, scale: u32, input_seed: u64, seed: u64) -> CompRun {
    if c.shard {
        run_sharded(c, threads, scale, input_seed, seed)
    } else {
        run_unsharded(c, threads, scale, input_seed, seed)
    }
}

/// Runs all 16 compositions and returns the report. `progress` is called
/// once per finished composition.
pub fn run_mixed_matrix(
    threads: usize,
    scale: u32,
    input_seed: u64,
    base_seed: u64,
    mut progress: impl FnMut(&MatrixCell),
) -> MatrixReport {
    // Group anchor: schedule and semantic hash per (panic, shard); the
    // other two axes must not move either.
    let mut anchors: [Option<(u64, u64)>; 4] = [None; 4];
    let mut cells = Vec::with_capacity(16);
    let mut total_runs = 0u64;
    for c in Comp::all() {
        let a = run_composition(c, threads, scale, input_seed, base_seed);
        let b = run_composition(c, threads, scale, input_seed, base_seed);
        total_runs += 2;
        let deterministic = a.schedule_hash == b.schedule_hash
            && a.semantic_hash == b.semantic_hash
            && a.panics == b.panics
            && a.complete == b.complete;
        let oracle_ok = if c.panic {
            // The death must fire; sharded, the lost tail must be
            // reported (not hung, not silently healed).
            a.panics >= 1 && (!c.shard || !a.complete)
        } else {
            a.panics == 0 && a.complete
        };
        let group = (c.panic as usize) | ((c.shard as usize) << 1);
        let anchor = *anchors[group].get_or_insert((a.schedule_hash, a.semantic_hash));
        let invariant = (a.schedule_hash, a.semantic_hash) == anchor;
        let cell = MatrixCell {
            perturb: c.perturb,
            panic: c.panic,
            shard: c.shard,
            record: c.record,
            runs: 2,
            schedule_hash: a.schedule_hash,
            panics: a.panics,
            deterministic,
            oracle_ok,
            record_ok: a.record_ok && b.record_ok,
            invariant,
        };
        progress(&cell);
        cells.push(cell);
    }
    let passed = cells
        .iter()
        .all(|c| c.deterministic && c.oracle_ok && c.record_ok && c.invariant);
    MatrixReport {
        threads,
        base_seed,
        compositions: cells.len() as u64,
        total_runs,
        cells,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_bench::json::ToJson;

    #[test]
    fn mixed_matrix_passes_at_smoke_size() {
        let report = run_mixed_matrix(3, 1, 7, 0xC0FF_EE00, |_| {});
        assert_eq!(report.compositions, 16);
        for c in &report.cells {
            assert!(
                c.deterministic && c.oracle_ok && c.record_ok && c.invariant,
                "composition failed: {c:?}"
            );
        }
        assert!(report.passed);
        // The flagship composition — all four axes in one run — must have
        // actually fired its death.
        let flagship = report
            .cells
            .iter()
            .find(|c| c.perturb && c.panic && c.shard && c.record)
            .expect("16 compositions include the full one");
        assert!(flagship.panics >= 1);
        let j = report.to_json();
        assert!(j.contains("\"compositions\":16"));
    }
}
