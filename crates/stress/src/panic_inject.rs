//! `stress --inject-panic`: seeded panic injection against the
//! containment contract.
//!
//! The runtime's robustness claim (see `docs/ROBUSTNESS.md`) is that a
//! workload thread dying *anywhere* — at a lock acquisition, a barrier
//! arrival, a chunk commit — is contained deterministically: the dying
//! thread departs the clock under the token, poisons what it held, and
//! every survivor observes the fallout (`MutexPoisoned`, `BarrierBroken`,
//! `ThreadPanicked`) at a schedule point that is a pure function of the
//! program. In other words, **a panicking run is exactly as reproducible
//! as a healthy one**.
//!
//! This mode attacks that claim the same way the main fuzzer attacks the
//! timing claim. For every workload × Consequence-backed runtime × seed it
//! derives a victim `(site, tid, nth)` triple — a pure function of the
//! seed, so the injected death lands at the same point in the victim's
//! instruction stream on every rerun — runs the cell twice, and requires
//! both runs to produce the same schedule hash *and* the same contained
//! panic set. A cell where no panic fires (the victim never reaches the
//! armed site) is still a valid probe: the run must then match the
//! sequential reference like any healthy run. Completing at all is the
//! third oracle — a hang here is a containment bug, and the runtimes'
//! watchdog turns it into a diagnosed failure rather than a stuck CI job.

use std::sync::Arc;

use dmt_api::{PanicSite, PerturbHandle, PerturbSite, Perturber, Tid};
use dmt_baselines::RuntimeKind;
use dmt_bench::json_struct;

use crate::{mix64, run_workload, CellRun, StressConfig};

/// Kills one thread at one deterministic point: thread `victim`, at its
/// `nth` operation of class `site`. The decision is a pure function of
/// `(site, tid, nth)` as `Perturber::panic_at` requires, so reruns die at
/// the identical point.
#[derive(Clone, Copy, Debug)]
pub struct PanicInjector {
    pub site: PanicSite,
    pub victim: Tid,
    pub nth: u64,
}

impl PanicInjector {
    /// Derives the victim triple from a seed: site, a non-main thread id
    /// below `threads`, and a small occurrence index.
    pub fn from_seed(seed: u64, threads: usize) -> PanicInjector {
        let h = mix64(seed ^ DEAD_PANIC_SALT);
        let site = PanicSite::ALL[(h % PanicSite::ALL.len() as u64) as usize];
        let victim = Tid(1 + ((h >> 8) % threads.max(1) as u64) as u32);
        let nth = (h >> 32) % 6;
        PanicInjector { site, victim, nth }
    }
}

/// Salt mixed into the seed stream (distinct from the timing fuzzer's).
const DEAD_PANIC_SALT: u64 = 0xD1E5_EED5;

impl Perturber for PanicInjector {
    fn hit(&self, _site: PerturbSite, _tid: Tid) -> u64 {
        0
    }

    fn panic_at(&self, site: PanicSite, tid: Tid, nth: u64) -> bool {
        site == self.site && tid == self.victim && nth == self.nth
    }

    fn seed(&self) -> u64 {
        0
    }
}

/// One workload × runtime cell of the panic-injection matrix.
#[derive(Clone, Debug)]
pub struct PanicCell {
    pub workload: String,
    pub runtime: String,
    /// Total runs in the cell: 2 per seed (run + rerun).
    pub runs: u64,
    /// Seeds whose injected death actually fired (victim reached the site).
    pub hits: u64,
    /// Distinct contained panics observed across all firing seeds.
    pub panics: u64,
    /// Every rerun reproduced its run's schedule hash and panic set.
    pub reproducible: bool,
    /// Every non-firing run still matched the sequential reference.
    pub validated: bool,
}

/// The full panic-injection result.
#[derive(Clone, Debug)]
pub struct PanicInjectReport {
    pub threads: usize,
    pub seeds: u64,
    pub base_seed: u64,
    pub total_runs: u64,
    /// Runs in which an injected death fired, across the whole matrix.
    pub total_hits: u64,
    pub cells: Vec<PanicCell>,
    pub passed: bool,
}

json_struct!(PanicCell {
    workload,
    runtime,
    runs,
    hits,
    panics,
    reproducible,
    validated
});

json_struct!(PanicInjectReport {
    threads,
    seeds,
    base_seed,
    total_runs,
    total_hits,
    cells,
    passed
});

/// The runtimes with panic containment (the Consequence family). Other
/// kinds (pthreads, dthreads) make no containment promise and are skipped.
fn contains_panics(kind: RuntimeKind) -> bool {
    matches!(
        kind,
        RuntimeKind::Dwc | RuntimeKind::ConsequenceRr | RuntimeKind::ConsequenceIc
    )
}

fn injector_handle(inj: PanicInjector) -> PerturbHandle {
    PerturbHandle::to(Arc::new(inj))
}

/// Runs the panic-injection matrix and returns the report.
///
/// Passing requires every cell to be reproducible and validated, and at
/// least one injected death to have fired somewhere — a matrix where no
/// victim ever dies proves nothing about containment.
pub fn run_panic_inject(
    cfg: &StressConfig,
    mut progress: impl FnMut(&PanicCell),
) -> PanicInjectReport {
    let mut cells = Vec::new();
    let mut total_runs = 0u64;
    let mut total_hits = 0u64;

    for (wi, name) in cfg.workloads.iter().enumerate() {
        for (ki, &kind) in cfg.runtimes.iter().enumerate() {
            if !contains_panics(kind) {
                continue;
            }
            let cell_salt = mix64(cfg.base_seed ^ 0xFA17_0CE5 ^ ((wi as u64) << 32) ^ (ki as u64));
            let mut hits = 0u64;
            let mut panics = 0u64;
            let mut reproducible = true;
            let mut validated = true;

            for s in 0..cfg.seeds {
                let inj = PanicInjector::from_seed(cell_salt ^ (s + 1), cfg.threads);
                let run_once = || -> CellRun {
                    run_workload(
                        kind,
                        name,
                        cfg.threads,
                        cfg.scale,
                        cfg.input_seed,
                        injector_handle(inj),
                    )
                };
                let a = run_once();
                let b = run_once();
                total_runs += 2;
                let fired = !a.report.panics.is_empty();
                if fired {
                    hits += 1;
                    total_hits += 1;
                    panics += a.report.panics.len() as u64;
                } else {
                    // No death: the armed-but-unhit run must behave like a
                    // healthy one.
                    validated &= a.matches_reference && b.matches_reference;
                }
                reproducible &= a.schedule_hash == b.schedule_hash
                    && a.report.panics == b.report.panics
                    && a.output_hash == b.output_hash;
            }

            let cell = PanicCell {
                workload: name.clone(),
                runtime: kind.label().to_string(),
                runs: 2 * cfg.seeds,
                hits,
                panics,
                reproducible,
                validated,
            };
            progress(&cell);
            cells.push(cell);
        }
    }

    let passed =
        !cells.is_empty() && total_hits > 0 && cells.iter().all(|c| c.reproducible && c.validated);
    PanicInjectReport {
        threads: cfg.threads,
        seeds: cfg.seeds,
        base_seed: cfg.base_seed,
        total_runs,
        total_hits,
        cells,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_bench::json::ToJson;

    #[test]
    fn injector_is_a_pure_function_of_the_seed() {
        let a = PanicInjector::from_seed(7, 4);
        let b = PanicInjector::from_seed(7, 4);
        assert_eq!(a.site, b.site);
        assert_eq!(a.victim, b.victim);
        assert_eq!(a.nth, b.nth);
        assert!(a.victim.0 >= 1 && a.victim.0 <= 4, "never kills main");
        // Different seeds spread over sites and victims.
        let spread: std::collections::BTreeSet<_> = (0..64)
            .map(|s| {
                let i = PanicInjector::from_seed(s, 4);
                (i.site.name(), i.victim.0, i.nth)
            })
            .collect();
        assert!(spread.len() > 16, "only {} distinct triples", spread.len());
    }

    #[test]
    fn report_serializes_to_json() {
        let r = PanicInjectReport {
            threads: 4,
            seeds: 2,
            base_seed: 1,
            total_runs: 4,
            total_hits: 1,
            cells: vec![PanicCell {
                workload: "histogram".into(),
                runtime: "consequence-ic".into(),
                runs: 4,
                hits: 1,
                panics: 2,
                reproducible: true,
                validated: true,
            }],
            passed: true,
        };
        let j = r.to_json();
        assert!(j.contains("\"total_hits\":1"));
        assert!(j.contains("\"reproducible\":true"));
    }
}
