//! End-to-end proof that the harness catches real determinism bugs.
//!
//! `stress --inject-bug` enables `consequence`'s deliberate
//! [`Options::inject_eligibility_bug`]: a thread arriving at a free token
//! takes it *without* the deterministic eligibility check, so physical
//! arrival order leaks into the schedule — the bug class where a
//! `clockDepart` / publication update is missed and the clock table grants
//! out of order. (Literally skipping a `clockDepart` deadlocks the GMIC —
//! the departed thread stays the minimum forever — so the injected bug is
//! the strictly-more-permissive variant that keeps running and misbehaves
//! observably.)
//!
//! Under the bug the schedule hash of a lock-contended program varies with
//! physical timing; the harness must detect the variance, shrink the
//! triggering plan, and name the first divergent event. A harness that
//! cannot catch *this* would not catch an accidental regression either.

use std::sync::Arc;

use consequence::{ConsequenceRuntime, Options};
use dmt_api::trace::{Event, MemorySink};
use dmt_api::{
    CommonConfig, CostModel, HashSink, Job, MutexId, PerturbHandle, PerturbPlan, Runtime,
    ThreadCtx, TraceHandle,
};

use crate::{investigate, mix64, Target};

/// Heap pages for the synthetic program (one counter word is all it needs).
const HEAP_PAGES: usize = 16;

fn contended_worker(ctx: &mut dyn ThreadCtx, m: MutexId, iters: u64, salt: u64) {
    for k in 0..iters {
        // Uneven local work per thread and iteration, so logical clocks
        // interleave and the token is contended on every acquisition.
        ctx.tick(1 + (salt * 7 + k) % 13);
        ctx.mutex_lock(m);
        let v = ctx.ld_u64(0);
        ctx.st_u64(0, v + 1);
        ctx.mutex_unlock(m);
    }
}

/// Builds the lock-contended synthetic program: `threads` workers hammer
/// one mutex-protected counter with skewed per-thread work.
pub fn prepare_contended(rt: &mut dyn Runtime, threads: usize, iters: u64) -> Job {
    let m = rt.create_mutex();
    Box::new(move |ctx| {
        let workers: Vec<_> = (1..threads)
            .map(|i| {
                ctx.spawn(Box::new(move |c: &mut dyn ThreadCtx| {
                    contended_worker(c, m, iters, i as u64);
                }))
            })
            .collect();
        contended_worker(ctx, m, iters, 0);
        for t in workers {
            ctx.join(t);
        }
    })
}

fn contended_cfg(trace: TraceHandle, perturb: PerturbHandle) -> CommonConfig {
    CommonConfig {
        heap_pages: HEAP_PAGES,
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace,
        perturb,
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn bug_options(bug: bool) -> Options {
    let mut o = Options::consequence_ic();
    o.inject_eligibility_bug = bug;
    o
}

/// Runs the contended program once, returning its schedule hash.
pub fn run_contended(bug: bool, perturb: PerturbHandle, threads: usize, iters: u64) -> u64 {
    let sink = Arc::new(HashSink::new());
    let mut rt = ConsequenceRuntime::new(
        contended_cfg(TraceHandle::to(sink), perturb),
        bug_options(bug),
    );
    let job = prepare_contended(&mut rt, threads, iters);
    rt.run(job).schedule_hash
}

/// Runs the contended program once while recording its schedule.
pub fn record_contended(
    bug: bool,
    perturb: PerturbHandle,
    threads: usize,
    iters: u64,
) -> (Vec<Event>, u64) {
    let sink = Arc::new(MemorySink::new(crate::TRACE_CAP));
    let mut rt = ConsequenceRuntime::new(
        contended_cfg(TraceHandle::to(Arc::clone(&sink) as _), perturb),
        bug_options(bug),
    );
    let job = prepare_contended(&mut rt, threads, iters);
    let report = rt.run(job);
    let (events, _dropped) = sink.take();
    (events, report.schedule_hash)
}

/// Result of the `--inject-bug` end-to-end check.
#[derive(Clone, Debug)]
pub struct InjectOutcome {
    /// Whether the harness caught the injected bug (it must).
    pub caught: bool,
    /// Schedule hash of the first (reference) run.
    pub baseline_hash: u64,
    /// First divergent schedule hash observed.
    pub observed_hash: u64,
    /// Master seed of the plan that triggered the divergence (0 when the
    /// program diverged even unperturbed).
    pub trigger_seed: u64,
    /// Sites surviving the shrink.
    pub shrunk_sites: Vec<String>,
    /// The shrunk reproducer plan, printed.
    pub shrunk_plan: String,
    /// Digest of the shrunk plan.
    pub shrunk_digest: u64,
    /// First-divergent-event diagnosis, when captured.
    pub diagnosis: Option<String>,
    /// Total executions spent (detection + shrinking + diagnosis).
    pub runs: u64,
}

/// Drives the injected-bug detection end to end: run a reference execution,
/// sweep perturbation seeds until the schedule hash moves, then shrink the
/// triggering plan and diagnose the first divergent event.
pub fn run_inject_bug(seeds: u64, threads: usize, iters: u64) -> InjectOutcome {
    let mut runs = 0u64;
    let base = run_contended(true, PerturbHandle::off(), threads, iters);
    runs += 1;

    let target = Target {
        run_hash: Box::new(move |p| run_contended(true, p, threads, iters)),
        record: Box::new(move |p| record_contended(true, p, threads, iters)),
    };

    // Sweep perturbed runs first (the harness's normal mode), then
    // unperturbed reruns — under the bug either may expose the variance.
    for s in 0..seeds {
        let plan = PerturbPlan::full(mix64(0xB06 ^ (s + 1)));
        runs += 1;
        let h = (target.run_hash)(crate::plan_handle(&plan));
        if h == base {
            continue;
        }
        let (shrunk, diagnosis) = investigate(&target, &plan, base, &mut runs);
        return InjectOutcome {
            caught: true,
            baseline_hash: base,
            observed_hash: h,
            trigger_seed: plan.seed,
            shrunk_sites: shrunk
                .entries
                .iter()
                .map(|e| e.site.name().to_string())
                .collect(),
            shrunk_plan: shrunk.to_string(),
            shrunk_digest: shrunk.digest(),
            diagnosis,
            runs,
        };
    }
    for _ in 0..seeds {
        runs += 1;
        let h = (target.run_hash)(PerturbHandle::off());
        if h == base {
            continue;
        }
        let empty = PerturbPlan {
            seed: 0,
            entries: Vec::new(),
        };
        let (shrunk, diagnosis) = investigate(&target, &empty, base, &mut runs);
        return InjectOutcome {
            caught: true,
            baseline_hash: base,
            observed_hash: h,
            trigger_seed: 0,
            shrunk_sites: Vec::new(),
            shrunk_plan: shrunk.to_string(),
            shrunk_digest: shrunk.digest(),
            diagnosis,
            runs,
        };
    }

    InjectOutcome {
        caught: false,
        baseline_hash: base,
        observed_hash: base,
        trigger_seed: 0,
        shrunk_sites: Vec::new(),
        shrunk_plan: String::new(),
        shrunk_digest: 0,
        diagnosis: None,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_program_is_deterministic_without_the_bug() {
        let a = run_contended(false, PerturbHandle::off(), 4, 120);
        let b = run_contended(false, PerturbHandle::off(), 4, 120);
        let c = run_contended(false, crate::plan_handle(&PerturbPlan::full(17)), 4, 120);
        assert_eq!(a, b);
        assert_eq!(a, c, "perturbation moved a correct runtime's schedule");
    }

    #[test]
    fn counter_totals_are_exact_under_contention() {
        let sink = Arc::new(HashSink::new());
        let mut rt = ConsequenceRuntime::new(
            contended_cfg(TraceHandle::to(sink), PerturbHandle::off()),
            bug_options(false),
        );
        let job = prepare_contended(&mut rt, 3, 50);
        rt.run(job);
        let mut buf = [0u8; 8];
        rt.final_read(0, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 3 * 50);
    }
}
