//! `stress --shard-diff`: differential validation of the sharded runtime.
//!
//! The `dmt-shard` subsystem partitions a run into independently tokened
//! domains (see `docs/SHARDING.md`). Its contract has three legs, and
//! this mode attacks each one end to end:
//!
//! 1. **Per-configuration determinism** — for every shard count, repeated
//!    runs of one `(seed, options)` produce bit-identical combined
//!    schedule hashes, per-domain hashes and output hashes;
//! 2. **1-shard lockstep** — a 1-shard sharded run executes the identical
//!    job the unsharded `dmt_server` registry workload executes, in the
//!    root domain, so its domain schedule hash and output hash must equal
//!    the unsharded run's bit for bit;
//! 3. **Semantic invariance** — the final store digest must equal the
//!    sequential reference under *every* shard count and shard-map seed
//!    (all server mutations commute), even though the schedules
//!    legitimately differ.
//!
//! A single misrouted credit, lost rendezvous message or cross-domain
//! schedule leak moves one of these digests.

use std::sync::Arc;

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{CommonConfig, CostModel, Fnv1a, HashSink, PerturbHandle, Runtime, TraceHandle};
use dmt_bench::json_struct;
use dmt_shard::{run_sharded_server, CaptureMode, ShardCfg};
use dmt_workloads::server::ServerSpec;
use dmt_workloads::{workload_by_name, Params, Validation};

use crate::StressConfig;

/// Shard counts the differential sweeps.
pub const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

/// One shard count's differential result.
#[derive(Clone, Debug)]
pub struct ShardDiffCell {
    /// Shard domains in this cell.
    pub shards: u64,
    /// Repeated runs executed.
    pub runs: u64,
    /// Combined schedule hash (identical across all runs when
    /// `deterministic`).
    pub schedule_hash: u64,
    /// Final-store digest (must match the sequential reference).
    pub store_hash: u64,
    /// Combined output hash.
    pub output_hash: u64,
    /// Every repeat reproduced every per-domain hash and the combined
    /// hashes bit for bit.
    pub deterministic: bool,
    /// The store digest equals the sequential reference's.
    pub store_matches_reference: bool,
    /// For the 1-shard cell: the root domain's schedule and output hashes
    /// equal the unsharded registry workload's. (Vacuously true for
    /// multi-shard cells.)
    pub lockstep: bool,
}

/// The full sharded-differential result.
#[derive(Clone, Debug)]
pub struct ShardDiffReport {
    /// Pool workers per domain.
    pub threads: usize,
    /// Problem-size multiplier.
    pub scale: u64,
    /// Workload input seed.
    pub input_seed: u64,
    /// Runs per cell.
    pub repeats: u64,
    /// Schedule hash of the unsharded `dmt_server` registry run.
    pub unsharded_hash: u64,
    /// Sequential-reference store digest.
    pub reference_store_hash: u64,
    /// A non-zero shard-map seed still reproduced the reference store.
    pub map_seed_store_ok: bool,
    /// A non-zero shard-map seed produced a different schedule (the map
    /// actually routes).
    pub map_seed_schedule_moves: bool,
    /// Per-shard-count cells.
    pub cells: Vec<ShardDiffCell>,
    /// Every oracle held.
    pub passed: bool,
}

json_struct!(ShardDiffCell {
    shards,
    runs,
    schedule_hash,
    store_hash,
    output_hash,
    deterministic,
    store_matches_reference,
    lockstep
});

json_struct!(ShardDiffReport {
    threads,
    scale,
    input_seed,
    repeats,
    unsharded_hash,
    reference_store_hash,
    map_seed_store_ok,
    map_seed_schedule_moves,
    cells,
    passed
});

/// Runs the unsharded `dmt_server` registry workload under exactly the
/// configuration a 1-shard domain runs, returning its schedule hash and
/// output hash.
fn run_unsharded(threads: usize, scale: u32, seed: u64) -> (u64, u64) {
    let w = workload_by_name("dmt_server").expect("registry has dmt_server");
    let p = Params::new(threads, scale, seed);
    let sink = Arc::new(HashSink::new());
    let cfg = CommonConfig {
        heap_pages: w.heap_pages(&p),
        max_threads: threads + 2,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: TraceHandle::to(Arc::clone(&sink) as _),
        perturb: PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    };
    let mut rt = ConsequenceRuntime::new(cfg, Options::consequence_ic());
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(&rt);
    assert!(
        v.matches_reference,
        "unsharded dmt_server failed validation"
    );
    (report.schedule_hash, v.output_hash)
}

/// Sequential-reference store digest, folded exactly like
/// `ShardReport::store_hash`.
fn reference_store_hash(spec: &ServerSpec) -> u64 {
    let mut h = Fnv1a::new();
    for (k, v) in spec.expected_store().iter().enumerate() {
        h.update(&(k as u64).to_le_bytes());
        h.update(&v.to_le_bytes());
    }
    h.digest()
}

fn shard_cfg(shards: u32, threads: usize, scale: u32, seed: u64, map_seed: u64) -> ShardCfg {
    let mut cfg = ShardCfg::new(shards, threads, Params::new(threads, scale, seed));
    cfg.opts.shard_map_seed = map_seed;
    cfg.capture = CaptureMode::Hash;
    cfg
}

/// Runs the sharded differential and returns the report. `progress` is
/// called once per finished cell.
pub fn run_shard_diff(
    cfg: &StressConfig,
    mut progress: impl FnMut(&ShardDiffCell),
) -> ShardDiffReport {
    let repeats = cfg.seeds.max(2);
    let spec = ServerSpec::of(&Params::new(cfg.threads, cfg.scale, cfg.input_seed));
    let reference = reference_store_hash(&spec);
    let (unsharded_hash, unsharded_out) = run_unsharded(cfg.threads, cfg.scale, cfg.input_seed);

    let mut cells = Vec::new();
    for &shards in &SHARD_COUNTS {
        let scfg = shard_cfg(shards, cfg.threads, cfg.scale, cfg.input_seed, 0);
        let first = run_sharded_server(&scfg);
        let mut deterministic = true;
        for _ in 1..repeats {
            let again = run_sharded_server(&scfg);
            deterministic &= again.schedule_hash == first.schedule_hash
                && again.output_hash == first.output_hash
                && again.store_hash == first.store_hash
                && again
                    .domains
                    .iter()
                    .zip(&first.domains)
                    .all(|(a, b)| a.schedule_hash == b.schedule_hash);
        }
        let lockstep = shards != 1
            || (first.domains[0].schedule_hash == unsharded_hash
                && first.domains[0].output_hash == unsharded_out);
        let cell = ShardDiffCell {
            shards: shards as u64,
            runs: repeats,
            schedule_hash: first.schedule_hash,
            store_hash: first.store_hash,
            output_hash: first.output_hash,
            deterministic,
            store_matches_reference: first.store_hash == reference,
            lockstep,
        };
        progress(&cell);
        cells.push(cell);
    }

    // A scrambled shard map must reroute (different schedule) without
    // changing semantics (same reference store).
    let seeded = run_sharded_server(&shard_cfg(
        4,
        cfg.threads,
        cfg.scale,
        cfg.input_seed,
        0xB10C,
    ));
    let base4 = cells
        .iter()
        .find(|c| c.shards == 4)
        .expect("4-shard cell exists");
    let map_seed_store_ok = seeded.store_hash == reference;
    let map_seed_schedule_moves = seeded.schedule_hash != base4.schedule_hash;

    let passed = cells
        .iter()
        .all(|c| c.deterministic && c.store_matches_reference && c.lockstep)
        && map_seed_store_ok
        && map_seed_schedule_moves;
    ShardDiffReport {
        threads: cfg.threads,
        scale: cfg.scale as u64,
        input_seed: cfg.input_seed,
        repeats,
        unsharded_hash,
        reference_store_hash: reference,
        map_seed_store_ok,
        map_seed_schedule_moves,
        cells,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_diff_smoke_passes() {
        let cfg = StressConfig {
            threads: 2,
            scale: 1,
            seeds: 2,
            input_seed: 42,
            ..StressConfig::smoke()
        };
        let mut seen = 0;
        let report = run_shard_diff(&cfg, |_| seen += 1);
        assert_eq!(seen, SHARD_COUNTS.len());
        assert!(report.passed, "{report:?}");
        assert!(report.cells.iter().all(|c| c.runs >= 2));
    }
}
