//! Every kernel must produce its sequential-reference result under the
//! deterministic runtimes, and be bit-reproducible across runs.

use dmt_api::{CommonConfig, CostModel};
use dmt_baselines::{make_runtime, RuntimeKind};
use dmt_workloads::{all_workloads, workload_by_name, Params, Workload};

fn cfg(pages: usize) -> CommonConfig {
    CommonConfig {
        heap_pages: pages,
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

fn run_once(w: &dyn Workload, kind: RuntimeKind, p: &Params) -> (u64, u64, bool) {
    let mut rt = make_runtime(kind, cfg(w.heap_pages(p)));
    let prepared = w.prepare(rt.as_mut(), p);
    let report = rt.run(prepared.job);
    let v = (prepared.validate)(rt.as_ref());
    (v.output_hash, report.commit_log_hash, v.matches_reference)
}

/// Each workload, under Consequence-IC with 3 threads, matches its
/// sequential reference.
#[test]
fn all_kernels_validate_under_consequence_ic() {
    let p = Params::new(3, 1, 7);
    for w in all_workloads() {
        let (_, _, ok) = run_once(w.as_ref(), RuntimeKind::ConsequenceIc, &p);
        assert!(ok, "{} failed validation under consequence-ic", w.name());
    }
}

/// Each workload also validates under plain pthreads (the kernels are
/// race-free, so even nondeterministic scheduling must reproduce the
/// reference).
#[test]
fn all_kernels_validate_under_pthreads() {
    let p = Params::new(3, 1, 7);
    for w in all_workloads() {
        let (_, _, ok) = run_once(w.as_ref(), RuntimeKind::Pthreads, &p);
        assert!(ok, "{} failed validation under pthreads", w.name());
    }
}

/// A representative subset validates under every runtime, including the
/// synchronous DThreads model and the RR presets.
#[test]
fn representative_kernels_validate_under_all_runtimes() {
    let p = Params::new(3, 1, 11);
    for name in ["histogram", "reverse_index", "ocean_cp", "ferret", "kmeans"] {
        let w = workload_by_name(name).unwrap();
        for kind in RuntimeKind::ALL {
            let (_, _, ok) = run_once(w.as_ref(), kind, &p);
            assert!(ok, "{} failed under {}", name, kind.label());
        }
    }
}

/// Deterministic runtimes reproduce output AND commit logs across runs.
#[test]
fn kernels_are_bit_reproducible_under_dmt() {
    let p = Params::new(3, 1, 13);
    for name in ["word_count", "radix", "dedup", "water_nsquared"] {
        let w = workload_by_name(name).unwrap();
        for kind in [
            RuntimeKind::DThreads,
            RuntimeKind::Dwc,
            RuntimeKind::ConsequenceIc,
        ] {
            let a = run_once(w.as_ref(), kind, &p);
            let b = run_once(w.as_ref(), kind, &p);
            assert_eq!(a, b, "{} not reproducible under {}", name, kind.label());
        }
    }
}

/// Thread-count sweep: results stay correct from 1 to 8 workers.
#[test]
fn kernels_validate_across_thread_counts() {
    for threads in [1, 2, 8] {
        let p = Params::new(threads, 1, 5);
        for name in ["lu_ncb", "streamcluster", "water_spatial"] {
            let w = workload_by_name(name).unwrap();
            let (_, _, ok) = run_once(w.as_ref(), RuntimeKind::ConsequenceIc, &p);
            assert!(ok, "{} failed with {} threads", name, threads);
        }
    }
}
