//! The shared-memory pipeline queue under live runtimes, and kernel
//! scale-parameter checks.

use dmt_api::{CommonConfig, CostModel, MemExt, RuntimeMemExt, Tid};
use dmt_baselines::{make_runtime, RuntimeKind};
use dmt_workloads::layout::Layout;
use dmt_workloads::queue::{ShmQueue, PILL};
use dmt_workloads::{workload_by_name, Params};

fn cfg(pages: usize) -> CommonConfig {
    CommonConfig {
        heap_pages: pages,
        max_threads: 32,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: usize::MAX,
        trace: dmt_api::TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// MPMC: two producers, two consumers, tiny capacity (forcing both
/// not-full and not-empty waits). Every item is consumed exactly once.
#[test]
fn queue_is_mpmc_safe_under_all_runtimes() {
    for kind in RuntimeKind::ALL {
        let mut rt = make_runtime(kind, cfg(16));
        let mut l = Layout::new();
        let q = ShmQueue::create(rt.as_mut(), &mut l, 3);
        let out = l.cells_page_aligned(4);
        let done_lock = rt.create_mutex();
        q.init(rt.as_mut());
        rt.run(Box::new(move |ctx| {
            let producers: Vec<Tid> = (0..2u64)
                .map(|p| {
                    ctx.spawn(Box::new(move |c| {
                        for i in 0..20u64 {
                            c.tick(30);
                            q.push(c, p * 1_000 + i + 1);
                        }
                        // One pill once both producers are done.
                        c.mutex_lock(done_lock);
                        let d = c.fetch_add_u64(out + 16, 1);
                        c.mutex_unlock(done_lock);
                        if d == 2 {
                            q.push(c, PILL);
                        }
                    }))
                })
                .collect();
            let consumers: Vec<Tid> = (0..2usize)
                .map(|ci| {
                    ctx.spawn(Box::new(move |c| {
                        let mut sum = 0u64;
                        let mut n = 0u64;
                        loop {
                            let v = q.pop(c);
                            if v == PILL {
                                break;
                            }
                            sum = sum.wrapping_add(v);
                            n += 1;
                            c.tick(120);
                        }
                        c.st_u64(out + 32 + 16 * ci, sum);
                        c.st_u64(out + 40 + 16 * ci, n);
                    }))
                })
                .collect();
            for k in producers.into_iter().chain(consumers) {
                ctx.join(k);
            }
        }));
        let sum = rt.final_u64(out + 32) + rt.final_u64(out + 48);
        let n = rt.final_u64(out + 40) + rt.final_u64(out + 56);
        let expect: u64 =
            (0..20u64).map(|i| i + 1).sum::<u64>() + (0..20u64).map(|i| 1_000 + i + 1).sum::<u64>();
        assert_eq!(n, 40, "{}: items lost or duplicated", kind.label());
        assert_eq!(sum, expect, "{}: payload corrupted", kind.label());
    }
}

/// `scale` actually grows the problem: virtual runtime increases and the
/// result still validates.
#[test]
fn scale_parameter_grows_work_and_stays_correct() {
    for name in ["histogram", "canneal"] {
        let w = workload_by_name(name).unwrap();
        let mut cycles = Vec::new();
        for scale in [1u32, 2] {
            let p = Params::new(2, scale, 3);
            let mut rt = make_runtime(RuntimeKind::ConsequenceIc, cfg(w.heap_pages(&p)));
            let prep = w.prepare(rt.as_mut(), &p);
            let report = rt.run(prep.job);
            let v = (prep.validate)(rt.as_ref());
            assert!(v.matches_reference, "{name} scale {scale}");
            cycles.push(report.virtual_cycles);
        }
        assert!(
            cycles[1] > cycles[0] * 3 / 2,
            "{name}: scale=2 should be substantially more work ({cycles:?})"
        );
    }
}

/// Different seeds give different inputs (and outputs), same seed repeats.
#[test]
fn seeds_control_inputs() {
    let w = workload_by_name("word_count").unwrap();
    let run = |seed: u64| {
        let p = Params::new(2, 1, seed);
        let mut rt = make_runtime(RuntimeKind::ConsequenceIc, cfg(w.heap_pages(&p)));
        let prep = w.prepare(rt.as_mut(), &p);
        rt.run(prep.job);
        (prep.validate)(rt.as_ref()).output_hash
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
