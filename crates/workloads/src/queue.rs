//! Bounded producer/consumer queues in shared memory.
//!
//! The ferret and dedup pipelines communicate through pthreads-style
//! bounded queues: a ring buffer guarded by one mutex and two condition
//! variables. The queue state itself lives in the shared heap, so queue
//! operations exercise the runtime's isolation/commit machinery exactly
//! like the original programs' shared queue structs do.

use dmt_api::{Addr, CondId, MutexId, Runtime, RuntimeMemExt, ThreadCtx};

use crate::layout::Layout;

/// Poison pill: a consumer that pops this pushes it back and shuts down,
/// so one pill drains an entire consumer pool.
pub const PILL: u64 = u64::MAX;

/// A bounded MPMC queue of `u64` items.
///
/// Layout (8-byte cells): `[head, tail, len, cap, slots[cap]]`.
#[derive(Clone, Copy, Debug)]
pub struct ShmQueue {
    base: Addr,
    cap: usize,
    m: MutexId,
    not_empty: CondId,
    not_full: CondId,
}

impl ShmQueue {
    /// Reserves space and synchronization objects for a queue of `cap`
    /// items. Call before the run, then [`ShmQueue::init`].
    pub fn create(rt: &mut dyn Runtime, l: &mut Layout, cap: usize) -> ShmQueue {
        assert!(cap > 0, "queue capacity must be positive");
        let base = l.cells_page_aligned(4 + cap);
        ShmQueue {
            base,
            cap,
            m: rt.create_mutex(),
            not_empty: rt.create_cond(),
            not_full: rt.create_cond(),
        }
    }

    /// Writes the initial (empty) queue header into the heap.
    pub fn init(&self, rt: &mut dyn Runtime) {
        rt.init_u64(self.base, 0); // head
        rt.init_u64(self.base + 8, 0); // tail
        rt.init_u64(self.base + 16, 0); // len
        rt.init_u64(self.base + 24, self.cap as u64);
    }

    /// Pushes `v`, blocking while the queue is full.
    pub fn push(&self, ctx: &mut dyn ThreadCtx, v: u64) {
        ctx.mutex_lock(self.m);
        while ctx.ld_u64(self.base + 16) >= self.cap as u64 {
            ctx.cond_wait(self.not_full, self.m);
        }
        let tail = ctx.ld_u64(self.base + 8) as usize;
        ctx.st_u64(self.base + 32 + 8 * (tail % self.cap), v);
        ctx.st_u64(self.base + 8, ((tail + 1) % self.cap) as u64);
        let len = ctx.ld_u64(self.base + 16);
        ctx.st_u64(self.base + 16, len + 1);
        ctx.cond_signal(self.not_empty);
        ctx.mutex_unlock(self.m);
    }

    /// Pops an item, blocking while the queue is empty. A popped [`PILL`]
    /// is automatically pushed back so sibling consumers also terminate.
    pub fn pop(&self, ctx: &mut dyn ThreadCtx) -> u64 {
        ctx.mutex_lock(self.m);
        while ctx.ld_u64(self.base + 16) == 0 {
            ctx.cond_wait(self.not_empty, self.m);
        }
        let head = ctx.ld_u64(self.base) as usize;
        let v = ctx.ld_u64(self.base + 32 + 8 * (head % self.cap));
        if v == PILL {
            // Leave the pill for the next consumer.
            ctx.cond_signal(self.not_empty);
            ctx.mutex_unlock(self.m);
            return PILL;
        }
        ctx.st_u64(self.base, ((head + 1) % self.cap) as u64);
        let len = ctx.ld_u64(self.base + 16);
        ctx.st_u64(self.base + 16, len - 1);
        ctx.cond_signal(self.not_full);
        ctx.mutex_unlock(self.m);
        v
    }
}

#[cfg(test)]
mod tests {
    // Queue behaviour is exercised end-to-end by the ferret/dedup workload
    // tests (it needs a live runtime); here we only check layout math.
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn create_reserves_header_and_slots() {
        // A throwaway runtime just to mint ids.
        struct Dummy(u32);
        impl Runtime for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn is_deterministic(&self) -> bool {
                true
            }
            fn create_mutex(&mut self) -> MutexId {
                self.0 += 1;
                MutexId(self.0 - 1)
            }
            fn create_cond(&mut self) -> CondId {
                self.0 += 1;
                CondId(self.0 - 1)
            }
            fn create_barrier(&mut self, _: usize) -> dmt_api::BarrierId {
                unreachable!()
            }
            fn heap_len(&self) -> usize {
                0
            }
            fn init_write(&mut self, _: Addr, _: &[u8]) {}
            fn final_read(&self, _: Addr, _: &mut [u8]) {}
            fn run(&mut self, _: dmt_api::Job) -> dmt_api::RunReport {
                unreachable!()
            }
        }
        let mut rt = Dummy(0);
        let mut l = Layout::new();
        let q = ShmQueue::create(&mut rt, &mut l, 8);
        assert_eq!(q.cap, 8);
        // Header + slots fit inside the reservation.
        assert!(l.pages() * dmt_api::PAGE_SIZE >= q.base + 32 + 64);
    }
}
