//! Static address-space planning for workloads.
//!
//! Kernels lay out their shared arrays at fixed, deterministic addresses
//! before the run begins (the analogue of the original programs' statically
//! allocated globals plus a startup `malloc` phase).

use dmt_api::{Addr, PAGE_SIZE};

/// A bump allocator over a not-yet-created heap.
#[derive(Debug, Default)]
pub struct Layout {
    cursor: usize,
}

impl Layout {
    /// An empty layout starting at address 0.
    pub fn new() -> Layout {
        Layout::default()
    }

    /// Reserves `bytes` with the given power-of-two alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.cursor = (self.cursor + align - 1) & !(align - 1);
        let a = self.cursor;
        self.cursor += bytes;
        a
    }

    /// Reserves an array of `n` 8-byte cells (u64/f64), 8-aligned.
    pub fn cells(&mut self, n: usize) -> Addr {
        self.alloc(n * 8, 8)
    }

    /// Reserves an array of `n` 8-byte cells aligned to a page boundary, so
    /// distinct arrays never falsely share a page.
    pub fn cells_page_aligned(&mut self, n: usize) -> Addr {
        self.alloc(n * 8, PAGE_SIZE)
    }

    /// Heap pages needed to cover everything reserved so far, plus slack.
    pub fn pages(&self) -> usize {
        self.cursor.div_ceil(PAGE_SIZE) + 1
    }
}

/// Splits `n` items across `workers`, returning the half-open range of
/// worker `w`. Remainders go to the leading workers, so ranges differ in
/// size by at most one.
pub fn partition(n: usize, workers: usize, w: usize) -> (usize, usize) {
    assert!(w < workers, "worker index out of range");
    let base = n / workers;
    let extra = n % workers;
    let start = w * base + w.min(extra);
    let len = base + usize::from(w < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut l = Layout::new();
        let a = l.alloc(3, 8);
        let b = l.alloc(8, 8);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
    }

    #[test]
    fn page_aligned_cells_do_not_share_pages() {
        let mut l = Layout::new();
        let a = l.cells_page_aligned(1);
        let b = l.cells_page_aligned(1);
        assert_ne!(a / PAGE_SIZE, b / PAGE_SIZE);
    }

    #[test]
    fn pages_covers_cursor() {
        let mut l = Layout::new();
        l.alloc(PAGE_SIZE * 2 + 1, 8);
        assert!(l.pages() >= 3);
    }

    #[test]
    fn partition_covers_everything_exactly_once() {
        for n in [0usize, 1, 7, 100, 101] {
            for workers in 1..9 {
                let mut covered = 0;
                let mut prev_end = 0;
                for w in 0..workers {
                    let (s, e) = partition(n, workers, w);
                    assert_eq!(s, prev_end);
                    prev_end = e;
                    covered += e - s;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn partition_is_balanced() {
        for w in 0..4 {
            let (s, e) = partition(10, 4, w);
            assert!(e - s == 2 || e - s == 3, "range {s}..{e}");
        }
    }
}
