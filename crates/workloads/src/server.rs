//! `dmt_server`: a deterministic request-serving workload.
//!
//! The ROADMAP north-star is "heavy traffic from millions of users"; this
//! workload is that shape at laptop scale — a KV-store server whose thread
//! pool drains a work queue of thousands of simulated client requests
//! (`Add`, `Get`, `Transfer`) against a striped-lock store. Requests are a
//! pure function of `(seed, scale)`, so every run of a deterministic
//! runtime replays the same traffic.
//!
//! # Epochs and domains
//!
//! The same per-domain job serves two masters: the unsharded registry
//! workload (one domain owning every key) and the `dmt-shard` sharded
//! runtime (one domain per shard, each owning the keys its shard map
//! assigns it). Requests execute in *epochs*: each epoch the driver
//! (`Tid(0)`) pushes the epoch's requests plus one end-of-epoch marker per
//! worker into the queue, waits for the pool at a barrier, then exchanges
//! cross-domain `Transfer` credits through an [`Exchange`] before opening
//! the next epoch. Credits debited in epoch `e` land in the destination
//! domain at epoch `e + 1` — the deterministic cross-shard rendezvous.
//! With one domain the exchange returns every credit to its sender
//! unchanged, so the unsharded workload runs the *identical* job the
//! 1-shard configuration runs (the `shard_lockstep` oracle).
//!
//! # Validation
//!
//! All store mutations are wrapping additions (a `Transfer` is a debit
//! plus a credit), so the final store is order-invariant: it must equal
//! the sequential reference under any interleaving, any shard count, and
//! any runtime — that invariance is the shard-diff semantic oracle. `Get`
//! responses fold into per-worker accumulators and are deterministic per
//! configuration but legitimately differ across shard counts; they count
//! toward the output hash, not the reference check.

use std::sync::Arc;

use dmt_api::{BarrierId, Fnv1a, Job, MemExt, MutexId, Runtime, RuntimeMemExt, ThreadCtx, Tid};

use crate::layout::{partition, Layout};
use crate::queue::ShmQueue;
use crate::rng::{mix64, SplitMix64};
use crate::spec::{Params, Prepared, Validation, Workload};

/// End-of-epoch control value: each worker that pops one stops popping
/// until the next epoch opens. Tag bits `11` are reserved for control
/// values, so no encoded request collides.
pub const EPOCH_MARKER: u64 = 3 << 62;

/// One simulated client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Wrapping-add `delta` to the key's value.
    Add {
        /// Amount added (wrapping).
        delta: u64,
    },
    /// Read the key's value into the serving worker's response
    /// accumulator.
    Get,
    /// Debit `amount` from the request key and credit it to `dst` —
    /// possibly in another shard domain.
    Transfer {
        /// Destination key (global id).
        dst: u64,
        /// Amount moved (wrapping debit + credit).
        amount: u64,
    },
}

/// One simulated client request against a global key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Global key the request targets (the shard-map input).
    pub key: u64,
    /// The operation.
    pub op: Op,
}

/// Packs a request into one queue cell. Layout: tag in bits 62–63
/// (`00` Add, `01` Get, `10` Transfer), then per-tag fields; tag `11` is
/// reserved for control values like [`EPOCH_MARKER`].
pub fn encode_request(r: &Request) -> u64 {
    debug_assert!(r.key < 1 << 20);
    match r.op {
        Op::Add { delta } => {
            debug_assert!(delta < 1 << 32);
            r.key << 32 | delta
        }
        Op::Get => 1 << 62 | r.key << 32,
        Op::Transfer { dst, amount } => {
            debug_assert!(dst < 1 << 20 && amount < 1 << 22);
            2 << 62 | r.key << 42 | dst << 22 | amount
        }
    }
}

/// Inverse of [`encode_request`].
pub fn decode_request(v: u64) -> Request {
    match v >> 62 {
        0 => Request {
            key: v >> 32 & ((1 << 20) - 1),
            op: Op::Add {
                delta: v & ((1 << 32) - 1),
            },
        },
        1 => Request {
            key: v >> 32 & ((1 << 20) - 1),
            op: Op::Get,
        },
        2 => Request {
            key: v >> 42 & ((1 << 20) - 1),
            op: Op::Transfer {
                dst: v >> 22 & ((1 << 20) - 1),
                amount: v & ((1 << 22) - 1),
            },
        },
        _ => panic!("control value {v:#x} is not a request"),
    }
}

/// Server sizing: key-space, request volume and epoch structure, all a
/// pure function of [`Params`].
#[derive(Clone, Copy, Debug)]
pub struct ServerSpec {
    /// Global key-space size (each key one u64 cell).
    pub keys: usize,
    /// Total simulated client requests across all domains.
    pub requests: usize,
    /// Rendezvous epochs the request stream is served in.
    pub epochs: usize,
    /// Striped store locks per domain.
    pub stripes: usize,
    /// Work-queue capacity per domain.
    pub queue_cap: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl ServerSpec {
    /// Sizing for the given parameters (`scale` multiplies traffic).
    pub fn of(p: &Params) -> ServerSpec {
        ServerSpec {
            keys: 1024,
            requests: 2000 * p.scale as usize,
            epochs: 4,
            stripes: 16,
            queue_cap: 64,
            seed: p.seed,
        }
    }

    /// The full request stream, in global arrival order. Pure function of
    /// the spec: ~50% `Add`, ~30% `Get`, ~20% `Transfer`.
    pub fn request_stream(&self) -> Vec<Request> {
        assert!(self.keys <= 1 << 20, "key space exceeds encoding");
        let mut g = SplitMix64::derive(self.seed, 0x5e11);
        (0..self.requests)
            .map(|_| {
                let key = g.below(self.keys as u64);
                let op = match g.below(10) {
                    0..=4 => Op::Add {
                        delta: g.below(1 << 20),
                    },
                    5..=7 => Op::Get,
                    _ => Op::Transfer {
                        dst: g.below(self.keys as u64),
                        amount: g.below(1 << 20),
                    },
                };
                Request { key, op }
            })
            .collect()
    }

    /// Initial store contents, indexed by global key.
    pub fn initial_store(&self) -> Vec<u64> {
        let mut g = SplitMix64::derive(self.seed, 0x51012e);
        (0..self.keys).map(|_| g.below(1 << 30)).collect()
    }

    /// Sequential reference: the final store after applying every request
    /// in arrival order. Because all mutations commute (wrapping adds),
    /// every correct parallel/sharded execution must end here too.
    pub fn expected_store(&self) -> Vec<u64> {
        let mut store = self.initial_store();
        for r in self.request_stream() {
            match r.op {
                Op::Add { delta } => {
                    store[r.key as usize] = store[r.key as usize].wrapping_add(delta);
                }
                Op::Get => {}
                Op::Transfer { dst, amount } => {
                    store[r.key as usize] = store[r.key as usize].wrapping_sub(amount);
                    store[dst as usize] = store[dst as usize].wrapping_add(amount);
                }
            }
        }
        store
    }
}

/// One shard domain's slice of the server: the keys it owns and its
/// per-epoch request load (requests routed by *source* key).
#[derive(Clone, Debug)]
pub struct DomainPlan {
    /// The domain's index among `shards`.
    pub domain: usize,
    /// Owned global keys, ascending; position is the local store index.
    pub keys: Vec<u64>,
    /// Requests per epoch, in global arrival order within each epoch.
    pub epochs: Vec<Vec<Request>>,
}

impl DomainPlan {
    /// Partitions the spec's key space and request stream across `shards`
    /// domains with the deterministic `assign` map (global key → domain).
    ///
    /// # Panics
    ///
    /// Panics if `assign` returns a domain `>= shards`.
    pub fn build(
        spec: &ServerSpec,
        shards: usize,
        assign: &dyn Fn(u64) -> usize,
    ) -> Vec<DomainPlan> {
        let mut plans: Vec<DomainPlan> = (0..shards)
            .map(|d| DomainPlan {
                domain: d,
                keys: Vec::new(),
                epochs: vec![Vec::new(); spec.epochs],
            })
            .collect();
        for k in 0..spec.keys as u64 {
            let d = assign(k);
            assert!(d < shards, "shard map sent key {k} to domain {d}");
            plans[d].keys.push(k);
        }
        // Epoch e takes the e-th near-equal chunk of the global stream, so
        // every domain agrees on which requests belong to which epoch.
        let stream = spec.request_stream();
        for (i, r) in stream.iter().enumerate() {
            let (d, e) = (assign(r.key), epoch_of(i, stream.len(), spec.epochs));
            plans[d].epochs[e].push(*r);
        }
        plans
    }
}

fn epoch_of(i: usize, n: usize, epochs: usize) -> usize {
    (0..epochs)
        .find(|&e| {
            let (s, t) = partition(n, epochs, e);
            (s..t).contains(&i)
        })
        .unwrap_or(epochs - 1)
}

/// Host-side cross-domain credit exchange, called by each domain driver
/// between epochs.
///
/// The driver hands over the `(global key, amount)` credits its workers
/// debited toward other domains this epoch, and receives the credits
/// destined for *its* keys — already in canonical `(source domain, outbox
/// order)` order, which is deterministic because each source outbox is
/// filled under its domain's token. Implementations must block until
/// every sibling domain of the same epoch has arrived (the rendezvous
/// barrier); [`LocalExchange`] is the trivial single-domain case.
pub trait Exchange: Send + Sync {
    /// Exchanges `outgoing` credits of `domain` at the end of `epoch` for
    /// the credits addressed to it.
    fn exchange(&self, domain: usize, epoch: usize, outgoing: Vec<(u64, u64)>) -> Vec<(u64, u64)>;
}

/// Single-domain [`Exchange`]: every credit comes straight back to its
/// sender (all keys are local), preserving outbox order.
pub struct LocalExchange;

impl Exchange for LocalExchange {
    fn exchange(&self, _: usize, _: usize, outgoing: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        outgoing
    }
}

/// A prepared per-domain server instance: heap addresses, sync objects
/// and the key index, kept for post-run inspection.
#[derive(Clone)]
pub struct DomainServer {
    spec: ServerSpec,
    /// Local store base (one cell per owned key).
    store: usize,
    /// Per-worker response accumulators.
    resp: usize,
    /// `[processed]` control cell.
    ctrl: usize,
    workers: usize,
    /// Owned global keys (local index → global key).
    keys: Arc<Vec<u64>>,
}

impl DomainServer {
    /// Heap pages one domain owning `nkeys` keys with `workers` workers
    /// needs. Mirrors the layout `prepare` builds.
    pub fn heap_pages(spec: &ServerSpec, nkeys: usize, workers: usize) -> usize {
        let mut l = Layout::new();
        Self::layout(&mut l, spec, nkeys, workers.max(1));
        // The ShmQueue reservation prepare() makes on the same layout.
        l.cells_page_aligned(4 + spec.queue_cap);
        l.pages()
    }

    fn layout(
        l: &mut Layout,
        spec: &ServerSpec,
        nkeys: usize,
        workers: usize,
    ) -> (usize, usize, usize, usize) {
        let store = l.cells_page_aligned(nkeys.max(1));
        let resp = l.cells_page_aligned(workers);
        let ctrl = l.cells_page_aligned(1);
        let outbox = l.cells_page_aligned(1 + 2 * spec.requests.max(1));
        (store, resp, ctrl, outbox)
    }

    /// Builds one domain's server against a fresh runtime: lays out and
    /// initializes the heap, creates the queue, stripes and barriers, and
    /// returns the driver job plus this handle.
    pub fn prepare(
        rt: &mut dyn Runtime,
        spec: &ServerSpec,
        plan: &DomainPlan,
        workers: usize,
        exchange: Arc<dyn Exchange>,
    ) -> (Job, DomainServer) {
        let workers = workers.max(1);
        let nkeys = plan.keys.len();
        let mut l = Layout::new();
        let (store, resp, ctrl, outbox) = Self::layout(&mut l, spec, nkeys, workers);
        let queue = ShmQueue::create(rt, &mut l, spec.queue_cap);
        queue.init(rt);

        let stripes: Arc<Vec<MutexId>> =
            Arc::new((0..spec.stripes).map(|_| rt.create_mutex()).collect());
        let outbox_m = rt.create_mutex();
        let start_b: BarrierId = rt.create_barrier(workers + 1);
        let end_b: BarrierId = rt.create_barrier(workers + 1);

        // Initial store: the owned slice of the global initial image.
        let init = spec.initial_store();
        let local_init: Vec<u64> = plan.keys.iter().map(|&k| init[k as usize]).collect();
        if !local_init.is_empty() {
            rt.init_u64_slice(store, &local_init);
        }
        rt.init_u64(ctrl, 0);
        rt.init_u64(outbox, 0);

        // Global key → local store index; u32::MAX marks foreign keys.
        let mut key_map = vec![u32::MAX; spec.keys];
        for (i, &k) in plan.keys.iter().enumerate() {
            key_map[k as usize] = i as u32;
        }
        let key_map: Arc<Vec<u32>> = Arc::new(key_map);

        let epoch_stream: Arc<Vec<Vec<u64>>> = Arc::new(
            plan.epochs
                .iter()
                .map(|reqs| reqs.iter().map(encode_request).collect())
                .collect(),
        );

        let nstripes = spec.stripes;
        let epochs = spec.epochs;
        let domain = plan.domain;
        let km_workers = Arc::clone(&key_map);
        let job: Job = Box::new(move |ctx| {
            let kids: Vec<Tid> = (0..workers)
                .map(|w| {
                    let km = Arc::clone(&km_workers);
                    let st = Arc::clone(&stripes);
                    ctx.spawn(Box::new(move |c| {
                        serve(
                            c, w, epochs, queue, store, resp, ctrl, outbox, outbox_m, start_b,
                            end_b, &km, &st,
                        );
                    }))
                })
                .collect();
            for e in 0..epochs {
                ctx.barrier_wait(start_b);
                for &v in &epoch_stream[e] {
                    queue.push(ctx, v);
                }
                for _ in 0..workers {
                    queue.push(ctx, EPOCH_MARKER);
                }
                ctx.barrier_wait(end_b);
                // Rendezvous: drain this epoch's outgoing credits, swap
                // them through the exchange, apply what came back. The
                // pool is parked at the next start barrier, so the driver
                // mutates the store alone — still under its stripe locks,
                // so the schedule stays uniform.
                let n = ctx.ld_u64(outbox) as usize;
                let outgoing: Vec<(u64, u64)> = (0..n)
                    .map(|i| {
                        (
                            ctx.ld_u64(outbox + 8 + 16 * i),
                            ctx.ld_u64(outbox + 16 + 16 * i),
                        )
                    })
                    .collect();
                ctx.st_u64(outbox, 0);
                for (key, amount) in exchange.exchange(domain, e, outgoing) {
                    let li = km_workers[key as usize];
                    assert!(li != u32::MAX, "credit for foreign key {key}");
                    let m = stripes[li as usize % nstripes];
                    ctx.mutex_lock(m);
                    let v = ctx.ld_u64(store + 8 * li as usize);
                    ctx.st_u64(store + 8 * li as usize, v.wrapping_add(amount));
                    ctx.mutex_unlock(m);
                }
            }
            for k in kids {
                ctx.join(k);
            }
        });

        let srv = DomainServer {
            spec: *spec,
            store,
            resp,
            ctrl,
            workers,
            keys: Arc::new(plan.keys.clone()),
        };
        (job, srv)
    }

    /// Final `(global key, value)` pairs of this domain's store slice, in
    /// ascending key order.
    pub fn final_kv(&self, rt: &dyn Runtime) -> Vec<(u64, u64)> {
        let mut vals = vec![0u64; self.keys.len()];
        if !vals.is_empty() {
            rt.final_u64_slice(self.store, &mut vals);
        }
        self.keys.iter().copied().zip(vals).collect()
    }

    /// Final per-worker `Get` response accumulators.
    pub fn final_resp(&self, rt: &dyn Runtime) -> Vec<u64> {
        let mut vals = vec![0u64; self.workers];
        rt.final_u64_slice(self.resp, &mut vals);
        vals
    }

    /// Requests this domain processed (its share of `spec.requests`).
    pub fn processed(&self, rt: &dyn Runtime) -> u64 {
        let mut v = [0u64; 1];
        rt.final_u64_slice(self.ctrl, &mut v);
        v[0]
    }

    /// Folds the domain's full observable output — store, responses,
    /// processed count — into one digest.
    pub fn output_hash(&self, rt: &dyn Runtime) -> u64 {
        let mut h = Fnv1a::new();
        for (k, v) in self.final_kv(rt) {
            h.update(&k.to_le_bytes());
            h.update(&v.to_le_bytes());
        }
        for r in self.final_resp(rt) {
            h.update(&r.to_le_bytes());
        }
        h.update(&self.processed(rt).to_le_bytes());
        h.digest()
    }

    /// The spec this domain was prepared with.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }
}

/// One pool worker: pop until the epoch marker, serve each request, meet
/// the pool at the end barrier, repeat for every epoch.
#[allow(clippy::too_many_arguments)]
fn serve(
    c: &mut dyn ThreadCtx,
    w: usize,
    epochs: usize,
    queue: ShmQueue,
    store: usize,
    resp: usize,
    ctrl: usize,
    outbox: usize,
    outbox_m: MutexId,
    start_b: BarrierId,
    end_b: BarrierId,
    key_map: &[u32],
    stripes: &[MutexId],
) {
    for _ in 0..epochs {
        c.barrier_wait(start_b);
        loop {
            let v = queue.pop(c);
            if v == EPOCH_MARKER {
                break;
            }
            let r = decode_request(v);
            let li = key_map[r.key as usize];
            debug_assert!(li != u32::MAX, "request routed to wrong domain");
            let cell = store + 8 * li as usize;
            let m = stripes[li as usize % stripes.len()];
            c.tick(120); // simulated request-handling work
            match r.op {
                Op::Add { delta } => {
                    c.mutex_lock(m);
                    let v = c.ld_u64(cell);
                    c.st_u64(cell, v.wrapping_add(delta));
                    c.mutex_unlock(m);
                }
                Op::Get => {
                    c.mutex_lock(m);
                    let v = c.ld_u64(cell);
                    c.mutex_unlock(m);
                    let acc = resp + 8 * w;
                    let old = c.ld_u64(acc);
                    c.st_u64(acc, old.wrapping_add(mix64(v ^ r.key)));
                }
                Op::Transfer { dst, amount } => {
                    c.mutex_lock(m);
                    let v = c.ld_u64(cell);
                    c.st_u64(cell, v.wrapping_sub(amount));
                    c.mutex_unlock(m);
                    let dli = key_map[dst as usize];
                    if dli != u32::MAX {
                        // Local credit: apply immediately.
                        let dcell = store + 8 * dli as usize;
                        let dm = stripes[dli as usize % stripes.len()];
                        c.mutex_lock(dm);
                        let v = c.ld_u64(dcell);
                        c.st_u64(dcell, v.wrapping_add(amount));
                        c.mutex_unlock(dm);
                    } else {
                        // Foreign credit: queue for the epoch rendezvous.
                        c.mutex_lock(outbox_m);
                        let n = c.ld_u64(outbox) as usize;
                        c.st_u64(outbox + 8 + 16 * n, dst);
                        c.st_u64(outbox + 16 + 16 * n, amount);
                        c.st_u64(outbox, n as u64 + 1);
                        c.mutex_unlock(outbox_m);
                    }
                }
            }
            c.fetch_add_u64(ctrl, 1);
        }
        c.barrier_wait(end_b);
    }
}

/// The registry workload: the server with every key in one root domain.
pub struct DmtServer;

impl Workload for DmtServer {
    fn name(&self) -> &'static str {
        "dmt_server"
    }

    fn suite(&self) -> &'static str {
        "server"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let spec = ServerSpec::of(p);
        DomainServer::heap_pages(&spec, spec.keys, p.threads.max(1))
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let spec = ServerSpec::of(p);
        let plan = DomainPlan::build(&spec, 1, &|_| 0).remove(0);
        let expect = spec.expected_store();
        let total = spec.requests as u64;
        let (job, srv) =
            DomainServer::prepare(rt, &spec, &plan, p.threads.max(1), Arc::new(LocalExchange));
        let validate = Box::new(move |rt: &dyn Runtime| {
            let store_ok = srv
                .final_kv(rt)
                .iter()
                .all(|&(k, v)| v == expect[k as usize]);
            let processed = srv.processed(rt);
            Validation {
                output_hash: srv.output_hash(rt),
                matches_reference: store_ok && processed == total,
            }
        });
        Prepared { job, validate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_roundtrips() {
        let spec = ServerSpec::of(&Params::default());
        for r in spec.request_stream() {
            assert_eq!(decode_request(encode_request(&r)), r);
            assert_ne!(encode_request(&r) >> 62, 3, "collides with control");
        }
    }

    #[test]
    fn stream_is_a_pure_function_of_the_spec() {
        let spec = ServerSpec::of(&Params::new(4, 2, 99));
        assert_eq!(spec.request_stream(), spec.request_stream());
        assert_eq!(spec.expected_store(), spec.expected_store());
        let other = ServerSpec::of(&Params::new(4, 2, 100));
        assert_ne!(spec.request_stream(), other.request_stream());
    }

    #[test]
    fn plans_partition_keys_and_requests_exactly() {
        let spec = ServerSpec::of(&Params::default());
        let plans = DomainPlan::build(&spec, 4, &|k| (k % 4) as usize);
        let keys: usize = plans.iter().map(|p| p.keys.len()).sum();
        let reqs: usize = plans
            .iter()
            .flat_map(|p| p.epochs.iter())
            .map(Vec::len)
            .sum();
        assert_eq!(keys, spec.keys);
        assert_eq!(reqs, spec.requests);
        for p in &plans {
            assert!(p.keys.windows(2).all(|w| w[0] < w[1]), "keys not sorted");
            assert_eq!(p.epochs.len(), spec.epochs);
        }
    }

    #[test]
    fn transfers_conserve_the_store_total() {
        // Wrapping sum over the whole store is invariant under transfers:
        // the expected store's total equals initial total plus all Adds.
        let spec = ServerSpec::of(&Params::default());
        let add_total: u64 = spec
            .request_stream()
            .iter()
            .filter_map(|r| match r.op {
                Op::Add { delta } => Some(delta),
                _ => None,
            })
            .fold(0u64, |a, d| a.wrapping_add(d));
        let initial: u64 = spec
            .initial_store()
            .iter()
            .fold(0u64, |a, &v| a.wrapping_add(v));
        let expected: u64 = spec
            .expected_store()
            .iter()
            .fold(0u64, |a, &v| a.wrapping_add(v));
        assert_eq!(expected, initial.wrapping_add(add_total));
    }
}
