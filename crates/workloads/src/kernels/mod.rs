//! Kernel implementations, grouped by originating suite.

pub mod parsec;
pub mod phoenix;
pub mod splash;

use dmt_api::{Job, ThreadCtx, Tid};

use crate::spec::Workload;

/// All 20 workloads: the paper's 19 benchmarks in presentation order,
/// plus the `dmt_server` request-serving workload.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        // Phoenix
        Box::new(phoenix::Histogram),
        Box::new(phoenix::LinearRegression),
        Box::new(phoenix::StringMatch),
        Box::new(phoenix::MatrixMultiply),
        Box::new(phoenix::Pca),
        Box::new(phoenix::Kmeans),
        Box::new(phoenix::WordCount),
        Box::new(phoenix::ReverseIndex),
        // PARSEC
        Box::new(parsec::Ferret),
        Box::new(parsec::Dedup),
        Box::new(parsec::Canneal),
        Box::new(parsec::Streamcluster),
        Box::new(parsec::Swaptions),
        // SPLASH-2
        Box::new(splash::OceanCp),
        Box::new(splash::LuCb),
        Box::new(splash::LuNcb),
        Box::new(splash::WaterNsquared),
        Box::new(splash::WaterSpatial),
        Box::new(splash::Radix),
        // Server
        Box::new(crate::server::DmtServer),
    ]
}

/// Spawns `n` workers built by `make` and joins them all — the fork-join
/// skeleton most kernels use.
pub(crate) fn fork_join(ctx: &mut dyn ThreadCtx, n: usize, make: impl Fn(usize) -> Job) {
    let kids: Vec<Tid> = (0..n).map(|w| ctx.spawn(make(w))).collect();
    for k in kids {
        ctx.join(k);
    }
}
