//! PARSEC kernels: pipeline programs (ferret, dedup) and barrier-heavy
//! data-parallel programs (canneal, streamcluster), plus the embarrassingly
//! parallel swaptions.

use dmt_api::{MemExt, Runtime, RuntimeMemExt};

use crate::kernels::fork_join;
use crate::layout::{partition, Layout};
use crate::queue::{ShmQueue, PILL};
use crate::rng::{mix64, SplitMix64};
use crate::spec::{Params, Prepared, Validation, Workload};

// ------------------------------------------------------------------ ferret

/// Content-similarity pipeline: a fast loader stage performing very many
/// short queue operations (the paper's `ferret_1`) feeding two pools of
/// heavier stages, with the main thread as ranking sink (`ferret_n`
/// oscillates between long chunks and condition-variable waits).
pub struct Ferret;

const FERRET_RANK_SALT: u64 = 0xfe44e7;

fn ferret_shape(threads: usize) -> (usize, usize) {
    // loader = 1, sink = main; split the rest between the two middle pools.
    let rest = threads.saturating_sub(2).max(2);
    let seg = rest / 2;
    (seg.max(1), (rest - seg).max(1))
}

const FERRET_PAYLOAD: usize = 512; // cells per item (4 KiB — an image segment)
const FERRET_SEG_SALT: u64 = 0x5e95e9;

impl Workload for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn suite(&self) -> &'static str {
        "parsec"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let items = 192 * p.scale as usize;
        let mut l = Layout::new();
        for _ in 0..3 {
            l.cells_page_aligned(4 + 16);
        }
        l.cells_page_aligned(4);
        l.cells_page_aligned(items * FERRET_PAYLOAD);
        l.pages() + 2
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let items = 192 * p.scale as usize;
        let (nseg, nrank) = ferret_shape(p.threads);
        let mut l = Layout::new();
        let q1 = ShmQueue::create(rt, &mut l, 16);
        let q2 = ShmQueue::create(rt, &mut l, 16);
        let q3 = ShmQueue::create(rt, &mut l, 16);
        let counters = l.cells_page_aligned(4); // [seg_done, rank_done, out_sum]
                                                // Per-item image payloads flow through shared memory, so every
                                                // stage's commit carries real pages — the cost profile that makes
                                                // ferret hard for page-based DMT systems.
        let payloads = l.cells_page_aligned(items * FERRET_PAYLOAD);
        let seg_done_lock = rt.create_mutex();
        let rank_done_lock = rt.create_mutex();
        for q in [&q1, &q2, &q3] {
            q.init(rt);
        }

        let seed = p.seed;
        let gen_cell = move |i: u64, j: u64| mix64(seed ^ mix64(i * 1_000_003 + j));
        // Reference: the full pipeline applied sequentially.
        let expect: u64 = (0..items as u64)
            .map(|i| {
                // Segmentation stage transform, then the rank fold.
                let mut rank = 0u64;
                for j in 0..FERRET_PAYLOAD as u64 {
                    let seg = mix64(gen_cell(i, j) ^ FERRET_SEG_SALT);
                    rank = mix64(rank ^ seg);
                }
                mix64(rank ^ FERRET_RANK_SALT)
            })
            .fold(0u64, |a, b| a.wrapping_add(b));

        let job: dmt_api::Job = Box::new(move |ctx| {
            // Stage 1: loader (high-rate short critical sections).
            ctx.spawn(Box::new(move |c| {
                for i in 0..items as u64 {
                    let base = payloads + 8 * (i as usize * FERRET_PAYLOAD);
                    for j in 0..FERRET_PAYLOAD as u64 {
                        c.st_u64(base + 8 * j as usize, gen_cell(i, j));
                    }
                    c.tick(2_500);
                    q1.push(c, i);
                }
                q1.push(c, PILL);
            }));
            // Stage 2 pool: segmentation (rewrites the payload in place).
            for _ in 0..nseg {
                ctx.spawn(Box::new(move |c| {
                    loop {
                        let i = q1.pop(c);
                        if i == PILL {
                            break;
                        }
                        let base = payloads + 8 * (i as usize * FERRET_PAYLOAD);
                        for j in 0..FERRET_PAYLOAD {
                            let v = c.ld_u64(base + 8 * j);
                            c.st_u64(base + 8 * j, mix64(v ^ FERRET_SEG_SALT));
                        }
                        c.tick(150_000);
                        q2.push(c, i);
                    }
                    // Last segmenter poisons the next stage.
                    c.mutex_lock(seg_done_lock);
                    let done = c.fetch_add_u64(counters, 1);
                    c.mutex_unlock(seg_done_lock);
                    if done == nseg as u64 {
                        q2.push(c, PILL);
                    }
                }));
            }
            // Stage 3 pool: ranking (reads the payload, emits one rank).
            for _ in 0..nrank {
                ctx.spawn(Box::new(move |c| {
                    loop {
                        let i = q2.pop(c);
                        if i == PILL {
                            break;
                        }
                        let base = payloads + 8 * (i as usize * FERRET_PAYLOAD);
                        let mut rank = 0u64;
                        for j in 0..FERRET_PAYLOAD {
                            rank = mix64(rank ^ c.ld_u64(base + 8 * j));
                        }
                        c.tick(300_000);
                        q3.push(c, mix64(rank ^ FERRET_RANK_SALT));
                    }
                    c.mutex_lock(rank_done_lock);
                    let done = c.fetch_add_u64(counters + 8, 1);
                    c.mutex_unlock(rank_done_lock);
                    if done == nrank as u64 {
                        q3.push(c, PILL);
                    }
                }));
            }
            // Sink: the main thread aggregates (order-independent sum).
            let mut sum = 0u64;
            let mut seen = 0;
            while seen < items {
                let v = q3.pop(ctx);
                if v == PILL {
                    break;
                }
                sum = sum.wrapping_add(v);
                seen += 1;
                ctx.tick(5_000);
            }
            ctx.st_u64(counters + 16, sum);
            // Threads drain on the pills; run() waits for them all.
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let got = rt.final_u64(counters + 16);
            Validation {
                output_hash: got,
                matches_reference: got == expect,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------------- dedup

/// Deduplicating compression pipeline: loader → worker pool with hashed
/// bucket locks → sink counting unique chunks.
pub struct Dedup;

const DD_BUCKETS: usize = 32;
const DD_SLOTS: usize = 64;

const DD_PAYLOAD: usize = 256; // cells per chunk (2 KiB)

impl Workload for Dedup {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn suite(&self) -> &'static str {
        "parsec"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let items = 384 * p.scale as usize;
        let mut l = Layout::new();
        for _ in 0..2 {
            l.cells_page_aligned(4 + 16);
        }
        l.cells_page_aligned(DD_BUCKETS * DD_SLOTS);
        l.cells_page_aligned(4);
        l.cells_page_aligned(items * DD_PAYLOAD);
        l.pages() + 2
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let items = 384 * p.scale as usize;
        let distinct = 96u64;
        let workers = p.threads.saturating_sub(2).max(1);
        let mut l = Layout::new();
        let q1 = ShmQueue::create(rt, &mut l, 16);
        let q3 = ShmQueue::create(rt, &mut l, 16);
        let table = l.cells_page_aligned(DD_BUCKETS * DD_SLOTS);
        let counters = l.cells_page_aligned(4); // [workers_done, uniq, digest]
                                                // Chunk contents live in shared memory, one region per item, so
                                                // fingerprinting reads and the loader's writes move real pages.
        let payloads = l.cells_page_aligned(items * DD_PAYLOAD);
        let done_lock = rt.create_mutex();
        let bucket_locks: Vec<_> = (0..DD_BUCKETS).map(|_| rt.create_mutex()).collect();
        q1.init(rt);
        q3.init(rt);

        let seed = p.seed;
        let chunk_value = move |i: u64| {
            let mut g = SplitMix64::derive(seed, 10 + i);
            g.below(distinct) + 1
        };
        // Chunk content is a function of its value: duplicates share bytes.
        let content_cell = move |val: u64, j: u64| mix64(val.wrapping_mul(0x9e37) ^ j);
        let fingerprint = move |val: u64| {
            let mut h = 0u64;
            for j in 0..DD_PAYLOAD as u64 {
                h = mix64(h ^ content_cell(val, j));
            }
            h
        };

        let mut seen = std::collections::HashSet::new();
        let mut edigest = 0u64;
        for i in 0..items as u64 {
            let v = chunk_value(i);
            if seen.insert(v) {
                edigest = edigest.wrapping_add(mix64(fingerprint(v)));
            }
        }
        let euniq = seen.len() as u64;

        let job: dmt_api::Job = Box::new(move |ctx| {
            // Loader: writes each chunk's content and enqueues its index.
            ctx.spawn(Box::new(move |c| {
                for i in 0..items as u64 {
                    let val = chunk_value(i);
                    let base = payloads + 8 * (i as usize * DD_PAYLOAD);
                    for j in 0..DD_PAYLOAD as u64 {
                        c.st_u64(base + 8 * j as usize, content_cell(val, j));
                    }
                    c.tick(6_000);
                    q1.push(c, i);
                }
                q1.push(c, PILL);
            }));
            // Dedup + compress pool.
            for _ in 0..workers {
                let locks = bucket_locks.clone();
                ctx.spawn(Box::new(move |c| {
                    loop {
                        let i = q1.pop(c);
                        if i == PILL {
                            break;
                        }
                        // Fingerprint the chunk content.
                        let base = payloads + 8 * (i as usize * DD_PAYLOAD);
                        let mut fp = 0u64;
                        for j in 0..DD_PAYLOAD {
                            fp = mix64(fp ^ c.ld_u64(base + 8 * j));
                        }
                        c.tick(60_000);
                        let b = (mix64(fp) as usize) % DD_BUCKETS;
                        let tbase = table + 8 * (b * DD_SLOTS);
                        let mut fresh = false;
                        c.mutex_lock(locks[b]);
                        let mut slot = 0;
                        loop {
                            assert!(slot < DD_SLOTS, "dedup bucket overflow");
                            let key = c.ld_u64(tbase + 8 * slot);
                            if key == fp {
                                break;
                            }
                            if key == 0 {
                                c.st_u64(tbase + 8 * slot, fp);
                                fresh = true;
                                break;
                            }
                            slot += 1;
                        }
                        c.mutex_unlock(locks[b]);
                        if fresh {
                            c.tick(250_000); // compress the new chunk
                            q3.push(c, fp);
                        }
                    }
                    c.mutex_lock(done_lock);
                    let done = c.fetch_add_u64(counters, 1);
                    c.mutex_unlock(done_lock);
                    if done == workers as u64 {
                        q3.push(c, PILL);
                    }
                }));
            }
            // Sink: the main thread writes the archive summary.
            let mut uniq = 0u64;
            let mut digest = 0u64;
            loop {
                let v = q3.pop(ctx);
                if v == PILL {
                    break;
                }
                uniq += 1;
                digest = digest.wrapping_add(mix64(v));
                ctx.tick(8_000);
            }
            ctx.st_u64(counters + 8, uniq);
            ctx.st_u64(counters + 16, digest);
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let uniq = rt.final_u64(counters + 8);
            let digest = rt.final_u64(counters + 16);
            Validation {
                output_hash: digest,
                matches_reference: uniq == euniq && digest == edigest,
            }
        });
        Prepared { job, validate }
    }
}

// ----------------------------------------------------------------- canneal

/// Simulated-annealing element swaps: barrier per temperature step, with a
/// large scattered write footprint (the paper's page-propagation stress and
/// Figure 12 memory-churn case). Swap candidates are partitioned by
/// residue class, so the result is exact while the page-level conflict rate
/// stays high.
pub struct Canneal;

const CN_ITERS: usize = 5;
const CN_SWAPS: usize = 192;

impl Workload for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn suite(&self) -> &'static str {
        "parsec"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let e = 16 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(e);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let e = 16 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        let elems = l.cells(e);
        let threads = p.threads.max(1);
        let bar = rt.create_barrier(threads);

        let seed = p.seed;
        let mut g = SplitMix64::derive(seed, 11);
        let mut init = vec![0u64; e];
        g.fill(&mut init);
        rt.init_u64_slice(elems, &init);

        let swaps = CN_SWAPS * p.scale as usize;
        // Sequential reference replaying the same per-(iter, worker) swap
        // streams; classes are disjoint so worker order is irrelevant.
        let mut expect = init;
        for it in 0..CN_ITERS {
            for w in 0..threads {
                let mut g = SplitMix64::derive(seed, 12 + (it * 64 + w) as u64);
                let class = e / threads;
                for _ in 0..swaps {
                    let i = (g.below(class as u64) as usize) * threads + w;
                    let j = (g.below(class as u64) as usize) * threads + w;
                    expect.swap(i.min(e - 1), j.min(e - 1));
                }
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let class = e / threads;
                    for it in 0..CN_ITERS {
                        let mut g = SplitMix64::derive(seed, 12 + (it * 64 + w) as u64);
                        for _ in 0..swaps {
                            let i = ((g.below(class as u64) as usize) * threads + w).min(e - 1);
                            let j = ((g.below(class as u64) as usize) * threads + w).min(e - 1);
                            let a = c.ld_u64(elems + 8 * i);
                            let b = c.ld_u64(elems + 8 * j);
                            c.tick(1_600); // routing-cost evaluation
                            c.st_u64(elems + 8 * i, b);
                            c.st_u64(elems + 8 * j, a);
                        }
                        c.barrier_wait(bar);
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = vec![0u64; e];
            rt.final_u64_slice(elems, &mut got);
            let mut h = dmt_api::Fnv1a::new();
            for v in &got {
                h.update_u64(*v);
            }
            Validation {
                output_hash: h.digest(),
                matches_reference: got == expect,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------ streamcluster

/// Iterative clustering: assignment scan + cost reduction + barrier, with
/// thread 0 recentering between iterations.
pub struct Streamcluster;

const SC_D: usize = 4;
const SC_K: usize = 8;
const SC_ITERS: usize = 4;

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn suite(&self) -> &'static str {
        "parsec"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = 4096 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(n * SC_D + n + SC_K * SC_D + 2);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = 4096 * p.scale as usize;
        let mut l = Layout::new();
        let pts = l.cells(n * SC_D);
        let assign = l.cells(n);
        let centers = l.cells(SC_K * SC_D);
        let cost = l.cells_page_aligned(1);
        let threads = p.threads.max(1);
        let bar = rt.create_barrier(threads);
        let cost_lock = rt.create_mutex();

        let mut g = SplitMix64::derive(p.seed, 13);
        let pv: Vec<f64> = (0..n * SC_D).map(|_| g.f64() * 50.0).collect();
        rt.init_f64_slice(pts, &pv);
        let cv: Vec<f64> = (0..SC_K * SC_D)
            .map(|i| pv[(i / SC_D) * (n / SC_K) * SC_D + i % SC_D])
            .collect();
        rt.init_f64_slice(centers, &cv);

        // Reference.
        let mut ec = cv.clone();
        let mut eassign = vec![0u64; n];
        for _ in 0..SC_ITERS {
            for i in 0..n {
                let mut best = 0;
                let mut bd = f64::INFINITY;
                for k in 0..SC_K {
                    let mut d2 = 0.0;
                    for d in 0..SC_D {
                        let diff = pv[i * SC_D + d] - ec[k * SC_D + d];
                        d2 += diff * diff;
                    }
                    if d2 < bd {
                        bd = d2;
                        best = k;
                    }
                }
                eassign[i] = best as u64;
            }
            let mut acc = vec![0.0f64; SC_K * SC_D];
            let mut cnt = [0u64; SC_K];
            for i in 0..n {
                let k = eassign[i] as usize;
                cnt[k] += 1;
                for d in 0..SC_D {
                    acc[k * SC_D + d] += pv[i * SC_D + d];
                }
            }
            for k in 0..SC_K {
                if cnt[k] > 0 {
                    for d in 0..SC_D {
                        ec[k * SC_D + d] = acc[k * SC_D + d] / cnt[k] as f64;
                    }
                }
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(n, threads, w);
                    for _ in 0..SC_ITERS {
                        let mut cent = vec![0.0f64; SC_K * SC_D];
                        c.ld_f64_slice(centers, &mut cent);
                        let mut local_cost = 0.0;
                        for i in s..e {
                            let mut pt = [0.0f64; SC_D];
                            c.ld_f64_slice(pts + 8 * i * SC_D, &mut pt);
                            let mut best = 0usize;
                            let mut bd = f64::INFINITY;
                            for k in 0..SC_K {
                                let mut d2 = 0.0;
                                for d in 0..SC_D {
                                    let diff = pt[d] - cent[k * SC_D + d];
                                    d2 += diff * diff;
                                }
                                if d2 < bd {
                                    bd = d2;
                                    best = k;
                                }
                            }
                            c.tick((14 * SC_K * SC_D) as u64);
                            c.st_u64(assign + 8 * i, best as u64);
                            local_cost += bd;
                        }
                        c.mutex_lock(cost_lock);
                        c.add_f64(cost, local_cost);
                        c.mutex_unlock(cost_lock);
                        c.barrier_wait(bar);
                        if w == 0 {
                            // Recenter.
                            let mut acc = vec![0.0f64; SC_K * SC_D];
                            let mut cnt = [0u64; SC_K];
                            for i in 0..n {
                                let k = c.ld_u64(assign + 8 * i) as usize;
                                cnt[k] += 1;
                                for d in 0..SC_D {
                                    acc[k * SC_D + d] += c.ld_f64(pts + 8 * (i * SC_D + d));
                                }
                            }
                            c.tick((8 * n) as u64);
                            for k in 0..SC_K {
                                if cnt[k] > 0 {
                                    for d in 0..SC_D {
                                        c.st_f64(
                                            centers + 8 * (k * SC_D + d),
                                            acc[k * SC_D + d] / cnt[k] as f64,
                                        );
                                    }
                                }
                            }
                        }
                        c.barrier_wait(bar);
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = vec![0u64; n];
            rt.final_u64_slice(assign, &mut got);
            Validation {
                output_hash: hash_cells(rt, assign, n),
                matches_reference: got == eassign,
            }
        });
        Prepared { job, validate }
    }
}

fn hash_cells(rt: &dyn Runtime, addr: usize, cells: usize) -> u64 {
    let mut buf = vec![0u8; cells * 8];
    rt.final_read(addr, &mut buf);
    dmt_api::Fnv1a::hash(&buf)
}

// --------------------------------------------------------------- swaptions

/// Monte-Carlo swaption pricing: embarrassingly parallel, compute bound.
pub struct Swaptions;

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn suite(&self) -> &'static str {
        "parsec"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let s = p.threads.max(1) * 2;
        let mut l = Layout::new();
        l.cells(s);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let threads = p.threads.max(1);
        let swaptions = threads * 2;
        let trials = 16384 * p.scale as usize;
        let mut l = Layout::new();
        let out = l.cells(swaptions);
        let _ = rt; // no sync objects needed

        let seed = p.seed;
        let price = move |s: usize| -> f64 {
            let mut g = SplitMix64::derive(seed, 14 + s as u64);
            let mut acc = 0.0;
            for _ in 0..trials {
                let r = g.f64();
                acc += (r * 1.07 - 0.035).max(0.0);
            }
            acc / trials as f64
        };
        let expect: Vec<f64> = (0..swaptions).map(price).collect();

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(swaptions, threads, w);
                    for sw in s..e {
                        let mut g = SplitMix64::derive(seed, 14 + sw as u64);
                        let mut acc = 0.0;
                        for _ in 0..trials {
                            let r = g.f64();
                            acc += (r * 1.07 - 0.035).max(0.0);
                            c.tick(110);
                        }
                        c.st_f64(out + 8 * sw, acc / trials as f64);
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let ok = (0..swaptions).all(|s| rt.final_f64(out + 8 * s) == expect[s]);
            Validation {
                output_hash: hash_cells(rt, out, swaptions),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}
