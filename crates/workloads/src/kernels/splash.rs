//! SPLASH-2 kernels: barrier-per-step scientific codes.
//!
//! `ocean_cp`, `lu_cb`, `lu_ncb` and `radix` are the paper's barrier-heavy
//! programs (where the §4.2 parallel barrier commit matters most);
//! `water_nsquared` adds per-molecule locks with very short critical
//! sections (the §6 scalability pathology); `lu_cb` vs `lu_ncb` contrast
//! contiguous against non-contiguous write placement — the latter's
//! interleaved rows conflict at page granularity on every step.

use dmt_api::{Fnv1a, MemExt, Runtime, RuntimeMemExt};

use crate::kernels::fork_join;
use crate::layout::{partition, Layout};
use crate::rng::SplitMix64;
use crate::spec::{Params, Prepared, Validation, Workload};

fn hash_cells(rt: &dyn Runtime, addr: usize, cells: usize) -> u64 {
    let mut buf = vec![0u8; cells * 8];
    rt.final_read(addr, &mut buf);
    Fnv1a::hash(&buf)
}

// ---------------------------------------------------------------- ocean_cp

/// Jacobi relaxation on a square grid with row-band partitioning and one
/// barrier per sweep; band edges share pages, so every sweep merges.
pub struct OceanCp;

const OC_ITERS: usize = 8;

fn oc_dim(p: &Params) -> usize {
    64 * (p.scale as usize).min(4)
}

impl Workload for OceanCp {
    fn name(&self) -> &'static str {
        "ocean_cp"
    }

    fn suite(&self) -> &'static str {
        "splash2"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = oc_dim(p);
        let mut l = Layout::new();
        l.cells(2 * n * n);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = oc_dim(p);
        let mut l = Layout::new();
        let ga = l.cells(n * n);
        let gb = l.cells(n * n);
        let threads = p.threads.max(1);
        let bar = rt.create_barrier(threads);

        let mut g = SplitMix64::derive(p.seed, 15);
        let init: Vec<f64> = (0..n * n).map(|_| g.f64() * 4.0).collect();
        rt.init_f64_slice(ga, &init);
        rt.init_f64_slice(gb, &init);

        // Sequential reference.
        let mut cur = init.clone();
        let mut nxt = init;
        for _ in 0..OC_ITERS {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    nxt[i * n + j] = 0.25
                        * (cur[(i - 1) * n + j]
                            + cur[(i + 1) * n + j]
                            + cur[i * n + j - 1]
                            + cur[i * n + j + 1]);
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
        }
        let expect = cur;

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(n - 2, threads, w);
                    for it in 0..OC_ITERS {
                        let (src, dst) = if it % 2 == 0 { (ga, gb) } else { (gb, ga) };
                        for i in s + 1..e + 1 {
                            for j in 1..n - 1 {
                                let v = 0.25
                                    * (c.ld_f64(src + 8 * ((i - 1) * n + j))
                                        + c.ld_f64(src + 8 * ((i + 1) * n + j))
                                        + c.ld_f64(src + 8 * (i * n + j - 1))
                                        + c.ld_f64(src + 8 * (i * n + j + 1)));
                                c.st_f64(dst + 8 * (i * n + j), v);
                            }
                            c.tick(70 * (n - 2) as u64);
                        }
                        c.barrier_wait(bar);
                    }
                })
            });
        });

        let final_grid = if OC_ITERS.is_multiple_of(2) { ga } else { gb };
        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = vec![0u64; n * n];
            rt.final_u64_slice(final_grid, &mut got);
            let ok = got
                .iter()
                .zip(&expect)
                .all(|(g, e)| f64::from_bits(*g) == *e);
            Validation {
                output_hash: hash_cells(rt, final_grid, n * n),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------- lu_cb / ncb

/// Gaussian elimination with a barrier per pivot step. `contiguous` selects
/// the row-to-worker mapping: contiguous bands (each worker's writes stay
/// in its own pages, the paper's `lu_cb`) or interleaved rows (every page
/// is shared by all workers — `lu_ncb`'s page-conflict storm).
fn lu_prepare(rt: &mut dyn Runtime, p: &Params, contiguous: bool) -> Prepared {
    let n = 128 + 32 * (p.scale as usize - 1).min(4);
    let mut l = Layout::new();
    let a = l.cells(n * n);
    let threads = p.threads.max(1);
    let bar = rt.create_barrier(threads);

    let mut g = SplitMix64::derive(p.seed, 16);
    let mut init: Vec<f64> = (0..n * n).map(|_| g.f64() + 0.1).collect();
    // Diagonal dominance keeps the elimination stable without pivoting.
    for i in 0..n {
        init[i * n + i] += n as f64;
    }
    rt.init_f64_slice(a, &init);

    // Sequential reference (identical operation order per row).
    let mut expect = init;
    for k in 0..n - 1 {
        for i in k + 1..n {
            let f = expect[i * n + k] / expect[k * n + k];
            expect[i * n + k] = f;
            for j in k + 1..n {
                expect[i * n + j] -= f * expect[k * n + j];
            }
        }
    }

    let job: dmt_api::Job = Box::new(move |ctx| {
        fork_join(ctx, threads, |w| {
            Box::new(move |c| {
                let mine = move |i: usize| {
                    if contiguous {
                        let (s, e) = partition(n, threads, w);
                        i >= s && i < e
                    } else {
                        i % threads == w
                    }
                };
                let mut pivot = vec![0.0f64; n];
                for k in 0..n - 1 {
                    c.ld_f64_slice(a + 8 * (k * n + k), &mut pivot[k..n]);
                    let pkk = pivot[k];
                    for i in k + 1..n {
                        if !mine(i) {
                            continue;
                        }
                        let f = c.ld_f64(a + 8 * (i * n + k)) / pkk;
                        c.st_f64(a + 8 * (i * n + k), f);
                        // Index drives address arithmetic, not just `pivot`.
                        #[allow(clippy::needless_range_loop)]
                        for j in k + 1..n {
                            let v = c.ld_f64(a + 8 * (i * n + j)) - f * pivot[j];
                            c.st_f64(a + 8 * (i * n + j), v);
                        }
                        c.tick(40 * (n - k) as u64);
                    }
                    c.barrier_wait(bar);
                }
            })
        });
    });

    let validate = Box::new(move |rt: &dyn Runtime| {
        let mut got = vec![0u64; n * n];
        rt.final_u64_slice(a, &mut got);
        let ok = got
            .iter()
            .zip(&expect)
            .all(|(g, e)| f64::from_bits(*g) == *e);
        Validation {
            output_hash: hash_cells(rt, a, n * n),
            matches_reference: ok,
        }
    });
    Prepared { job, validate }
}

fn lu_pages(p: &Params) -> usize {
    let n = 128 + 32 * (p.scale as usize - 1).min(4);
    let mut l = Layout::new();
    l.cells(n * n);
    l.pages()
}

/// LU with contiguous block allocation.
pub struct LuCb;

impl Workload for LuCb {
    fn name(&self) -> &'static str {
        "lu_cb"
    }

    fn suite(&self) -> &'static str {
        "splash2"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        lu_pages(p)
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        lu_prepare(rt, p, true)
    }
}

/// LU with non-contiguous (interleaved) row allocation.
pub struct LuNcb;

impl Workload for LuNcb {
    fn name(&self) -> &'static str {
        "lu_ncb"
    }

    fn suite(&self) -> &'static str {
        "splash2"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        lu_pages(p)
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        lu_prepare(rt, p, false)
    }
}

// ----------------------------------------------------------water_nsquared

/// All-pairs molecular dynamics: per-molecule force locks (very short
/// critical sections at high rate) plus barriers per timestep — the
/// workload where the paper observes coarsening's token-hogging limit.
pub struct WaterNsquared;

const WN_STEPS: usize = 3;

fn wn_molecules(p: &Params) -> usize {
    96 * (p.scale as usize).min(3)
}

impl Workload for WaterNsquared {
    fn name(&self) -> &'static str {
        "water_nsquared"
    }

    fn suite(&self) -> &'static str {
        "splash2"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let m = wn_molecules(p);
        let mut l = Layout::new();
        l.cells(4 * m);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let m = wn_molecules(p);
        let mut l = Layout::new();
        let pos = l.cells(2 * m); // x, y per molecule
        let frc = l.cells(2 * m);
        let threads = p.threads.max(1);
        let bar = rt.create_barrier(threads);
        let locks: Vec<_> = (0..m).map(|_| rt.create_mutex()).collect();

        let mut g = SplitMix64::derive(p.seed, 17);
        let init: Vec<f64> = (0..2 * m).map(|_| g.f64() * 10.0).collect();
        rt.init_f64_slice(pos, &init);

        // Reference with tolerant comparison: force accumulation order into
        // a molecule differs across schedules, so sums differ in the last
        // ulps (exactly as in the original program).
        let mut epos = init;
        for _ in 0..WN_STEPS {
            let mut ef = vec![0.0f64; 2 * m];
            for i in 0..m {
                for j in i + 1..m {
                    let dx = epos[2 * i] - epos[2 * j];
                    let dy = epos[2 * i + 1] - epos[2 * j + 1];
                    let r2 = dx * dx + dy * dy + 0.01;
                    let f = 1.0 / (r2 * r2);
                    ef[2 * i] += f * dx;
                    ef[2 * i + 1] += f * dy;
                    ef[2 * j] -= f * dx;
                    ef[2 * j + 1] -= f * dy;
                }
            }
            for k in 0..2 * m {
                epos[k] += 1e-4 * ef[k];
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            let locks2 = locks.clone();
            fork_join(ctx, threads, move |w| {
                let locks = locks2.clone();
                Box::new(move |c| {
                    let (s, e) = partition(m, threads, w);
                    for _ in 0..WN_STEPS {
                        // Zero my molecules' force slots.
                        for i in s..e {
                            c.st_f64(frc + 16 * i, 0.0);
                            c.st_f64(frc + 16 * i + 8, 0.0);
                        }
                        c.barrier_wait(bar);
                        // All pairs (i, j) for my i; j's slot via its lock.
                        for i in s..e {
                            let xi = c.ld_f64(pos + 16 * i);
                            let yi = c.ld_f64(pos + 16 * i + 8);
                            let mut fx = 0.0;
                            let mut fy = 0.0;
                            // Index drives address arithmetic, not just `locks`.
                            #[allow(clippy::needless_range_loop)]
                            for j in i + 1..m {
                                let dx = xi - c.ld_f64(pos + 16 * j);
                                let dy = yi - c.ld_f64(pos + 16 * j + 8);
                                let r2 = dx * dx + dy * dy + 0.01;
                                let f = 1.0 / (r2 * r2);
                                fx += f * dx;
                                fy += f * dy;
                                c.tick(500);
                                c.mutex_lock(locks[j]);
                                c.add_f64(frc + 16 * j, -f * dx);
                                c.add_f64(frc + 16 * j + 8, -f * dy);
                                c.mutex_unlock(locks[j]);
                            }
                            c.mutex_lock(locks[i]);
                            c.add_f64(frc + 16 * i, fx);
                            c.add_f64(frc + 16 * i + 8, fy);
                            c.mutex_unlock(locks[i]);
                        }
                        c.barrier_wait(bar);
                        // Integrate my molecules.
                        for i in s..e {
                            for d in 0..2 {
                                let x = c.ld_f64(pos + 16 * i + 8 * d);
                                let f = c.ld_f64(frc + 16 * i + 8 * d);
                                c.st_f64(pos + 16 * i + 8 * d, x + 1e-4 * f);
                            }
                        }
                        c.barrier_wait(bar);
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let ok = (0..2 * m).all(|k| {
                let got = rt.final_f64(pos + 8 * k);
                (got - epos[k]).abs() <= 1e-6 * (1.0 + epos[k].abs())
            });
            Validation {
                output_hash: hash_cells(rt, pos, 2 * m),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------ water_spatial

/// Cell-decomposed molecular dynamics: workers own cells, read neighbor
/// cells from the previous step's buffer, and meet at barriers; only an
/// energy reduction takes a lock.
pub struct WaterSpatial;

const WS_STEPS: usize = 4;
const WS_CELLS: usize = 16;
const WS_PER_CELL: usize = 8;

impl Workload for WaterSpatial {
    fn name(&self) -> &'static str {
        "water_spatial"
    }

    fn suite(&self) -> &'static str {
        "splash2"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let m = WS_CELLS * WS_PER_CELL * p.scale as usize;
        let mut l = Layout::new();
        l.cells(2 * 2 * m + 1);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let per_cell = WS_PER_CELL * p.scale as usize;
        let m = WS_CELLS * per_cell;
        let mut l = Layout::new();
        let cur = l.cells(2 * m);
        let nxt = l.cells(2 * m);
        let energy = l.cells_page_aligned(1);
        let threads = p.threads.max(1);
        let bar = rt.create_barrier(threads);
        let elock = rt.create_mutex();

        let mut g = SplitMix64::derive(p.seed, 18);
        let init: Vec<f64> = (0..2 * m).map(|_| g.f64() * 5.0).collect();
        rt.init_f64_slice(cur, &init);

        // Reference: double-buffered, so exact.
        let mut ec = init.clone();
        let mut en = init;
        let mut eenergy = 0.0f64;
        for _ in 0..WS_STEPS {
            for cell in 0..WS_CELLS {
                for s in 0..per_cell {
                    let i = cell * per_cell + s;
                    let mut fx = 0.0;
                    let mut fy = 0.0;
                    for nc in [
                        cell,
                        (cell + 1) % WS_CELLS,
                        (cell + WS_CELLS - 1) % WS_CELLS,
                    ] {
                        for t in 0..per_cell {
                            let j = nc * per_cell + t;
                            if j == i {
                                continue;
                            }
                            let dx = ec[2 * i] - ec[2 * j];
                            let dy = ec[2 * i + 1] - ec[2 * j + 1];
                            let r2 = dx * dx + dy * dy + 0.01;
                            let f = 1.0 / r2;
                            fx += f * dx;
                            fy += f * dy;
                        }
                    }
                    en[2 * i] = ec[2 * i] + 1e-4 * fx;
                    en[2 * i + 1] = ec[2 * i + 1] + 1e-4 * fy;
                    eenergy += fx * fx + fy * fy;
                }
            }
            std::mem::swap(&mut ec, &mut en);
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (cs, ce) = partition(WS_CELLS, threads, w);
                    for step in 0..WS_STEPS {
                        let (src, dst) = if step % 2 == 0 {
                            (cur, nxt)
                        } else {
                            (nxt, cur)
                        };
                        let mut local_energy = 0.0;
                        for cell in cs..ce {
                            for s in 0..per_cell {
                                let i = cell * per_cell + s;
                                let xi = c.ld_f64(src + 16 * i);
                                let yi = c.ld_f64(src + 16 * i + 8);
                                let mut fx = 0.0;
                                let mut fy = 0.0;
                                for nc in [
                                    cell,
                                    (cell + 1) % WS_CELLS,
                                    (cell + WS_CELLS - 1) % WS_CELLS,
                                ] {
                                    for t in 0..per_cell {
                                        let j = nc * per_cell + t;
                                        if j == i {
                                            continue;
                                        }
                                        let dx = xi - c.ld_f64(src + 16 * j);
                                        let dy = yi - c.ld_f64(src + 16 * j + 8);
                                        let r2 = dx * dx + dy * dy + 0.01;
                                        let f = 1.0 / r2;
                                        fx += f * dx;
                                        fy += f * dy;
                                    }
                                }
                                c.tick(110 * 3 * per_cell as u64);
                                c.st_f64(dst + 16 * i, xi + 1e-4 * fx);
                                c.st_f64(dst + 16 * i + 8, yi + 1e-4 * fy);
                                local_energy += fx * fx + fy * fy;
                            }
                        }
                        c.mutex_lock(elock);
                        c.add_f64(energy, local_energy);
                        c.mutex_unlock(elock);
                        c.barrier_wait(bar);
                    }
                })
            });
        });

        let final_buf = if WS_STEPS.is_multiple_of(2) { cur } else { nxt };
        let validate = Box::new(move |rt: &dyn Runtime| {
            let ok = (0..2 * m).all(|k| {
                let got = rt.final_f64(final_buf + 8 * k);
                got == ec[k]
            }) && (rt.final_f64(energy) - eenergy).abs() <= 1e-6 * (1.0 + eenergy.abs());
            Validation {
                output_hash: hash_cells(rt, final_buf, 2 * m),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------------- radix

/// LSD radix sort with per-pass histogram, prefix and permutation phases
/// separated by barriers; the permutation scatters across the whole
/// destination array (page conflicts everywhere).
pub struct Radix;

const RX_PASSES: usize = 4;
const RX_RADIX: usize = 256;

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn suite(&self) -> &'static str {
        "splash2"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = 16 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(2 * n);
        l.cells_page_aligned(RX_RADIX * p.threads.max(1));
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = 16 * 1024 * p.scale as usize;
        let threads = p.threads.max(1);
        let mut l = Layout::new();
        let buf_a = l.cells(n);
        let buf_b = l.cells(n);
        let hists = l.cells_page_aligned(RX_RADIX * threads);
        let bar = rt.create_barrier(threads);

        let mut g = SplitMix64::derive(p.seed, 19);
        let keys: Vec<u64> = (0..n).map(|_| g.next_u64() & 0xffff_ffff).collect();
        rt.init_u64_slice(buf_a, &keys);

        let mut expect = keys;
        expect.sort_unstable();

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(n, threads, w);
                    for pass in 0..RX_PASSES {
                        let shift = 8 * pass;
                        let (src, dst) = if pass % 2 == 0 {
                            (buf_a, buf_b)
                        } else {
                            (buf_b, buf_a)
                        };
                        // Phase 1: local digit histogram.
                        let mut hist = vec![0u64; RX_RADIX];
                        for i in s..e {
                            let k = c.ld_u64(src + 8 * i);
                            hist[((k >> shift) & 0xff) as usize] += 1;
                        }
                        c.tick(40 * (e - s) as u64);
                        c.st_u64_slice(hists + 8 * (w * RX_RADIX), &hist);
                        c.barrier_wait(bar);
                        // Phase 2: worker 0 turns histograms into offsets.
                        if w == 0 {
                            let mut all = vec![0u64; RX_RADIX * threads];
                            c.ld_u64_slice(hists, &mut all);
                            let mut off = 0u64;
                            for d in 0..RX_RADIX {
                                for t in 0..threads {
                                    let cnt = all[t * RX_RADIX + d];
                                    all[t * RX_RADIX + d] = off;
                                    off += cnt;
                                }
                            }
                            c.tick((4 * RX_RADIX * threads) as u64);
                            c.st_u64_slice(hists, &all);
                        }
                        c.barrier_wait(bar);
                        // Phase 3: stable scatter using my offsets.
                        let mut off = vec![0u64; RX_RADIX];
                        c.ld_u64_slice(hists + 8 * (w * RX_RADIX), &mut off);
                        for i in s..e {
                            let k = c.ld_u64(src + 8 * i);
                            let d = ((k >> shift) & 0xff) as usize;
                            c.st_u64(dst + 8 * off[d] as usize, k);
                            off[d] += 1;
                        }
                        c.tick(50 * (e - s) as u64);
                        c.barrier_wait(bar);
                    }
                })
            });
        });

        let out = if RX_PASSES.is_multiple_of(2) {
            buf_a
        } else {
            buf_b
        };
        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = vec![0u64; n];
            rt.final_u64_slice(out, &mut got);
            Validation {
                output_hash: hash_cells(rt, out, n),
                matches_reference: got == expect,
            }
        });
        Prepared { job, validate }
    }
}
