//! Phoenix map-reduce kernels.
//!
//! Phoenix programs are mostly embarrassingly parallel scans with a short
//! reduction, which is why the paper calls several of them uninformative
//! ("embarrassingly parallel to start with"); `kmeans`, `word_count` and
//! `reverse_index` are the interesting ones — fork-join reuse and
//! fine-grained locking.

use dmt_api::{Fnv1a, MemExt, Runtime, RuntimeMemExt};

use crate::kernels::fork_join;
use crate::layout::{partition, Layout};
use crate::rng::{mix64, SplitMix64};
use crate::spec::{Params, Prepared, Validation, Workload};

fn hash_region(rt: &dyn Runtime, addr: usize, cells: usize) -> u64 {
    let mut buf = vec![0u8; cells * 8];
    rt.final_read(addr, &mut buf);
    Fnv1a::hash(&buf)
}

fn f64_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

// ---------------------------------------------------------------- histogram

/// Byte-value histogram over a pseudo-random image (embarrassingly
/// parallel; one merge lock).
pub struct Histogram;

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let words = 256 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(words);
        l.cells_page_aligned(256);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let words = 256 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        let input = l.cells(words);
        let out = l.cells_page_aligned(256);
        let lock = rt.create_mutex();
        let threads = p.threads.max(1);

        let mut g = SplitMix64::derive(p.seed, 1);
        let mut data = vec![0u64; words];
        g.fill(&mut data);
        rt.init_u64_slice(input, &data);

        // Sequential reference.
        let mut expect = [0u64; 256];
        for w in &data {
            for b in w.to_le_bytes() {
                expect[b as usize] += 1;
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(words, threads, w);
                    let mut local = [0u64; 256];
                    for i in s..e {
                        let v = c.ld_u64(input + 8 * i);
                        for b in v.to_le_bytes() {
                            local[b as usize] += 1;
                        }
                        c.tick(60);
                    }
                    c.mutex_lock(lock);
                    for (k, &n) in local.iter().enumerate() {
                        if n > 0 {
                            c.fetch_add_u64(out + 8 * k, n);
                        }
                    }
                    c.mutex_unlock(lock);
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = vec![0u64; 256];
            rt.final_u64_slice(out, &mut got);
            Validation {
                output_hash: hash_region(rt, out, 256),
                matches_reference: got == expect,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------- linear_regression

/// Least-squares partial-sum reduction (embarrassingly parallel, very
/// short runtime — the paper's noisiest benchmark).
pub struct LinearRegression;

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = 128 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(2 * n);
        l.cells_page_aligned(8);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = 128 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        let pts = l.cells(2 * n);
        let out = l.cells_page_aligned(8); // sx, sy, sxx, syy, sxy
        let lock = rt.create_mutex();
        let threads = p.threads.max(1);

        let mut g = SplitMix64::derive(p.seed, 2);
        let mut sums = [0.0f64; 5];
        for i in 0..n {
            let x = g.f64() * 100.0;
            let y = 3.0 * x + 7.0 + g.f64();
            rt.init_f64(pts + 16 * i, x);
            rt.init_f64(pts + 16 * i + 8, y);
            sums[0] += x;
            sums[1] += y;
            sums[2] += x * x;
            sums[3] += y * y;
            sums[4] += x * y;
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(n, threads, w);
                    let mut acc = [0.0f64; 5];
                    for i in s..e {
                        let x = c.ld_f64(pts + 16 * i);
                        let y = c.ld_f64(pts + 16 * i + 8);
                        acc[0] += x;
                        acc[1] += y;
                        acc[2] += x * x;
                        acc[3] += y * y;
                        acc[4] += x * y;
                        c.tick(70);
                    }
                    c.mutex_lock(lock);
                    for (k, v) in acc.iter().enumerate() {
                        c.add_f64(out + 8 * k, *v);
                    }
                    c.mutex_unlock(lock);
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            // Summation order differs per thread count, so compare with a
            // floating-point tolerance.
            let ok = (0..5).all(|k| f64_close(rt.final_f64(out + 8 * k), sums[k]));
            Validation {
                output_hash: hash_region(rt, out, 5),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------ string_match

/// Scan of fixed-width keys against a small set of target keys.
pub struct StringMatch;

impl Workload for StringMatch {
    fn name(&self) -> &'static str {
        "string_match"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = 96 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(2 * n + 8);
        l.cells_page_aligned(4);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = 96 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        let keys = l.cells(2 * n);
        let targets = l.cells(8);
        let out = l.cells_page_aligned(4);
        let lock = rt.create_mutex();
        let threads = p.threads.max(1);

        let mut g = SplitMix64::derive(p.seed, 3);
        let mut data = vec![0u64; 2 * n];
        // Low-entropy keys so targets actually match.
        for d in data.iter_mut() {
            *d = g.below(64);
        }
        rt.init_u64_slice(keys, &data);
        let mut tg = [0u64; 8];
        for t in 0..4 {
            let pick = g.below(n as u64) as usize;
            tg[2 * t] = data[2 * pick];
            tg[2 * t + 1] = data[2 * pick + 1];
        }
        rt.init_u64_slice(targets, &tg);

        let mut expect = [0u64; 4];
        for i in 0..n {
            for t in 0..4 {
                if data[2 * i] == tg[2 * t] && data[2 * i + 1] == tg[2 * t + 1] {
                    expect[t] += 1;
                }
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(n, threads, w);
                    let mut tg = [0u64; 8];
                    c.ld_u64_slice(targets, &mut tg);
                    let mut local = [0u64; 4];
                    for i in s..e {
                        let a = c.ld_u64(keys + 16 * i);
                        let b = c.ld_u64(keys + 16 * i + 8);
                        for t in 0..4 {
                            if a == tg[2 * t] && b == tg[2 * t + 1] {
                                local[t] += 1;
                            }
                        }
                        c.tick(90);
                    }
                    c.mutex_lock(lock);
                    for (t, &v) in local.iter().enumerate() {
                        if v > 0 {
                            c.fetch_add_u64(out + 8 * t, v);
                        }
                    }
                    c.mutex_unlock(lock);
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = [0u64; 4];
            rt.final_u64_slice(out, &mut got);
            Validation {
                output_hash: hash_region(rt, out, 4),
                matches_reference: got == expect,
            }
        });
        Prepared { job, validate }
    }
}

// -------------------------------------------------------- matrix_multiply

/// Dense `C = A × B` with row-partitioned output (embarrassingly parallel,
/// no locks at all).
pub struct MatrixMultiply;

fn mm_dim(p: &Params) -> usize {
    96 + 16 * (p.scale as usize - 1).min(8)
}

impl Workload for MatrixMultiply {
    fn name(&self) -> &'static str {
        "matrix_multiply"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = mm_dim(p);
        let mut l = Layout::new();
        l.cells(3 * n * n);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = mm_dim(p);
        let mut l = Layout::new();
        let a = l.cells(n * n);
        let b = l.cells(n * n);
        let cmat = l.cells(n * n);
        let threads = p.threads.max(1);

        let mut g = SplitMix64::derive(p.seed, 4);
        let av: Vec<f64> = (0..n * n).map(|_| g.f64() - 0.5).collect();
        let bv: Vec<f64> = (0..n * n).map(|_| g.f64() - 0.5).collect();
        rt.init_f64_slice(a, &av);
        rt.init_f64_slice(b, &bv);

        // Sequential reference (same loop order = identical floats).
        let mut expect = vec![0.0f64; n * n];
        for i in 0..n {
            for k in 0..n {
                let x = av[i * n + k];
                for j in 0..n {
                    expect[i * n + j] += x * bv[k * n + j];
                }
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    let (s, e) = partition(n, threads, w);
                    let mut row = vec![0.0f64; n];
                    for i in s..e {
                        row.iter_mut().for_each(|r| *r = 0.0);
                        for k in 0..n {
                            let x = c.ld_f64(a + 8 * (i * n + k));
                            for (j, r) in row.iter_mut().enumerate() {
                                *r += x * c.ld_f64(b + 8 * (k * n + j));
                            }
                            c.tick(10 * n as u64);
                        }
                        c.st_f64_slice(cmat + 8 * i * n, &row);
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut got = vec![0u64; n * n];
            rt.final_u64_slice(cmat, &mut got);
            let ok = got
                .iter()
                .zip(&expect)
                .all(|(g, e)| f64::from_bits(*g) == *e);
            Validation {
                output_hash: hash_region(rt, cmat, n * n),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// ------------------------------------------------------------------- pca

/// Column means then covariance, in two barrier-separated phases.
pub struct Pca;

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let (r, c) = (256 * p.scale as usize, 48);
        let mut l = Layout::new();
        l.cells(r * c + c + c * c);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let (rows, cols) = (256 * p.scale as usize, 48usize);
        let mut l = Layout::new();
        let m = l.cells(rows * cols);
        let means = l.cells(cols);
        let cov = l.cells(cols * cols);
        let threads = p.threads.max(1);
        let bar = rt.create_barrier(threads);

        let mut g = SplitMix64::derive(p.seed, 5);
        let mv: Vec<f64> = (0..rows * cols).map(|_| g.f64() * 10.0).collect();
        rt.init_f64_slice(m, &mv);

        // Reference.
        let mut emeans = vec![0.0f64; cols];
        for r in 0..rows {
            for c in 0..cols {
                emeans[c] += mv[r * cols + c];
            }
        }
        for e in emeans.iter_mut() {
            *e /= rows as f64;
        }
        let mut ecov = vec![0.0f64; cols * cols];
        for a in 0..cols {
            for b in a..cols {
                let mut s = 0.0;
                for r in 0..rows {
                    s += (mv[r * cols + a] - emeans[a]) * (mv[r * cols + b] - emeans[b]);
                }
                ecov[a * cols + b] = s / (rows - 1) as f64;
            }
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            fork_join(ctx, threads, |w| {
                Box::new(move |c| {
                    // Phase 1: column means (columns partitioned).
                    let (s, e) = partition(cols, threads, w);
                    for col in s..e {
                        let mut acc = 0.0;
                        for r in 0..rows {
                            acc += c.ld_f64(m + 8 * (r * cols + col));
                        }
                        c.tick(12 * rows as u64);
                        c.st_f64(means + 8 * col, acc / rows as f64);
                    }
                    c.barrier_wait(bar);
                    // Phase 2: covariance rows (a partitioned).
                    for a in s..e {
                        let ma = c.ld_f64(means + 8 * a);
                        for b in a..cols {
                            let mb = c.ld_f64(means + 8 * b);
                            let mut acc = 0.0;
                            for r in 0..rows {
                                acc += (c.ld_f64(m + 8 * (r * cols + a)) - ma)
                                    * (c.ld_f64(m + 8 * (r * cols + b)) - mb);
                            }
                            c.tick(16 * rows as u64);
                            c.st_f64(cov + 8 * (a * cols + b), acc / (rows - 1) as f64);
                        }
                    }
                    c.barrier_wait(bar);
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let ok = (0..cols).all(|a| {
                (a..cols)
                    .all(|b| f64_close(rt.final_f64(cov + 8 * (a * cols + b)), ecov[a * cols + b]))
            });
            Validation {
                output_hash: hash_region(rt, cov, cols * cols),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// ---------------------------------------------------------------- kmeans

/// Lloyd iterations with fork-join workers per iteration (exercising §3.3
/// thread-pool reuse) and one lock per cluster.
pub struct Kmeans;

const KM_K: usize = 8;
const KM_D: usize = 4;
const KM_ITERS: usize = 6;

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = 4096 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(n * KM_D + KM_K * KM_D + KM_K * (KM_D + 1));
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = 4096 * p.scale as usize;
        let mut l = Layout::new();
        let pts = l.cells(n * KM_D);
        let centroids = l.cells(KM_K * KM_D);
        let sums = l.cells_page_aligned(KM_K * (KM_D + 1)); // per cluster: d sums + count
        let threads = p.threads.max(1);
        let locks: Vec<_> = (0..KM_K).map(|_| rt.create_mutex()).collect();

        let mut g = SplitMix64::derive(p.seed, 6);
        let pv: Vec<f64> = (0..n * KM_D).map(|_| g.f64() * 100.0).collect();
        rt.init_f64_slice(pts, &pv);
        let init_c: Vec<f64> = (0..KM_K * KM_D)
            .map(|i| pv[(i / KM_D) * (n / KM_K) * KM_D + i % KM_D])
            .collect();
        rt.init_f64_slice(centroids, &init_c);

        // Sequential reference of the exact same iteration scheme.
        let mut ec = init_c.clone();
        for _ in 0..KM_ITERS {
            let mut acc = vec![0.0f64; KM_K * KM_D];
            let mut cnt = [0u64; KM_K];
            for i in 0..n {
                let mut best = 0;
                let mut bd = f64::INFINITY;
                for k in 0..KM_K {
                    let mut d2 = 0.0;
                    for d in 0..KM_D {
                        let diff = pv[i * KM_D + d] - ec[k * KM_D + d];
                        d2 += diff * diff;
                    }
                    if d2 < bd {
                        bd = d2;
                        best = k;
                    }
                }
                for d in 0..KM_D {
                    acc[best * KM_D + d] += pv[i * KM_D + d];
                }
                cnt[best] += 1;
            }
            for k in 0..KM_K {
                if cnt[k] > 0 {
                    for d in 0..KM_D {
                        ec[k * KM_D + d] = acc[k * KM_D + d] / cnt[k] as f64;
                    }
                }
            }
        }

        let locks2 = locks.clone();
        let job: dmt_api::Job = Box::new(move |ctx| {
            for _ in 0..KM_ITERS {
                // Reset accumulators.
                for k in 0..KM_K * (KM_D + 1) {
                    ctx.st_u64(sums + 8 * k, 0);
                }
                let locks3 = locks2.clone();
                fork_join(ctx, threads, move |w| {
                    let locks = locks3.clone();
                    Box::new(move |c| {
                        let (s, e) = partition(n, threads, w);
                        let mut cent = vec![0.0f64; KM_K * KM_D];
                        c.ld_f64_slice(centroids, &mut cent);
                        let mut acc = vec![0.0f64; KM_K * KM_D];
                        let mut cnt = [0u64; KM_K];
                        for i in s..e {
                            let mut pt = [0.0f64; KM_D];
                            c.ld_f64_slice(pts + 8 * i * KM_D, &mut pt);
                            let mut best = 0;
                            let mut bd = f64::INFINITY;
                            for k in 0..KM_K {
                                let mut d2 = 0.0;
                                for d in 0..KM_D {
                                    let diff = pt[d] - cent[k * KM_D + d];
                                    d2 += diff * diff;
                                }
                                if d2 < bd {
                                    bd = d2;
                                    best = k;
                                }
                            }
                            c.tick((16 * KM_K * KM_D) as u64);
                            for d in 0..KM_D {
                                acc[best * KM_D + d] += pt[d];
                            }
                            cnt[best] += 1;
                        }
                        for k in 0..KM_K {
                            if cnt[k] == 0 {
                                continue;
                            }
                            c.mutex_lock(locks[k]);
                            let base = sums + 8 * k * (KM_D + 1);
                            for d in 0..KM_D {
                                c.add_f64(base + 8 * d, acc[k * KM_D + d]);
                            }
                            c.fetch_add_u64(base + 8 * KM_D, cnt[k]);
                            c.mutex_unlock(locks[k]);
                        }
                    })
                });
                // Recompute centroids on the main thread.
                for k in 0..KM_K {
                    let base = sums + 8 * k * (KM_D + 1);
                    let cnt = ctx.ld_u64(base + 8 * KM_D);
                    if cnt > 0 {
                        for d in 0..KM_D {
                            let s = ctx.ld_f64(base + 8 * d);
                            ctx.st_f64(centroids + 8 * (k * KM_D + d), s / cnt as f64);
                        }
                    }
                }
            }
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let ok = (0..KM_K * KM_D).all(|i| f64_close(rt.final_f64(centroids + 8 * i), ec[i]));
            Validation {
                output_hash: hash_region(rt, centroids, KM_K * KM_D),
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}

// -------------------------------------------------------------- word_count

/// Word-frequency counting into a bucketized shared hash table with one
/// lock per bucket.
pub struct WordCount;

const WC_BUCKETS: usize = 32;
const WC_SLOTS: usize = 160; // (key, count) pairs per bucket

impl Workload for WordCount {
    fn name(&self) -> &'static str {
        "word_count"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let n = 16 * 1024 * p.scale as usize;
        let mut l = Layout::new();
        l.cells(n);
        l.cells_page_aligned(WC_BUCKETS * WC_SLOTS * 2);
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let n = 16 * 1024 * p.scale as usize;
        let vocab = 2048u64;
        let mut l = Layout::new();
        let input = l.cells(n);
        let table = l.cells_page_aligned(WC_BUCKETS * WC_SLOTS * 2);
        let threads = p.threads.max(1);
        let locks: Vec<_> = (0..WC_BUCKETS).map(|_| rt.create_mutex()).collect();

        let mut g = SplitMix64::derive(p.seed, 7);
        // Zipf-ish skew: square a uniform draw.
        let words: Vec<u64> = (0..n)
            .map(|_| {
                let u = g.f64();
                ((u * u * vocab as f64) as u64).min(vocab - 1) + 1
            })
            .collect();
        rt.init_u64_slice(input, &words);

        let mut expect = std::collections::HashMap::<u64, u64>::new();
        for w in &words {
            *expect.entry(*w).or_default() += 1;
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            let locks2 = locks.clone();
            fork_join(ctx, threads, move |w| {
                let locks = locks2.clone();
                Box::new(move |c| {
                    let (s, e) = partition(n, threads, w);
                    // BTreeMap: iteration order must be deterministic, or
                    // the shared table's slot layout would vary run-to-run.
                    let mut local = std::collections::BTreeMap::<u64, u64>::new();
                    for i in s..e {
                        let word = c.ld_u64(input + 8 * i);
                        *local.entry(word).or_default() += 1;
                        c.tick(350);
                    }
                    // Merge per bucket under that bucket's lock.
                    let mut by_bucket: Vec<Vec<(u64, u64)>> = vec![Vec::new(); WC_BUCKETS];
                    for (k, v) in local {
                        by_bucket[(mix64(k) as usize) % WC_BUCKETS].push((k, v));
                    }
                    for (b, items) in by_bucket.into_iter().enumerate() {
                        if items.is_empty() {
                            continue;
                        }
                        let base = table + 8 * (b * WC_SLOTS * 2);
                        c.mutex_lock(locks[b]);
                        for (k, v) in items {
                            // Linear probe within the bucket region.
                            let mut slot = 0;
                            loop {
                                assert!(slot < WC_SLOTS, "word_count bucket overflow");
                                let key = c.ld_u64(base + 16 * slot);
                                if key == k {
                                    c.fetch_add_u64(base + 16 * slot + 8, v);
                                    break;
                                }
                                if key == 0 {
                                    c.st_u64(base + 16 * slot, k);
                                    c.st_u64(base + 16 * slot + 8, v);
                                    break;
                                }
                                slot += 1;
                            }
                            c.tick(60);
                        }
                        c.mutex_unlock(locks[b]);
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            // Slot placement depends on merge order, so check and hash the
            // table order-independently.
            let mut got = std::collections::HashMap::<u64, u64>::new();
            let mut digest = 0u64;
            let mut cells = vec![0u64; WC_BUCKETS * WC_SLOTS * 2];
            rt.final_u64_slice(table, &mut cells);
            for slot in cells.chunks(2) {
                if slot[0] != 0 {
                    *got.entry(slot[0]).or_default() += slot[1];
                    digest = digest.wrapping_add(mix64(slot[0] ^ slot[1].rotate_left(32)));
                }
            }
            Validation {
                output_hash: digest,
                matches_reference: got == expect,
            }
        });
        Prepared { job, validate }
    }
}

// ----------------------------------------------------------- reverse_index

/// Link → document postings built under per-bucket locks: very many, very
/// short critical sections (the locking stress test of Figure 10/14).
pub struct ReverseIndex;

const RI_BUCKETS: usize = 64;
const RI_LINKS_PER_DOC: usize = 8;

impl Workload for ReverseIndex {
    fn name(&self) -> &'static str {
        "reverse_index"
    }

    fn suite(&self) -> &'static str {
        "phoenix"
    }

    fn heap_pages(&self, p: &Params) -> usize {
        let docs = 1024 * p.scale as usize;
        let cap = docs * RI_LINKS_PER_DOC * 2 / RI_BUCKETS;
        let mut l = Layout::new();
        l.cells(docs * RI_LINKS_PER_DOC);
        l.cells_page_aligned(RI_BUCKETS * (1 + cap));
        l.pages()
    }

    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared {
        let docs = 1024 * p.scale as usize;
        let linkspace = 2048u64;
        let cap = docs * RI_LINKS_PER_DOC * 2 / RI_BUCKETS;
        let mut l = Layout::new();
        let input = l.cells(docs * RI_LINKS_PER_DOC);
        let index = l.cells_page_aligned(RI_BUCKETS * (1 + cap));
        let threads = p.threads.max(1);
        let locks: Vec<_> = (0..RI_BUCKETS).map(|_| rt.create_mutex()).collect();

        let mut g = SplitMix64::derive(p.seed, 8);
        let links: Vec<u64> = (0..docs * RI_LINKS_PER_DOC)
            .map(|_| g.below(linkspace))
            .collect();
        rt.init_u64_slice(input, &links);

        // Order-independent reference: per-bucket counts + posting digest.
        let mut ecount = vec![0u64; RI_BUCKETS];
        let mut edigest = 0u64;
        for (i, &link) in links.iter().enumerate() {
            let doc = (i / RI_LINKS_PER_DOC) as u64;
            ecount[(link as usize) % RI_BUCKETS] += 1;
            edigest = edigest.wrapping_add(mix64(link << 32 | doc));
        }

        let job: dmt_api::Job = Box::new(move |ctx| {
            let locks2 = locks.clone();
            fork_join(ctx, threads, move |w| {
                let locks = locks2.clone();
                Box::new(move |c| {
                    let (s, e) = partition(docs, threads, w);
                    for doc in s..e {
                        for k in 0..RI_LINKS_PER_DOC {
                            let link = c.ld_u64(input + 8 * (doc * RI_LINKS_PER_DOC + k));
                            let b = (link as usize) % RI_BUCKETS;
                            let base = index + 8 * (b * (1 + cap));
                            c.tick(4_000);
                            c.mutex_lock(locks[b]);
                            let cnt = c.ld_u64(base);
                            assert!((cnt as usize) < cap, "reverse_index bucket overflow");
                            c.st_u64(base + 8 * (1 + cnt as usize), link << 32 | doc as u64);
                            c.st_u64(base, cnt + 1);
                            c.mutex_unlock(locks[b]);
                        }
                    }
                })
            });
        });

        let validate = Box::new(move |rt: &dyn Runtime| {
            let mut digest = 0u64;
            let mut ok = true;
            // Index drives address arithmetic, not just `ecount`.
            #[allow(clippy::needless_range_loop)]
            for b in 0..RI_BUCKETS {
                let base = index + 8 * (b * (1 + cap));
                let cnt = rt.final_u64(base);
                ok &= cnt == ecount[b];
                let mut entries = vec![0u64; cnt as usize];
                rt.final_u64_slice(base + 8, &mut entries);
                for e in entries {
                    digest = digest.wrapping_add(mix64(e));
                }
            }
            ok &= digest == edigest;
            Validation {
                output_hash: digest,
                matches_reference: ok,
            }
        });
        Prepared { job, validate }
    }
}
