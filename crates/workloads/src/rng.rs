//! Deterministic pseudo-random generation for workload inputs.
//!
//! Workloads must be reproducible end to end, so all "random" input data
//! and all per-thread randomized decisions (e.g. canneal's swap candidates)
//! come from this self-contained SplitMix64 generator seeded from
//! `(seed, purpose)` pairs — never from ambient entropy.

/// SplitMix64: tiny, fast, well-distributed; the reference PRNG for seeding.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// A generator for a named sub-stream, so different uses of one
    /// workload seed stay statistically independent.
    pub fn derive(seed: u64, stream: u64) -> SplitMix64 {
        let mut g = SplitMix64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        g.next_u64(); // decorrelate trivially related seeds
        SplitMix64(g.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping (slight bias is fine for
        // workload generation; determinism is what matters).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills a slice with raw values.
    pub fn fill(&mut self, out: &mut [u64]) {
        for o in out {
            *o = self.next_u64();
        }
    }
}

/// Stateless mix function used by pipeline stages as stand-in "work" whose
/// output can be checked against a sequential reference.
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SplitMix64::derive(7, 0);
        let mut b = SplitMix64::derive(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(g.below(37) < 37);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(2);
        for _ in 0..10_000 {
            let x = g.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mix64_is_a_permutation_sample() {
        // Not a proof, but distinct inputs must map to distinct outputs on
        // a sample (mix64 is bijective by construction).
        let outs: std::collections::HashSet<u64> = (0..1000).map(mix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
