//! The workload contract and registry.

use dmt_api::{Job, Runtime};

/// Workload sizing parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Worker threads the kernel should use (pipelines may round up to
    /// their structural minimum).
    pub threads: usize,
    /// Problem-size multiplier (1 = the default laptop-scale input).
    pub scale: u32,
    /// Input generation seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: 4,
            scale: 1,
            seed: 42,
        }
    }
}

impl Params {
    /// Convenience constructor.
    pub fn new(threads: usize, scale: u32, seed: u64) -> Params {
        Params {
            threads,
            scale,
            seed,
        }
    }
}

/// Result of validating a finished run.
#[derive(Clone, Copy, Debug)]
pub struct Validation {
    /// FNV-1a digest of the kernel's output region.
    pub output_hash: u64,
    /// Whether the output matched the sequential reference.
    pub matches_reference: bool,
}

/// Post-run check against the sequential reference.
pub type Validator = Box<dyn FnOnce(&dyn Runtime) -> Validation + Send>;

/// A workload instantiated against a concrete runtime: the job to run and
/// the validator to apply afterwards.
pub struct Prepared {
    /// Main job (always executed as `Tid(0)`).
    pub job: Job,
    /// Post-run check against the sequential reference.
    pub validate: Validator,
}

/// One benchmark program from the paper's evaluation.
pub trait Workload: Send + Sync {
    /// Paper name, e.g. `"reverse_index"`.
    fn name(&self) -> &'static str;

    /// Originating suite: `"phoenix"`, `"parsec"`, `"splash2"`, or
    /// `"server"` for the repo's own request-serving workload.
    fn suite(&self) -> &'static str;

    /// Heap pages the runtime must be created with.
    fn heap_pages(&self, p: &Params) -> usize;

    /// Creates sync objects, initializes the heap, and returns the job +
    /// validator. Must be called on a fresh runtime sized by
    /// [`heap_pages`](Workload::heap_pages).
    fn prepare(&self, rt: &mut dyn Runtime, p: &Params) -> Prepared;
}

/// All 20 workloads: the paper's 19 benchmarks in suite order, plus
/// `dmt_server`.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    crate::kernels::all()
}

/// Looks a workload up by its paper name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_twenty_workloads() {
        let all = all_workloads();
        assert_eq!(all.len(), 20);
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        for expected in [
            "histogram",
            "linear_regression",
            "string_match",
            "matrix_multiply",
            "pca",
            "kmeans",
            "word_count",
            "reverse_index",
            "ferret",
            "dedup",
            "canneal",
            "streamcluster",
            "swaptions",
            "ocean_cp",
            "lu_cb",
            "lu_ncb",
            "water_nsquared",
            "water_spatial",
            "radix",
            "dmt_server",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(workload_by_name("ferret").is_some());
        assert!(workload_by_name("doom").is_none());
    }

    #[test]
    fn suites_are_labelled() {
        for w in all_workloads() {
            assert!(
                ["phoenix", "parsec", "splash2", "server"].contains(&w.suite()),
                "{} has odd suite {}",
                w.name(),
                w.suite()
            );
        }
    }
}
