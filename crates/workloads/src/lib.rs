//! The benchmark kernels of the Consequence evaluation, plus the
//! `dmt_server` request-serving workload.
//!
//! The paper evaluates Phoenix, PARSEC and SPLASH-2 programs. Those code
//! bases interpose on pthreads; here each program is reimplemented against
//! the runtime-agnostic [`dmt_api`] interface with the synchronization and
//! sharing *pattern* the paper characterizes for it — embarrassingly
//! parallel scans, fork-join iteration, fine-grained bucket locking,
//! bounded-queue pipelines, and barrier-per-step scientific kernels. See
//! the per-suite modules for details.
//!
//! Every kernel ships a seeded input generator, a parallel implementation,
//! a sequential reference, and an output hash; harnesses and tests validate
//! the parallel result against the reference under every runtime.

pub mod kernels;
pub mod layout;
pub mod queue;
pub mod rng;
pub mod server;
pub mod spec;

pub use spec::{all_workloads, workload_by_name, Params, Prepared, Validation, Workload};
