//! Cache-line padding for hot per-thread slots.
//!
//! The fast-path scheduler gives every thread its own atomic publication
//! slot and its own wake parker. Without padding, neighbouring threads'
//! slots share a 64-byte cache line and every publication ping-pongs the
//! line between cores (false sharing) — exactly the cross-thread traffic
//! the lock-free design exists to avoid. [`CachePadded`] aligns a value to
//! a cache-line boundary so each padded slot owns its line.

use std::ops::{Deref, DerefMut};

/// Wraps a value in its own 64-byte cache line.
///
/// 64 bytes is the line size of every x86-64 and most AArch64 parts; on
/// machines with larger lines the padding is merely less effective, never
/// incorrect.
///
/// # Examples
///
/// ```
/// use dmt_api::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slots: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// assert_eq!(std::mem::align_of_val(&slots[0]), 64);
/// assert_eq!(std::mem::size_of_val(&slots[0]) % 64, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache-line boundary.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_line_aligned_and_line_sized() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 65]>>(), 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_slots_do_not_share_a_line() {
        let v: Vec<CachePadded<u64>> = vec![CachePadded::new(0), CachePadded::new(1)];
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= 64);
    }
}
