//! Resource witnessing: continuous memory-bound assertions for long runs.
//!
//! The paper's scalability story is only credible if the runtime's
//! bookkeeping stays *bounded* while the schedule grows: version chains
//! must be collected (Fig. 12), the page pool must recycle rather than
//! accumulate, clock histories must stay under their pruning watermark,
//! and a bounded trace ring must drop rather than grow. Each of those
//! bounds was asserted piecemeal by earlier work (the clock-history
//! watermark regression tests being the precedent); a [`ResourceWitness`]
//! generalizes them into one sampled invariant: the soak harness attaches
//! a witness through [`CommonConfig::witness`](crate::CommonConfig), the
//! runtime observes the four gauges at every commit epoch (and once at
//! teardown), and the witness records maxima and any bound violation.
//!
//! Witnessing is **observation-only**: it never changes virtual time or
//! the schedule, so it is deliberately *not* part of the options
//! fingerprint — a witnessed run records and replays interchangeably
//! with an unwitnessed one.

use std::sync::{Arc, Mutex};

/// Upper bounds the witness asserts on every sample. `usize::MAX` means
/// "not asserted" for that gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceBounds {
    /// Version-chain length: peak versions retained by the segment
    /// (including the intra-commit peak, before the collector trims).
    pub max_retained_versions: usize,
    /// Live 4 KiB pages allocated by the versioned heap and workspaces.
    pub max_live_pages: usize,
    /// Longest per-thread clock history on the scheduling table.
    pub max_clock_history: usize,
    /// Events resident in the attached trace sink (ring occupancy).
    pub max_trace_ring: usize,
    /// Commit-pipeline backlog: settle/GC jobs pending finalization plus
    /// pre-copied twins parked in workspace stashes (0 when the pipeline
    /// is off).
    pub max_pipeline_backlog: usize,
}

impl ResourceBounds {
    /// Bounds that assert nothing (gauges still recorded).
    pub fn unbounded() -> ResourceBounds {
        ResourceBounds {
            max_retained_versions: usize::MAX,
            max_live_pages: usize::MAX,
            max_clock_history: usize::MAX,
            max_trace_ring: usize::MAX,
            max_pipeline_backlog: usize::MAX,
        }
    }
}

/// One observation of the four gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceSample {
    /// Peak retained versions on the segment's version chains.
    pub retained_versions: usize,
    /// Live pages (heap versions + workspaces), tracker gauge.
    pub live_pages: usize,
    /// Longest per-thread clock history.
    pub clock_history: usize,
    /// Trace-sink ring occupancy (0 for non-buffering sinks).
    pub trace_ring: usize,
    /// Commit-pipeline backlog (pending settles + pre-twinned pages).
    pub pipeline_backlog: usize,
}

/// What a witnessed run observed: sample count, per-gauge maxima, and
/// the first few bound violations (described, deterministic text).
#[derive(Clone, Debug)]
pub struct WitnessSummary {
    /// The bounds that were asserted.
    pub bounds: ResourceBounds,
    /// Samples taken (≥ 1 for any completed witnessed run: the runtime
    /// samples at every commit and once at teardown).
    pub samples: u64,
    /// Per-gauge maxima over all samples.
    pub maxima: ResourceSample,
    /// Violation descriptions, at most [`ResourceWitness::MAX_RECORDED`]
    /// retained (the count keeps growing in `violation_count`).
    pub violations: Vec<String>,
    /// Total samples that violated at least one bound.
    pub violation_count: u64,
    /// Durable trace flushes the run performed (0 when recording was off
    /// or non-durable) — the gauge bounding how fresh a crash-salvaged
    /// prefix would be. Counters, not sampled gauges: they accumulate
    /// via [`ResourceWitness::record_durability`], never via `observe`.
    pub durable_flushes: u64,
    /// Event pages recovered by salvage operations this run performed
    /// (tooling-side; 0 for ordinary runs).
    pub salvaged_pages: u64,
}

impl WitnessSummary {
    /// Whether every sample stayed within every asserted bound.
    pub fn within_bounds(&self) -> bool {
        self.violation_count == 0
    }
}

#[derive(Debug, Default)]
struct WitnessState {
    samples: u64,
    maxima: ResourceSample,
    violations: Vec<String>,
    violation_count: u64,
    durable_flushes: u64,
    salvaged_pages: u64,
}

/// A sampled resource-bound monitor (see the module docs).
///
/// Shared by `Arc`: the harness keeps one clone to read the
/// [`summary`](ResourceWitness::summary) after the run, the runtime holds
/// another through its [`WitnessHandle`]. Violations are recorded, not
/// panicked — the harness decides whether a violation fails the run, so a
/// witness can never turn a passing workload into a mid-run abort.
#[derive(Debug)]
pub struct ResourceWitness {
    bounds: ResourceBounds,
    state: Mutex<WitnessState>,
}

impl ResourceWitness {
    /// Violation descriptions retained verbatim; later ones only count.
    pub const MAX_RECORDED: usize = 8;

    /// A witness asserting `bounds`.
    pub fn new(bounds: ResourceBounds) -> Arc<ResourceWitness> {
        Arc::new(ResourceWitness {
            bounds,
            state: Mutex::new(WitnessState::default()),
        })
    }

    /// Records one observation, updating maxima and checking every bound.
    pub fn observe(&self, s: ResourceSample) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        st.samples += 1;
        let sample_no = st.samples;
        st.maxima.retained_versions = st.maxima.retained_versions.max(s.retained_versions);
        st.maxima.live_pages = st.maxima.live_pages.max(s.live_pages);
        st.maxima.clock_history = st.maxima.clock_history.max(s.clock_history);
        st.maxima.trace_ring = st.maxima.trace_ring.max(s.trace_ring);
        st.maxima.pipeline_backlog = st.maxima.pipeline_backlog.max(s.pipeline_backlog);
        let checks = [
            (
                "retained_versions",
                s.retained_versions,
                self.bounds.max_retained_versions,
            ),
            ("live_pages", s.live_pages, self.bounds.max_live_pages),
            (
                "clock_history",
                s.clock_history,
                self.bounds.max_clock_history,
            ),
            ("trace_ring", s.trace_ring, self.bounds.max_trace_ring),
            (
                "pipeline_backlog",
                s.pipeline_backlog,
                self.bounds.max_pipeline_backlog,
            ),
        ];
        let mut violated = false;
        for (gauge, got, bound) in checks {
            if got > bound {
                violated = true;
                if st.violations.len() < Self::MAX_RECORDED {
                    st.violations.push(format!(
                        "sample #{sample_no}: {gauge} {got} > bound {bound}"
                    ));
                }
            }
        }
        if violated {
            st.violation_count += 1;
        }
    }

    /// Accumulates durability counters: `flushes` durable trace flushes
    /// and `salvaged_pages` pages recovered by salvage. Unlike `observe`
    /// these are monotone totals, not gauges — they never interact with
    /// the bounds.
    pub fn record_durability(&self, flushes: u64, salvaged_pages: u64) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        st.durable_flushes += flushes;
        st.salvaged_pages += salvaged_pages;
    }

    /// The bounds this witness asserts.
    pub fn bounds(&self) -> ResourceBounds {
        self.bounds
    }

    /// Snapshot of everything observed so far.
    pub fn summary(&self) -> WitnessSummary {
        let st = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        WitnessSummary {
            bounds: self.bounds,
            samples: st.samples,
            maxima: st.maxima,
            violations: st.violations.clone(),
            violation_count: st.violation_count,
            durable_flushes: st.durable_flushes,
            salvaged_pages: st.salvaged_pages,
        }
    }
}

/// The runtime-facing handle: off by default, so every sampling site
/// reduces to one branch and benchmark figures are unaffected.
#[derive(Clone, Debug, Default)]
pub struct WitnessHandle(Option<Arc<ResourceWitness>>);

impl WitnessHandle {
    /// No witnessing (the default).
    pub fn off() -> WitnessHandle {
        WitnessHandle(None)
    }

    /// Observe into `w`.
    pub fn to(w: Arc<ResourceWitness>) -> WitnessHandle {
        WitnessHandle(Some(w))
    }

    /// Whether a witness is attached (sampling sites gate on this).
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation (no-op when off).
    pub fn observe(&self, s: ResourceSample) {
        if let Some(w) = &self.0 {
            w.observe(s);
        }
    }

    /// Accumulates durability counters (no-op when off). See
    /// [`ResourceWitness::record_durability`].
    pub fn record_durability(&self, flushes: u64, salvaged_pages: u64) {
        if let Some(w) = &self.0 {
            w.record_durability(flushes, salvaged_pages);
        }
    }

    /// The attached witness's summary, if any.
    pub fn summary(&self) -> Option<WitnessSummary> {
        self.0.as_ref().map(|w| w.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxima_track_every_gauge_and_bounds_trip() {
        let w = ResourceWitness::new(ResourceBounds {
            max_retained_versions: 10,
            max_live_pages: usize::MAX,
            max_clock_history: 5,
            max_trace_ring: usize::MAX,
            max_pipeline_backlog: usize::MAX,
        });
        let h = WitnessHandle::to(Arc::clone(&w));
        h.observe(ResourceSample {
            retained_versions: 3,
            live_pages: 100,
            clock_history: 2,
            trace_ring: 7,
            pipeline_backlog: 4,
        });
        h.observe(ResourceSample {
            retained_versions: 11,
            live_pages: 50,
            clock_history: 9,
            trace_ring: 1,
            pipeline_backlog: 0,
        });
        let s = w.summary();
        assert_eq!(s.samples, 2);
        assert_eq!(s.maxima.retained_versions, 11);
        assert_eq!(s.maxima.live_pages, 100);
        assert_eq!(s.maxima.clock_history, 9);
        assert_eq!(s.maxima.trace_ring, 7);
        assert_eq!(s.maxima.pipeline_backlog, 4);
        // One violating sample, two violated gauges described.
        assert_eq!(s.violation_count, 1);
        assert_eq!(s.violations.len(), 2);
        assert!(s.violations[0].contains("retained_versions 11 > bound 10"));
        assert!(!s.within_bounds());
    }

    #[test]
    fn off_handle_is_inert_and_unbounded_never_trips() {
        let off = WitnessHandle::off();
        assert!(!off.enabled());
        off.observe(ResourceSample::default());
        assert!(off.summary().is_none());

        let w = ResourceWitness::new(ResourceBounds::unbounded());
        WitnessHandle::to(Arc::clone(&w)).observe(ResourceSample {
            retained_versions: usize::MAX,
            live_pages: usize::MAX,
            clock_history: usize::MAX,
            trace_ring: usize::MAX,
            pipeline_backlog: usize::MAX,
        });
        assert!(w.summary().within_bounds());
    }

    #[test]
    fn violation_descriptions_are_capped_but_counted() {
        let w = ResourceWitness::new(ResourceBounds {
            max_retained_versions: 0,
            ..ResourceBounds::unbounded()
        });
        for _ in 0..20 {
            w.observe(ResourceSample {
                retained_versions: 1,
                ..ResourceSample::default()
            });
        }
        let s = w.summary();
        assert_eq!(s.violation_count, 20);
        assert_eq!(s.violations.len(), ResourceWitness::MAX_RECORDED);
    }
}
