//! Run reports: virtual-time breakdowns and event counters.

use std::ops::AddAssign;
use std::time::Duration;

use crate::ids::Tid;
use crate::trace::EventCounts;

/// Where a thread's virtual cycles went.
///
/// The categories mirror Figure 15 of the paper: chunk execution, waiting
/// for the deterministic order (`determ_wait`), waiting at barriers
/// (`barrier_wait`, which the paper separates because it is not caused by
/// deterministic ordering), Conversion commit and update work, copy-on-write
/// fault handling, and general library overhead (token bookkeeping, counter
/// reads, wake-ups).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Useful work: `tick` cycles plus shared-memory access cycles.
    pub chunk: u64,
    /// Waiting imposed by the deterministic total order (token / turn).
    pub determ_wait: u64,
    /// Waiting for other threads to arrive at a barrier.
    pub barrier_wait: u64,
    /// Committing dirty pages (including merges).
    pub commit: u64,
    /// Applying remote versions to the local workspace.
    pub update: u64,
    /// Copy-on-write page faults.
    pub fault: u64,
    /// Library overhead: token ops, counter reads, publications, wake-ups.
    pub lib: u64,
}

impl Breakdown {
    /// Total virtual cycles across all categories.
    pub fn total(&self) -> u64 {
        self.chunk
            + self.determ_wait
            + self.barrier_wait
            + self.commit
            + self.update
            + self.fault
            + self.lib
    }

    /// Non-`chunk` cycles: everything determinism added on top of the work.
    pub fn overhead(&self) -> u64 {
        self.total() - self.chunk
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, o: Breakdown) {
        self.chunk += o.chunk;
        self.determ_wait += o.determ_wait;
        self.barrier_wait += o.barrier_wait;
        self.commit += o.commit;
        self.update += o.update;
        self.fault += o.fault;
        self.lib += o.lib;
    }
}

/// Event counters accumulated across all threads of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Commit operations performed.
    pub commits: u64,
    /// Dirty pages published by commits.
    pub pages_committed: u64,
    /// Pages that needed a byte-granularity merge at commit.
    pub pages_merged: u64,
    /// Pages applied by updates — the paper's "pages propagated under TSO".
    pub pages_propagated: u64,
    /// Copy-on-write faults taken.
    pub faults: u64,
    /// Global-token acquisitions.
    pub token_acquisitions: u64,
    /// Logical-clock publications (counter overflows / chunk-end reads).
    pub publications: u64,
    /// Deterministic mutex acquisitions.
    pub lock_acquires: u64,
    /// Barrier-wait operations.
    pub barrier_waits: u64,
    /// Condition-variable waits.
    pub cond_waits: u64,
    /// Threads spawned.
    pub spawns: u64,
    /// Spawns satisfied from the §3.3 thread pool.
    pub pool_hits: u64,
    /// Chunks executed (regions between commits).
    pub chunks: u64,
    /// Chunks that were coarsened into a preceding chunk (§3.1).
    pub coarsened_chunks: u64,
    /// Pages an LRC system would have propagated (§5.3 estimator);
    /// zero unless LRC tracking was enabled.
    pub lrc_pages_propagated: u64,
    /// Versions dropped outright by the version-chain collector.
    pub gc_versions_dropped: u64,
    /// Version pairs squashed (compacted) by the collector while pinned by
    /// a lagging workspace.
    pub gc_versions_squashed: u64,
    /// Page allocations served from the freed-page recycle pool instead of
    /// the system allocator.
    pub page_pool_hits: u64,
    /// Iterations of the token wait loop (one per wake-up, spurious or
    /// not). `token_wake_loops / token_acquisitions` is the wakeups-per-
    /// grant fan-out: ~1 under targeted handoff, up to T under broadcast.
    pub token_wake_loops: u64,
    /// Targeted single-thread wake-ups sent (fast-path scheduler).
    pub targeted_wakes: u64,
    /// Broadcast `notify_all` wake-ups sent on the token path (reference
    /// scheduler, or fast-path fallback).
    pub broadcast_wakes: u64,
    /// Pages whose byte merge was deferred to the commit pipeline's
    /// settle pool (published as unsettled shells). Deterministic: a pure
    /// function of the schedule's merge decisions.
    pub settle_pages_deferred: u64,
    /// Copy-on-write faults served from a pre-copied twin prepared by the
    /// settle pool. Wall-clock-dependent (racy by design): the predictor
    /// only saves the copy, never changes charging.
    pub pretwin_hits: u64,
    /// Pre-copied twins that were stale or unused at fault time.
    pub pretwin_misses: u64,
}

impl AddAssign for Counters {
    fn add_assign(&mut self, o: Counters) {
        self.commits += o.commits;
        self.pages_committed += o.pages_committed;
        self.pages_merged += o.pages_merged;
        self.pages_propagated += o.pages_propagated;
        self.faults += o.faults;
        self.token_acquisitions += o.token_acquisitions;
        self.publications += o.publications;
        self.lock_acquires += o.lock_acquires;
        self.barrier_waits += o.barrier_waits;
        self.cond_waits += o.cond_waits;
        self.spawns += o.spawns;
        self.pool_hits += o.pool_hits;
        self.chunks += o.chunks;
        self.coarsened_chunks += o.coarsened_chunks;
        self.lrc_pages_propagated += o.lrc_pages_propagated;
        self.gc_versions_dropped += o.gc_versions_dropped;
        self.gc_versions_squashed += o.gc_versions_squashed;
        self.page_pool_hits += o.page_pool_hits;
        self.token_wake_loops += o.token_wake_loops;
        self.targeted_wakes += o.targeted_wakes;
        self.broadcast_wakes += o.broadcast_wakes;
        self.settle_pages_deferred += o.settle_pages_deferred;
        self.pretwin_hits += o.pretwin_hits;
        self.pretwin_misses += o.pretwin_misses;
    }
}

/// Result of one [`crate::Runtime::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Critical-path execution time in virtual cycles: the maximum over all
    /// threads of their final virtual clock. Deterministic for DMT runtimes
    /// (with adaptive overflow notification disabled); noisy for pthreads,
    /// exactly as wall-clock would be.
    pub virtual_cycles: u64,
    /// Real elapsed time of the run on the (single-core) host. Reported for
    /// transparency only; see `DESIGN.md`.
    pub wall: Duration,
    /// Aggregate virtual-time breakdown over all threads.
    pub breakdown: Breakdown,
    /// Per-thread breakdowns, indexed by spawn order.
    pub per_thread: Vec<(Tid, Breakdown)>,
    /// Aggregate event counters.
    pub counters: Counters,
    /// Peak number of distinct live pages across all versions and
    /// workspaces (× 4 KiB = the paper's Figure 12 peak memory). Zero for
    /// runtimes without versioned memory (pthreads).
    pub peak_pages: usize,
    /// FNV-1a digest of the committed-version log
    /// `(committer, version id, page ids)`*: two deterministic runs must
    /// agree on this. Zero for pthreads.
    pub commit_log_hash: u64,
    /// Incremental FNV-1a digest of the run's deterministic event order
    /// (see [`crate::trace`]). Bit-identical across runs for deterministic
    /// runtimes when a hashing sink is attached; 0 when tracing is off.
    /// For pthreads it varies run to run — that variance is the point.
    pub schedule_hash: u64,
    /// Per-category trace event counts (zeroes when tracing is off).
    pub events: EventCounts,
    /// Number of threads that ran (including the main job).
    pub threads: u32,
    /// Master seed of the fault-injection plan active during the run
    /// (see [`crate::perturb`]); 0 when no perturber was attached. Makes
    /// stress artifacts self-describing: the report alone reproduces the
    /// run.
    pub perturb_seed: u64,
    /// FNV-1a digest of the active fault-injection plan (identifies shrunk
    /// plans, whose master seed alone is ambiguous); 0 when off.
    pub perturb_plan: u64,
    /// Workload panics contained during the run, `(tid, message)` in
    /// deterministic containment (token-grant) order. Empty for a clean
    /// run; runtimes without containment leave it empty too (the panic
    /// propagates instead).
    pub panics: Vec<(Tid, String)>,
    /// The watchdog's diagnosis when the run was torn down for lack of
    /// logical progress (deadlock / wedged holder); `None` for a run that
    /// finished on its own.
    pub fault: Option<String>,
    /// Whether a fast-scheduler invariant violation forced a mid-run
    /// failover to the reference scheduler. The schedule stays correct
    /// (and hash-identical) — only performance degrades.
    pub degraded: bool,
    /// First-divergent-event diagnosis when this run replayed a recorded
    /// trace and split from it (rendered via [`crate::trace::Divergence`]);
    /// `None` for ordinary runs and for replays that matched exactly.
    pub replay_divergence: Option<String>,
}

impl RunReport {
    /// Breakdown of a single thread, if it exists.
    pub fn thread_breakdown(&self, tid: Tid) -> Option<&Breakdown> {
        self.per_thread
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, b)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_overhead() {
        let b = Breakdown {
            chunk: 100,
            determ_wait: 20,
            barrier_wait: 5,
            commit: 10,
            update: 3,
            fault: 2,
            lib: 1,
        };
        assert_eq!(b.total(), 141);
        assert_eq!(b.overhead(), 41);
    }

    #[test]
    fn breakdown_add_assign_sums_fields() {
        let mut a = Breakdown {
            chunk: 1,
            ..Breakdown::default()
        };
        a += Breakdown {
            chunk: 2,
            lib: 7,
            ..Breakdown::default()
        };
        assert_eq!(a.chunk, 3);
        assert_eq!(a.lib, 7);
    }

    #[test]
    fn counters_add_assign_sums_fields() {
        let mut a = Counters::default();
        a += Counters {
            commits: 4,
            faults: 2,
            ..Counters::default()
        };
        a += Counters {
            commits: 1,
            ..Counters::default()
        };
        assert_eq!(a.commits, 5);
        assert_eq!(a.faults, 2);
    }

    #[test]
    fn thread_breakdown_lookup() {
        let r = RunReport {
            virtual_cycles: 0,
            wall: Duration::ZERO,
            breakdown: Breakdown::default(),
            per_thread: vec![(Tid(0), Breakdown::default())],
            counters: Counters::default(),
            peak_pages: 0,
            commit_log_hash: 0,
            schedule_hash: 0,
            events: EventCounts::default(),
            threads: 1,
            perturb_seed: 0,
            perturb_plan: 0,
            panics: Vec::new(),
            fault: None,
            degraded: false,
            replay_divergence: None,
        };
        assert!(r.thread_breakdown(Tid(0)).is_some());
        assert!(r.thread_breakdown(Tid(1)).is_none());
    }
}
