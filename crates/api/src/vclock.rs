//! Vector clocks for the §5.3 happens-before study.
//!
//! Consequence itself needs no vector clocks (TSO commits are global); they
//! exist to *estimate* what a lazy-release-consistency system would have
//! propagated (Figure 16). Committed versions and synchronization objects
//! are tagged with these clocks.

use crate::ids::Tid;

/// A fixed-width vector clock, one component per potential thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// A zero clock for `n` threads.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component for thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn get(&self, t: Tid) -> u64 {
        self.0[t.index()]
    }

    /// Increments thread `t`'s own component and returns its new value.
    pub fn tick(&mut self, t: Tid) -> u64 {
        self.0[t.index()] += 1;
        self.0[t.index()]
    }

    /// Joins `other` into `self` (component-wise max).
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self` happened-before-or-equals `other` (component-wise ≤).
    pub fn leq(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut v = VectorClock::new(3);
        assert_eq!(v.tick(Tid(1)), 1);
        assert_eq!(v.tick(Tid(1)), 2);
        assert_eq!(v.get(Tid(1)), 2);
        assert_eq!(v.get(Tid(0)), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.tick(Tid(0));
        a.tick(Tid(0));
        let mut b = VectorClock::new(3);
        b.tick(Tid(2));
        a.join(&b);
        assert_eq!(a.get(Tid(0)), 2);
        assert_eq!(a.get(Tid(2)), 1);
    }

    #[test]
    fn leq_is_partial_order() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        assert!(a.leq(&b) && b.leq(&a));
        a.tick(Tid(0));
        b.tick(Tid(1));
        // Concurrent: neither ≤ the other.
        assert!(!a.leq(&b) && !b.leq(&a));
        b.join(&a);
        assert!(a.leq(&b));
    }
}
