//! The per-thread execution context.

use crate::error::DmtResult;
use crate::ids::{Addr, BarrierId, CondId, MutexId, RwLockId, Tid};

/// A unit of work executed by one thread of a DMT program.
pub type Job = Box<dyn FnOnce(&mut dyn ThreadCtx) + Send + 'static>;

/// Per-thread handle through which workload code interacts with a runtime.
///
/// All shared state — memory, locks, condition variables, barriers, thread
/// management — is reached through this trait, which is what lets one
/// benchmark kernel run under five different runtimes.
///
/// # Instruction accounting
///
/// Deterministic runtimes order synchronization by a logical clock of
/// retired user instructions (Kendo-style). The paper reads hardware
/// performance counters; here workloads declare their work explicitly with
/// [`tick`](ThreadCtx::tick) (the paper notes compiler-inserted counting is
/// an equally sound clock source). Shared-memory accesses advance the clock
/// automatically. Runtime-internal work never advances the logical clock
/// (the paper's `clockPause`) but is charged to virtual time.
///
/// # Determinism contract
///
/// Under a deterministic runtime, for a fixed program, input and thread
/// count: thread ids, all synchronization outcomes, every value read from
/// shared memory, and the final heap contents are identical on every run —
/// even for programs with data races (resolved by deterministic
/// byte-granularity last-writer-wins merging).
///
/// # Panics
///
/// Implementations panic on API misuse — out-of-bounds addresses, unlocking
/// a mutex the thread does not hold, waiting on a condition variable without
/// holding the named mutex, or joining an unknown thread. Misuse is a
/// program bug, mirroring undefined behaviour in pthreads.
pub trait ThreadCtx {
    /// This thread's deterministic id.
    fn tid(&self) -> Tid;

    /// Declares `n` logical instructions of local work. Advances both the
    /// deterministic logical clock and virtual time.
    fn tick(&mut self, n: u64);

    /// Current virtual time of this thread, in cycles.
    fn vtime(&self) -> u64;

    /// Current logical (deterministic) clock of this thread.
    fn logical_clock(&self) -> u64;

    /// Reads `buf.len()` bytes of shared memory at `addr`.
    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]);

    /// Writes `data` to shared memory at `addr`.
    fn write_bytes(&mut self, addr: Addr, data: &[u8]);

    /// Reads a little-endian `u64` at `addr` (need not be aligned).
    fn ld_u64(&mut self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr` (need not be aligned).
    fn st_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Acquires a deterministic mutex, blocking until available.
    fn mutex_lock(&mut self, m: MutexId);

    /// Fallible [`mutex_lock`](ThreadCtx::mutex_lock): returns
    /// `Err(DmtError::MutexPoisoned)` if a previous owner panicked while
    /// holding `m`, instead of unwinding. Runtimes without poisoning
    /// semantics fall back to the infallible path and return `Ok(())`.
    fn try_mutex_lock(&mut self, m: MutexId) -> DmtResult<()> {
        self.mutex_lock(m);
        Ok(())
    }

    /// Releases a deterministic mutex held by this thread.
    fn mutex_unlock(&mut self, m: MutexId);

    /// Atomically releases `m` and blocks on `c`; re-acquires `m` before
    /// returning. The calling thread must hold `m`.
    fn cond_wait(&mut self, c: CondId, m: MutexId);

    /// Fallible [`cond_wait`](ThreadCtx::cond_wait): returns
    /// `Err(DmtError::CondOwnerDied)` if the wait was aborted because the
    /// owner of `m` panicked (the mutex is then poisoned and is *not*
    /// re-acquired). Runtimes without poisoning fall back to the
    /// infallible path and return `Ok(())`.
    fn try_cond_wait(&mut self, c: CondId, m: MutexId) -> DmtResult<()> {
        self.cond_wait(c, m);
        Ok(())
    }

    /// Wakes one waiter of `c` (deterministically the earliest), if any.
    fn cond_signal(&mut self, c: CondId);

    /// Wakes all waiters of `c`.
    fn cond_broadcast(&mut self, c: CondId);

    /// Waits at barrier `b` until all parties have arrived.
    fn barrier_wait(&mut self, b: BarrierId);

    /// Acquires `l` for shared reading; concurrent readers are allowed.
    fn rw_read_lock(&mut self, l: RwLockId) {
        let _ = l;
        unimplemented!("this runtime does not provide read-write locks")
    }

    /// Releases a shared-read hold on `l`.
    fn rw_read_unlock(&mut self, l: RwLockId) {
        let _ = l;
        unimplemented!("this runtime does not provide read-write locks")
    }

    /// Acquires `l` exclusively for writing.
    fn rw_write_lock(&mut self, l: RwLockId) {
        let _ = l;
        unimplemented!("this runtime does not provide read-write locks")
    }

    /// Releases an exclusive hold on `l`.
    fn rw_write_unlock(&mut self, l: RwLockId) {
        let _ = l;
        unimplemented!("this runtime does not provide read-write locks")
    }

    /// Atomically adds `v` to the `u64` at `addr`, returning the previous
    /// value.
    ///
    /// §2.7 of the Consequence paper notes that plain atomic instructions
    /// lose their atomicity under thread isolation and proposes replacing
    /// them with "a Consequence operation that acquires the token, performs
    /// the operation, and commits". This is that operation: deterministic
    /// runtimes implement it as a token-protected read-modify-write on the
    /// latest committed state, restoring both atomicity and determinism.
    /// The default implementation is a plain (non-atomic) RMW for contexts
    /// that are sequential anyway.
    fn atomic_fetch_add_u64(&mut self, addr: Addr, v: u64) -> u64 {
        let old = self.ld_u64(addr);
        self.st_u64(addr, old.wrapping_add(v));
        old
    }

    /// Atomically compares the `u64` at `addr` with `expect` and, on a
    /// match, stores `new`. Returns the previous value (compare with
    /// `expect` to detect success). See
    /// [`atomic_fetch_add_u64`](ThreadCtx::atomic_fetch_add_u64).
    fn atomic_cas_u64(&mut self, addr: Addr, expect: u64, new: u64) -> u64 {
        let old = self.ld_u64(addr);
        if old == expect {
            self.st_u64(addr, new);
        }
        old
    }

    /// Spawns a new thread running `job`; returns its deterministic id.
    fn spawn(&mut self, job: Job) -> Tid;

    /// Blocks until thread `t` has finished.
    fn join(&mut self, t: Tid);

    /// Fallible [`join`](ThreadCtx::join): returns
    /// `Err(DmtError::ThreadPanicked)` if `t` panicked, at the same
    /// deterministic schedule point where the join would have succeeded.
    /// Runtimes without panic containment fall back to the infallible path
    /// and return `Ok(())`.
    fn try_join(&mut self, t: Tid) -> DmtResult<()> {
        self.join(t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal mock proving the trait is object-safe and that the default
    /// `ld_u64`/`st_u64` round-trip through the byte interface.
    struct Mock {
        mem: Vec<u8>,
        clock: u64,
    }

    impl ThreadCtx for Mock {
        fn tid(&self) -> Tid {
            Tid(0)
        }
        fn tick(&mut self, n: u64) {
            self.clock += n;
        }
        fn vtime(&self) -> u64 {
            self.clock
        }
        fn logical_clock(&self) -> u64 {
            self.clock
        }
        fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
            buf.copy_from_slice(&self.mem[addr..addr + buf.len()]);
        }
        fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
            self.mem[addr..addr + data.len()].copy_from_slice(data);
        }
        fn mutex_lock(&mut self, _: MutexId) {}
        fn mutex_unlock(&mut self, _: MutexId) {}
        fn cond_wait(&mut self, _: CondId, _: MutexId) {}
        fn cond_signal(&mut self, _: CondId) {}
        fn cond_broadcast(&mut self, _: CondId) {}
        fn barrier_wait(&mut self, _: BarrierId) {}
        fn spawn(&mut self, _: Job) -> Tid {
            Tid(1)
        }
        fn join(&mut self, _: Tid) {}
    }

    #[test]
    fn default_u64_accessors_round_trip() {
        let mut m = Mock {
            mem: vec![0; 64],
            clock: 0,
        };
        let ctx: &mut dyn ThreadCtx = &mut m;
        ctx.st_u64(8, 0xdead_beef_cafe_f00d);
        assert_eq!(ctx.ld_u64(8), 0xdead_beef_cafe_f00d);
        // Unaligned round trip.
        ctx.st_u64(3, 42);
        assert_eq!(ctx.ld_u64(3), 42);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut m = Mock {
            mem: vec![0; 8],
            clock: 0,
        };
        let ctx: &mut dyn ThreadCtx = &mut m;
        ctx.tick(5);
        assert_eq!(ctx.logical_clock(), 5);
    }
}
