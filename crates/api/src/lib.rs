//! Runtime-agnostic API for deterministic multithreading (DMT) runtimes.
//!
//! This crate defines the contract shared by every runtime in the
//! Consequence reproduction: the nondeterministic pthreads baseline, the
//! DThreads and DWC baselines, and Consequence itself (round-robin and
//! instruction-count ordered). A benchmark kernel is written once against
//! [`ThreadCtx`] / [`Runtime`] and runs unmodified under all five.
//!
//! # Model
//!
//! A program is a [`Job`] — a closure receiving a [`ThreadCtx`] — started by
//! [`Runtime::run`]. Jobs may spawn further jobs, synchronize through
//! mutexes / condition variables / barriers created before the run, and
//! share a flat byte-addressable heap accessed through the context.
//!
//! Time is **virtual**: each thread accrues virtual cycles for the work it
//! declares via [`ThreadCtx::tick`], for its memory accesses, and for the
//! runtime-internal operations priced by a [`CostModel`]. Blocking
//! propagates virtual time along wake edges, so the reported
//! [`RunReport::virtual_cycles`] is the critical-path execution time on an
//! idealized machine with one core per thread. See `DESIGN.md` at the
//! workspace root for the rationale (the evaluation host is single-core).
//!
//! # Observability
//!
//! The [`trace`] module records the deterministic total order itself:
//! runtimes emit compact [`trace::Event`]s (token grants, lock tickets,
//! barrier generations, commit page-sets, …) through a [`TraceHandle`]
//! carried in [`CommonConfig`]. A [`trace::HashSink`] folds the schedule
//! into the incremental FNV-1a [`RunReport::schedule_hash`] — two runs of
//! a deterministic runtime must agree on it bit-for-bit — and
//! [`trace::diagnose`] pinpoints the first divergent event when they do
//! not. See `docs/DETERMINISM.md` at the workspace root.
//!
//! The [`perturb`] module is the adversarial counterpart: a seeded fault
//! injector carried as a [`PerturbHandle`] in [`CommonConfig`]. Runtimes
//! fire its hook points at timing-sensitive moments; the `dmt-stress`
//! harness then asserts the schedule hash never moves. See
//! `docs/STRESS.md`.

pub mod cost;
pub mod ctx;
pub mod error;
pub mod hash;
pub mod ids;
pub mod mem;
pub mod pad;
pub mod perturb;
pub mod report;
pub mod runtime;
pub mod sync;
pub mod trace;
pub mod vclock;
pub mod witness;

pub use cost::CostModel;
pub use ctx::{Job, ThreadCtx};
pub use error::{ContainedError, DmtError, DmtResult};
pub use hash::Fnv1a;
pub use ids::{Addr, BarrierId, CondId, DomainId, MutexId, RwLockId, Tid};
pub use mem::{MemExt, RuntimeMemExt};
pub use pad::CachePadded;
pub use perturb::{
    FixedPanic, InjectedPanic, IoFaultKind, IoFaultPlan, PanicSite, PerturbEntry, PerturbHandle,
    PerturbPlan, PerturbSite, Perturber, PlanPerturber,
};
pub use report::{Breakdown, Counters, RunReport};
pub use runtime::{CommonConfig, Runtime};
pub use trace::{
    Divergence, Event, EventCounts, EventKind, HashSink, MemorySink, NullSink, TraceHandle,
    TraceSink,
};
pub use vclock::VectorClock;
pub use witness::{ResourceBounds, ResourceSample, ResourceWitness, WitnessHandle, WitnessSummary};

/// Page size used by every versioned-memory runtime, in bytes.
///
/// This mirrors the 4 KiB hardware page granularity at which the paper's
/// Conversion kernel module tracks modifications.
pub const PAGE_SIZE: usize = 4096;
