//! Identifier types shared by all runtimes.

use std::fmt;

/// A byte address within a runtime's shared heap.
pub type Addr = usize;

/// Deterministic thread identifier.
///
/// Thread ids are assigned in spawn order under the runtime's deterministic
/// total order of synchronization operations, so a given program always sees
/// the same ids. The main job is always `Tid(0)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u32);

impl Tid {
    /// Main-thread id.
    pub const MAIN: Tid = Tid(0);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Deterministic token-domain identifier.
///
/// A *domain* is one independently tokened partition of the runtime: its
/// own logical-clock table, its own global token, its own deterministic
/// total order of synchronization. The unsharded runtimes run everything
/// in [`DomainId::ROOT`]; the `dmt-shard` subsystem assigns each shard a
/// distinct domain so schedule hashes and recorded traces distinguish
/// per-shard interleavings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The root (unsharded) domain. Events in this domain hash and encode
    /// exactly as they did before domains existed, so single-domain
    /// schedule hashes and recorded traces are stable across versions.
    pub const ROOT: DomainId = DomainId(0);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

macro_rules! object_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

object_id!(
    /// Handle to a runtime mutex created with [`crate::Runtime::create_mutex`].
    MutexId
);
object_id!(
    /// Handle to a runtime condition variable created with
    /// [`crate::Runtime::create_cond`].
    CondId
);
object_id!(
    /// Handle to a runtime barrier created with
    /// [`crate::Runtime::create_barrier`].
    BarrierId
);
object_id!(
    /// Handle to a runtime read-write lock created with
    /// [`crate::Runtime::create_rwlock`].
    RwLockId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_ordering_is_numeric() {
        assert!(Tid(1) < Tid(2));
        assert_eq!(Tid::MAIN, Tid(0));
        assert_eq!(Tid(7).index(), 7);
    }

    #[test]
    fn domain_ids_order_and_index() {
        assert_eq!(DomainId::ROOT, DomainId(0));
        assert!(DomainId(1) < DomainId(2));
        assert_eq!(DomainId(5).index(), 5);
        assert_eq!(DomainId(2).to_string(), "D2");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tid(3).to_string(), "T3");
        assert_eq!(MutexId(4).to_string(), "MutexId(4)");
        assert_eq!(CondId(0).to_string(), "CondId(0)");
        assert_eq!(BarrierId(9).to_string(), "BarrierId(9)");
    }

    #[test]
    fn ids_are_hashable_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(MutexId(1), "a");
        assert_eq!(m[&MutexId(1)], "a");
    }
}
