//! Seeded fault injection: the adversarial half of the determinism
//! contract.
//!
//! The paper's central claim (§2.1, §3.5) is that a Consequence schedule is
//! a pure function of the program — invariant under arbitrary *physical*
//! timing. [`crate::trace`] records that schedule; this module attacks it.
//! Runtimes carry a [`PerturbHandle`] in [`crate::CommonConfig`] and call
//! [`PerturbHandle::hit`] at their timing-sensitive hook points
//! (pre-token-acquire, commit/update, page faults, barrier phases, …). An
//! attached [`Perturber`] then injects both
//!
//! 1. **real delays** — OS yields, spin waits, occasional micro-sleeps —
//!    which shuffle the physical interleaving of runtime threads, and
//! 2. **virtual-time charges** — returned cycles the caller books as
//!    library overhead — which stress the cost model's wake-time
//!    propagation,
//!
//! plus forced early/late counter-overflow publication
//! ([`Perturber::overflow_interval`]) and spurious condition-variable
//! wake-ups ([`Perturber::spurious_wake`]).
//!
//! None of these may move a deterministic runtime's schedule hash: token
//! grant order is a function of logical clocks and thread ids only (see
//! `det-clock`'s `ClockTable::eligible`), virtual time `v` feeds only
//! wake-time bookkeeping, and publications are auxiliary (counted, never
//! hashed) events. The `dmt-stress` harness turns that argument into an
//! executable oracle: for every perturbation seed the schedule hash must be
//! bit-identical to the unperturbed run. See `docs/STRESS.md`.
//!
//! The default handle is off; every hook site then costs one branch, so
//! benchmark figures are unaffected.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::hash::Fnv1a;
use crate::ids::Tid;

/// An injection point inside a runtime.
///
/// Sites identify *where* in the runtime a perturbation fires, so plans can
/// be shrunk site-by-site to a minimal reproducer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PerturbSite {
    /// Just before a thread queues for the global token / RR turn.
    TokenAcquire,
    /// Counter-overflow publication timing (early/late interval bias).
    Overflow,
    /// Before committing dirty pages to the version chain.
    Commit,
    /// Before applying remote versions to the local workspace.
    Update,
    /// On a copy-on-write page fault.
    Fault,
    /// At barrier arrival / departure phase edges.
    Barrier,
    /// Spurious condition-variable / wake-flag notification attempts.
    CondWake,
    /// DThreads fence phase edges (arrival, serial turn, parallel resume).
    Fence,
    /// pthreads lock paths — stirs the negative control's OS scheduling.
    LockPath,
}

impl PerturbSite {
    /// Every site, in declaration order.
    pub const ALL: [PerturbSite; 9] = [
        PerturbSite::TokenAcquire,
        PerturbSite::Overflow,
        PerturbSite::Commit,
        PerturbSite::Update,
        PerturbSite::Fault,
        PerturbSite::Barrier,
        PerturbSite::CondWake,
        PerturbSite::Fence,
        PerturbSite::LockPath,
    ];

    /// Stable lowercase name (used in reports and reproducers).
    pub fn name(self) -> &'static str {
        match self {
            PerturbSite::TokenAcquire => "token_acquire",
            PerturbSite::Overflow => "overflow",
            PerturbSite::Commit => "commit",
            PerturbSite::Update => "update",
            PerturbSite::Fault => "fault",
            PerturbSite::Barrier => "barrier",
            PerturbSite::CondWake => "cond_wake",
            PerturbSite::Fence => "fence",
            PerturbSite::LockPath => "lock_path",
        }
    }

    /// Parses [`PerturbSite::name`] back into a site.
    pub fn by_name(name: &str) -> Option<PerturbSite> {
        PerturbSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for PerturbSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload-visible operation at which a panic can be injected.
///
/// Unlike [`PerturbSite`] hook points — which may only move *real* time —
/// panic injection kills the calling thread at a deterministic point in
/// its own instruction stream (the N-th lock / barrier / commit *that
/// thread* performs). The resulting death is therefore itself a
/// deterministic event, and the runtime's containment of it (poison
/// delivery, token reclamation, `ThreadPanicked` joins) must reproduce
/// bit-identical surviving-thread schedules across reruns of the same
/// seed. See `docs/ROBUSTNESS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PanicSite {
    /// On entry to `mutex_lock` (the injected thread may already hold
    /// other mutexes — the poison path).
    Lock,
    /// On entry to `barrier_wait` (kills a barrier party — the broken-
    /// barrier path).
    Barrier,
    /// On entry to a commit (the injected thread holds the global token —
    /// the token-reclamation path).
    Commit,
}

impl PanicSite {
    /// Every site, in declaration order.
    pub const ALL: [PanicSite; 3] = [PanicSite::Lock, PanicSite::Barrier, PanicSite::Commit];

    /// Stable lowercase name (used in reports and reproducers).
    pub fn name(self) -> &'static str {
        match self {
            PanicSite::Lock => "lock",
            PanicSite::Barrier => "barrier",
            PanicSite::Commit => "commit",
        }
    }

    /// Stable 1-based wire code, as stored in trace metadata (0 there
    /// means "no injected panic", so codes start at 1).
    pub fn code(self) -> u64 {
        self as u64 + 1
    }

    /// Parses a [`code`](PanicSite::code) back into a site. `Some` only
    /// for codes this build knows.
    pub fn from_code(code: u64) -> Option<PanicSite> {
        match code {
            0 => None,
            n => PanicSite::ALL.get(n as usize - 1).copied(),
        }
    }
}

impl fmt::Display for PanicSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unwind payload of an injected panic, so harnesses can tell their own
/// injected deaths apart from genuine workload bugs.
#[derive(Clone, Debug)]
pub struct InjectedPanic {
    /// The site class the panic fired at.
    pub site: PanicSite,
    /// Which occurrence on the dying thread (0-based).
    pub nth: u64,
}

impl fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected panic at {} #{}", self.site, self.nth)
    }
}

/// A fault injector attached to a runtime.
///
/// Implementations may sleep, yield or spin inside [`hit`](Perturber::hit)
/// (that is the point), and must be callable concurrently from every
/// runtime thread. They must **never** touch logical clocks or any other
/// schedule-ordering input — only real time and the returned virtual-cycle
/// charge.
pub trait Perturber: Send + Sync {
    /// Fires the injection point `site` on thread `tid`. Performs any real
    /// delay internally and returns virtual cycles the caller should charge
    /// to the thread as library overhead (0 = no charge).
    fn hit(&self, site: PerturbSite, tid: Tid) -> u64;

    /// Biases the next counter-overflow interval (§3.2): given the
    /// policy-chosen `interval`, returns the interval to actually use
    /// (forced early when smaller, late when larger). Must be ≥ 1.
    fn overflow_interval(&self, tid: Tid, interval: u64) -> u64 {
        let _ = tid;
        interval
    }

    /// Whether the caller should issue a spurious wake-up now (condvar
    /// broadcast / wake-flag notify with no state change). Waiters must
    /// re-check their predicates and go back to sleep.
    fn spurious_wake(&self, tid: Tid) -> bool {
        let _ = tid;
        false
    }

    /// Whether thread `tid` should panic now, at its `nth` (0-based)
    /// operation of class `site`. Decisions must be a pure function of
    /// `(site, tid, nth)` — never of real time or a shared draw counter —
    /// so the injected death lands at the same point in the dying thread's
    /// instruction stream on every rerun. Default: never.
    fn panic_at(&self, site: PanicSite, tid: Tid, nth: u64) -> bool {
        let _ = (site, tid, nth);
        false
    }

    /// Master seed of the driving plan (0 when not plan-driven).
    fn seed(&self) -> u64 {
        0
    }

    /// FNV-1a digest of the driving plan (0 when not plan-driven).
    fn plan_digest(&self) -> u64 {
        0
    }

    /// The single `(site, victim, nth)` panic this perturber injects, if
    /// it injects exactly one. Recorders stamp this into trace metadata
    /// so a salvaged crashed run carries its own panic reproducer;
    /// perturbers that inject no panics (the default) or more than one
    /// return `None`.
    fn panic_triple(&self) -> Option<(PanicSite, Tid, u64)> {
        None
    }
}

/// A [`Perturber`] injecting exactly one predetermined panic — thread
/// `victim` dies at its `nth` operation of class `site` — while
/// delegating every timing decision to an inner perturber. This is the
/// executor replay builds from a trace's recorded panic triple: the
/// replayed run re-injects the same deterministic death the recording
/// contained.
pub struct FixedPanic {
    /// Operation class the panic fires at.
    pub site: PanicSite,
    /// The thread that dies.
    pub victim: Tid,
    /// 0-based occurrence index on the victim.
    pub nth: u64,
    /// Timing perturber everything else is delegated to
    /// ([`PerturbHandle::off`] for an unperturbed recording).
    pub inner: PerturbHandle,
}

impl Perturber for FixedPanic {
    fn hit(&self, site: PerturbSite, tid: Tid) -> u64 {
        self.inner.hit(site, tid)
    }

    fn overflow_interval(&self, tid: Tid, interval: u64) -> u64 {
        self.inner.overflow_interval(tid, interval)
    }

    fn spurious_wake(&self, tid: Tid) -> bool {
        self.inner.spurious_wake(tid)
    }

    fn panic_at(&self, site: PanicSite, tid: Tid, nth: u64) -> bool {
        site == self.site && tid == self.victim && nth == self.nth
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn plan_digest(&self) -> u64 {
        self.inner.plan_digest()
    }

    fn panic_triple(&self) -> Option<(PanicSite, Tid, u64)> {
        Some((self.site, self.victim, self.nth))
    }
}

/// One enabled injection site in a [`PerturbPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerturbEntry {
    /// Which hook points this entry drives.
    pub site: PerturbSite,
    /// Per-site seed for the LCG draw stream.
    pub seed: u64,
    /// Intensity 0..=3: scales the virtual-cycle charge bound.
    pub intensity: u8,
}

/// A shrinkable fault-injection plan: the set of enabled sites with their
/// seeds. The `dmt-stress` shrinker minimizes a failing plan by deleting
/// entries (bisection over sites) and then canonicalizing the per-site
/// seeds, so a reproducer is "this plan, this workload, this runtime".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerturbPlan {
    /// The master seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Enabled sites. An empty plan perturbs nothing.
    pub entries: Vec<PerturbEntry>,
}

impl PerturbPlan {
    /// The full-strength plan: every site enabled, per-site seeds derived
    /// from `seed`.
    pub fn full(seed: u64) -> PerturbPlan {
        let entries = PerturbSite::ALL
            .iter()
            .map(|&site| PerturbEntry {
                site,
                seed: mix(seed ^ lcg(site as u64 + 1)),
                intensity: 2,
            })
            .collect();
        PerturbPlan { seed, entries }
    }

    /// A plan enabling only the given sites (seeds derived from `seed`).
    pub fn only(seed: u64, sites: &[PerturbSite]) -> PerturbPlan {
        let mut p = PerturbPlan::full(seed);
        p.entries.retain(|e| sites.contains(&e.site));
        p
    }

    /// FNV-1a digest over the master seed and every entry — the plan's
    /// identity in reports and reproducers.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.update_u64(self.seed);
        for e in &self.entries {
            h.update_u64(e.site as u64);
            h.update_u64(e.seed);
            h.update_u64(e.intensity as u64);
        }
        h.digest()
    }

    /// Whether the plan perturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for PerturbPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan(seed={:#x})[", self.seed)?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}:{:#x}/i{}", e.site, e.seed, e.intensity)?;
        }
        f.write_str("]")
    }
}

const LCG_MUL: u64 = 6_364_136_223_846_793_005;
const LCG_ADD: u64 = 1_442_695_040_888_963_407;

/// One step of Knuth's 64-bit LCG.
#[inline]
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD)
}

/// SplitMix64 finalizer: diffuses LCG state into usable bits.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// The standard [`Perturber`]: a seeded-LCG executor of a [`PerturbPlan`].
///
/// Each draw mixes the entry's seed, the thread id and a process-global
/// draw counter. The counter is deliberately racy: the *pattern* of delays
/// is allowed to depend on physical interleaving — a correct deterministic
/// runtime must shrug off even adaptive adversarial timing.
pub struct PlanPerturber {
    plan: PerturbPlan,
    digest: u64,
    /// Per-site `(seed, intensity)` when enabled, indexed by site discriminant.
    sites: [Option<(u64, u8)>; PerturbSite::ALL.len()],
    draws: AtomicU64,
}

impl PlanPerturber {
    /// Builds an executor for `plan`. Duplicate sites: the last entry wins.
    pub fn new(plan: PerturbPlan) -> PlanPerturber {
        let mut sites = [None; PerturbSite::ALL.len()];
        for e in &plan.entries {
            sites[e.site as usize] = Some((e.seed, e.intensity.min(3)));
        }
        PlanPerturber {
            digest: plan.digest(),
            plan,
            sites,
            draws: AtomicU64::new(0),
        }
    }

    /// The plan this executor runs.
    pub fn plan(&self) -> &PerturbPlan {
        &self.plan
    }

    /// A fresh handle running the full-strength plan for `seed` — the
    /// common case in stress drivers and tests.
    pub fn handle(seed: u64) -> PerturbHandle {
        PerturbHandle::to(Arc::new(PlanPerturber::new(PerturbPlan::full(seed))))
    }

    #[inline]
    fn draw(&self, site_seed: u64, tid: Tid) -> u64 {
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        mix(site_seed ^ lcg(tid.0 as u64 + 1) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Burn real time according to draw `r`: mostly nothing or a yield,
    /// sometimes a spin, rarely a micro-sleep (sleeps force an actual
    /// reschedule even on an idle box, but are costly enough to ration).
    fn stall(r: u64) {
        match r & 7 {
            0..=3 => {}
            4 | 5 => {
                for _ in 0..=((r >> 3) & 3) {
                    std::thread::yield_now();
                }
            }
            6 => {
                for _ in 0..((r >> 3) & 0x3ff) {
                    std::hint::spin_loop();
                }
            }
            _ => {
                if r & 0x1f00 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(20 + ((r >> 13) & 31)));
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl Perturber for PlanPerturber {
    fn hit(&self, site: PerturbSite, tid: Tid) -> u64 {
        let Some((seed, intensity)) = self.sites[site as usize] else {
            return 0;
        };
        let r = self.draw(seed, tid);
        Self::stall(r);
        // Virtual charge in 0..(250 << intensity); about half the draws
        // charge nothing so charged and uncharged paths interleave.
        if r & 1 == 0 {
            (r >> 16) % (250u64 << intensity)
        } else {
            0
        }
    }

    fn overflow_interval(&self, tid: Tid, interval: u64) -> u64 {
        let Some((seed, _)) = self.sites[PerturbSite::Overflow as usize] else {
            return interval;
        };
        let r = self.draw(seed, tid);
        let interval = interval.max(1);
        match r & 3 {
            0 => interval,
            // Forced early: publish after a fraction of the interval.
            1 => (interval >> (1 + ((r >> 8) % 6))).max(1),
            // Forced late: stretch the interval.
            2 => interval.saturating_mul(2 + ((r >> 8) & 7)),
            // Degenerate: near-constant tiny interval (publication storm).
            _ => 1 + ((r >> 8) & 15),
        }
    }

    fn spurious_wake(&self, tid: Tid) -> bool {
        let Some((seed, _)) = self.sites[PerturbSite::CondWake as usize] else {
            return false;
        };
        self.draw(seed, tid) & 3 == 0
    }

    fn seed(&self) -> u64 {
        self.plan.seed
    }

    fn plan_digest(&self) -> u64 {
        self.digest
    }
}

/// A cloneable, optionally-absent perturber reference carried in
/// [`crate::CommonConfig`], mirroring [`crate::TraceHandle`]. The default
/// is off; every hook site then costs one branch.
#[derive(Clone, Default)]
pub struct PerturbHandle(Option<Arc<dyn Perturber>>);

impl PerturbHandle {
    /// Fault injection disabled (the default).
    pub fn off() -> PerturbHandle {
        PerturbHandle(None)
    }

    /// Fault injection through `p`.
    pub fn to(p: Arc<dyn Perturber>) -> PerturbHandle {
        PerturbHandle(Some(p))
    }

    /// Whether a perturber is attached.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Fires `site` and returns the virtual-cycle charge (0 when off).
    /// Callers with virtual-time accounting book the charge as library
    /// overhead — never through the logical clock.
    #[inline]
    pub fn hit(&self, site: PerturbSite, tid: Tid) -> u64 {
        match &self.0 {
            Some(p) => p.hit(site, tid),
            None => 0,
        }
    }

    /// Fires `site` for its real-time effect only, discarding the charge.
    /// For layers without virtual-time accounting (the `conversion`
    /// versioned-memory substrate).
    #[inline]
    pub fn jitter(&self, site: PerturbSite, tid: Tid) {
        if let Some(p) = &self.0 {
            p.hit(site, tid);
        }
    }

    /// Biases a counter-overflow interval (identity when off).
    #[inline]
    pub fn overflow_interval(&self, tid: Tid, interval: u64) -> u64 {
        match &self.0 {
            Some(p) => p.overflow_interval(tid, interval).max(1),
            None => interval,
        }
    }

    /// Whether to issue a spurious wake-up now (never when off).
    #[inline]
    pub fn spurious_wake(&self, tid: Tid) -> bool {
        match &self.0 {
            Some(p) => p.spurious_wake(tid),
            None => false,
        }
    }

    /// Whether `tid` should panic at its `nth` operation of class `site`
    /// (never when off). See [`Perturber::panic_at`].
    #[inline]
    pub fn panic_at(&self, site: PanicSite, tid: Tid, nth: u64) -> bool {
        match &self.0 {
            Some(p) => p.panic_at(site, tid, nth),
            None => false,
        }
    }

    /// The attached perturber's single injected panic, if any (`None`
    /// when off). See [`Perturber::panic_triple`].
    pub fn panic_triple(&self) -> Option<(PanicSite, Tid, u64)> {
        self.0.as_ref().and_then(|p| p.panic_triple())
    }

    /// Master seed of the attached plan (0 when off).
    pub fn seed(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.seed())
    }

    /// Plan digest of the attached plan (0 when off).
    pub fn plan_digest(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.plan_digest())
    }
}

/// A storage-fault class the trace-chaos harness injects under a
/// recording's [`TraceMedia`](crate::trace) — exercising the salvage
/// path with every way a real disk write dies mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The medium absorbs only part of a write, then fails — a torn
    /// page in the middle of the stream.
    ShortWrite,
    /// Every write past the trigger point fails with `ENOSPC`.
    NoSpace,
    /// Writes past the trigger point are silently dropped (the classic
    /// lost-tail tear: the file *looks* fine until its digests are
    /// checked).
    TornTail,
}

impl IoFaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [IoFaultKind; 3] = [
        IoFaultKind::ShortWrite,
        IoFaultKind::NoSpace,
        IoFaultKind::TornTail,
    ];

    /// Stable lowercase name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::ShortWrite => "short_write",
            IoFaultKind::NoSpace => "no_space",
            IoFaultKind::TornTail => "torn_tail",
        }
    }
}

impl fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One seeded storage fault: `kind` fires once the medium has absorbed
/// `at_byte` bytes. Like every perturbation in this module the fault is
/// a pure function of its seed, so a chaos cell that found a
/// non-reproducing salvage is itself reproducible from the seed alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// The fault class to inject.
    pub kind: IoFaultKind,
    /// Byte position at which the medium starts failing.
    pub at_byte: u64,
}

impl IoFaultPlan {
    /// Derives a fault plan from `seed`: the kind cycles through
    /// [`IoFaultKind::ALL`] and the trigger offset lands anywhere from
    /// inside the header to several event pages deep.
    pub fn from_seed(seed: u64) -> IoFaultPlan {
        let r = mix(lcg(seed ^ 0x10FA_017E));
        IoFaultPlan {
            kind: IoFaultKind::ALL[(r % 3) as usize],
            at_byte: (r >> 8) % (48 * 1024),
        }
    }
}

impl fmt::Display for IoFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.kind, self.at_byte)
    }
}

impl fmt::Debug for PerturbHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "PerturbHandle(on)"
        } else {
            "PerturbHandle(off)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_covers_every_site_with_distinct_seeds() {
        let p = PerturbPlan::full(7);
        assert_eq!(p.entries.len(), PerturbSite::ALL.len());
        for (e, s) in p.entries.iter().zip(PerturbSite::ALL) {
            assert_eq!(e.site, s);
        }
        let mut seeds: Vec<u64> = p.entries.iter().map(|e| e.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(
            seeds.len(),
            PerturbSite::ALL.len(),
            "per-site seeds collide"
        );
    }

    #[test]
    fn digest_identifies_the_plan() {
        let a = PerturbPlan::full(1);
        let b = PerturbPlan::full(2);
        assert_ne!(a.digest(), b.digest());
        let mut shrunk = a.clone();
        shrunk.entries.remove(0);
        assert_ne!(a.digest(), shrunk.digest());
        assert_eq!(a.digest(), PerturbPlan::full(1).digest());
    }

    #[test]
    fn site_names_round_trip() {
        for s in PerturbSite::ALL {
            assert_eq!(PerturbSite::by_name(s.name()), Some(s));
        }
        assert_eq!(PerturbSite::by_name("nope"), None);
    }

    #[test]
    fn off_handle_is_inert() {
        let h = PerturbHandle::off();
        assert!(!h.enabled());
        assert_eq!(h.hit(PerturbSite::Commit, Tid(3)), 0);
        assert_eq!(h.overflow_interval(Tid(0), 5_000), 5_000);
        assert!(!h.spurious_wake(Tid(0)));
        assert!(!h.panic_at(PanicSite::Lock, Tid(0), 0));
        assert_eq!(h.seed(), 0);
        assert_eq!(h.plan_digest(), 0);
    }

    #[test]
    fn panic_injection_defaults_off_for_plan_perturbers() {
        // PlanPerturber drives timing perturbations only; panic injection
        // is a separate, deterministic decision and must not be implied by
        // a timing plan.
        let p = PlanPerturber::new(PerturbPlan::full(5));
        for site in PanicSite::ALL {
            for n in 0..32 {
                assert!(!p.panic_at(site, Tid(1), n));
            }
        }
    }

    #[test]
    fn disabled_sites_do_not_fire() {
        let p = PlanPerturber::new(PerturbPlan::only(9, &[PerturbSite::Commit]));
        for _ in 0..64 {
            assert_eq!(p.hit(PerturbSite::TokenAcquire, Tid(1)), 0);
            assert_eq!(p.overflow_interval(Tid(1), 100), 100);
            assert!(!p.spurious_wake(Tid(1)));
        }
    }

    #[test]
    fn charges_are_bounded_by_intensity() {
        let mut plan = PerturbPlan::only(11, &[PerturbSite::Fault]);
        plan.entries[0].intensity = 1;
        let p = PlanPerturber::new(plan);
        for _ in 0..256 {
            assert!(p.hit(PerturbSite::Fault, Tid(0)) < 500);
        }
    }

    #[test]
    fn overflow_bias_keeps_intervals_positive() {
        let h = PlanPerturber::handle(0xdead_beef);
        for i in 0..256u64 {
            assert!(h.overflow_interval(Tid((i % 7) as u32), 5_000) >= 1);
            assert!(h.overflow_interval(Tid(0), 1) >= 1);
        }
    }

    #[test]
    fn handle_reports_seed_and_digest() {
        let h = PlanPerturber::handle(42);
        assert_eq!(h.seed(), 42);
        assert_eq!(h.plan_digest(), PerturbPlan::full(42).digest());
        assert!(h.enabled());
    }

    #[test]
    fn spurious_wakes_fire_sometimes_but_not_always() {
        let p = PlanPerturber::new(PerturbPlan::full(3));
        let fired = (0..512).filter(|_| p.spurious_wake(Tid(2))).count();
        assert!(fired > 0, "spurious wakes never fire");
        assert!(fired < 512, "spurious wakes always fire");
    }
}
