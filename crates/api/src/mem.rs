//! Typed shared-memory access helpers.
//!
//! Workload kernels deal in `u64`, `f64` and `u32` cells; these extension
//! traits provide typed accessors over the raw byte interface of
//! [`ThreadCtx`] and [`Runtime`]. All encodings are little-endian.

use crate::ctx::ThreadCtx;
use crate::ids::Addr;
use crate::runtime::Runtime;

/// Typed accessors for workload code running inside a thread.
pub trait MemExt: ThreadCtx {
    /// Reads an `f64` at `addr`.
    fn ld_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.ld_u64(addr))
    }

    /// Writes an `f64` at `addr`.
    fn st_f64(&mut self, addr: Addr, v: f64) {
        self.st_u64(addr, v.to_bits());
    }

    /// Reads a `u32` at `addr`.
    fn ld_u32(&mut self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a `u32` at `addr`.
    fn st_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `i64` at `addr`.
    fn ld_i64(&mut self, addr: Addr) -> i64 {
        self.ld_u64(addr) as i64
    }

    /// Writes an `i64` at `addr`.
    fn st_i64(&mut self, addr: Addr, v: i64) {
        self.st_u64(addr, v as u64);
    }

    /// Reads `out.len()` consecutive `u64` cells starting at `addr`.
    fn ld_u64_slice(&mut self, addr: Addr, out: &mut [u64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.ld_u64(addr + 8 * i);
        }
    }

    /// Writes the `u64` cells of `vals` consecutively starting at `addr`.
    fn st_u64_slice(&mut self, addr: Addr, vals: &[u64]) {
        for (i, v) in vals.iter().enumerate() {
            self.st_u64(addr + 8 * i, *v);
        }
    }

    /// Reads `out.len()` consecutive `f64` cells starting at `addr`.
    fn ld_f64_slice(&mut self, addr: Addr, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.ld_f64(addr + 8 * i);
        }
    }

    /// Writes the `f64` cells of `vals` consecutively starting at `addr`.
    fn st_f64_slice(&mut self, addr: Addr, vals: &[f64]) {
        for (i, v) in vals.iter().enumerate() {
            self.st_f64(addr + 8 * i, *v);
        }
    }

    /// Adds `v` to the `u64` cell at `addr` and returns the new value.
    ///
    /// Note: this is **not** atomic — it is a plain load-modify-store, the
    /// point being that under a deterministic runtime even this racy pattern
    /// yields a reproducible (if surprising) result, per §2.7 of the paper.
    fn fetch_add_u64(&mut self, addr: Addr, v: u64) -> u64 {
        let n = self.ld_u64(addr).wrapping_add(v);
        self.st_u64(addr, n);
        n
    }

    /// Adds `v` to the `f64` cell at `addr`.
    fn add_f64(&mut self, addr: Addr, v: f64) {
        let n = self.ld_f64(addr) + v;
        self.st_f64(addr, n);
    }
}

impl<T: ThreadCtx + ?Sized> MemExt for T {}

/// Typed heap initialization/readback helpers for a [`Runtime`], used before
/// a run starts and after it completes.
pub trait RuntimeMemExt: Runtime {
    /// Writes a `u64` into the heap before the run.
    fn init_u64(&mut self, addr: Addr, v: u64) {
        self.init_write(addr, &v.to_le_bytes());
    }

    /// Writes an `f64` into the heap before the run.
    fn init_f64(&mut self, addr: Addr, v: f64) {
        self.init_u64(addr, v.to_bits());
    }

    /// Writes consecutive `u64` cells into the heap before the run.
    fn init_u64_slice(&mut self, addr: Addr, vals: &[u64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.init_write(addr, &bytes);
    }

    /// Writes consecutive `f64` cells into the heap before the run.
    fn init_f64_slice(&mut self, addr: Addr, vals: &[f64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.init_write(addr, &bytes);
    }

    /// Reads a `u64` from the final heap after the run.
    fn final_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.final_read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Reads an `f64` from the final heap after the run.
    fn final_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.final_u64(addr))
    }

    /// Reads consecutive `u64` cells from the final heap after the run.
    fn final_u64_slice(&self, addr: Addr, out: &mut [u64]) {
        let mut bytes = vec![0u8; out.len() * 8];
        self.final_read(addr, &mut bytes);
        for (i, o) in out.iter_mut().enumerate() {
            *o = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap());
        }
    }

    /// FNV-1a digest of `len` bytes of the final heap starting at `addr`.
    fn final_hash(&self, addr: Addr, len: usize) -> u64 {
        let mut bytes = vec![0u8; len];
        self.final_read(addr, &mut bytes);
        crate::hash::Fnv1a::hash(&bytes)
    }
}

impl<T: Runtime + ?Sized> RuntimeMemExt for T {}
