//! Minimal synchronization primitives with a `parking_lot`-style API.
//!
//! The workspace builds in offline environments with no registry access,
//! so the runtime crates use this thin facade over [`std::sync`] instead
//! of an external lock crate. The API mirrors the subset of `parking_lot`
//! the runtimes need: `lock()` returns a guard directly (poisoning is
//! swallowed — a panicking thread aborts the test anyway, and the
//! runtimes' shared state has no invariants a poisoned lock would rescue),
//! and [`Condvar::wait`] takes the guard by `&mut` so callers can wait in
//! a loop without rebinding.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        ))
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], which moves the std guard through the wait and puts
/// it back before returning.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose waits re-borrow the caller's guard.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the lock behind `guard` and blocks until
    /// notified, re-acquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
    }

    /// As [`wait`](Condvar::wait), giving up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
