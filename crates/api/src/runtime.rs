//! The runtime trait and its shared configuration.

use crate::cost::CostModel;
use crate::ctx::Job;
use crate::ids::{Addr, BarrierId, CondId, MutexId, RwLockId};
use crate::perturb::PerturbHandle;
use crate::report::RunReport;
use crate::trace::TraceHandle;
use crate::witness::WitnessHandle;

/// Configuration shared by every runtime implementation.
#[derive(Clone, Debug)]
pub struct CommonConfig {
    /// Shared heap size in 4 KiB pages.
    pub heap_pages: usize,
    /// Upper bound on concurrently live threads (sizing hint for clock
    /// tables and vector clocks).
    pub max_threads: usize,
    /// Virtual-time prices for runtime operations.
    pub cost: CostModel,
    /// Track the §5.3 happens-before estimate of LRC page propagation
    /// (Figure 16). Adds bookkeeping cost in real time, none in virtual
    /// time.
    pub track_lrc: bool,
    /// Versions the garbage collector may reclaim per commit; models the
    /// paper's single-threaded Conversion collector that "cannot keep up"
    /// under high page churn (Figure 12). `usize::MAX` means an idealized
    /// collector.
    pub gc_budget: usize,
    /// Event-trace destination (see [`crate::trace`]). Off by default:
    /// every emission site then reduces to one branch, so benchmark
    /// figures are unaffected.
    pub trace: TraceHandle,
    /// Fault injector (see [`crate::perturb`]). Off by default: every
    /// hook site then reduces to one branch. Attached by the `dmt-stress`
    /// harness to perturb physical timing without — for deterministic
    /// runtimes — moving the schedule hash.
    pub perturb: PerturbHandle,
    /// Resource-bound monitor (see [`crate::witness`]). Off by default:
    /// every sampling site then reduces to one branch. Attached by the
    /// soak harness; observation-only, so it is never part of the options
    /// fingerprint and cannot move the schedule.
    pub witness: WitnessHandle,
}

impl Default for CommonConfig {
    fn default() -> Self {
        CommonConfig {
            heap_pages: 1024,
            max_threads: 64,
            cost: CostModel::default(),
            track_lrc: false,
            gc_budget: 4,
            trace: TraceHandle::off(),
            perturb: PerturbHandle::off(),
            witness: WitnessHandle::off(),
        }
    }
}

impl CommonConfig {
    /// Heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.heap_pages * crate::PAGE_SIZE
    }
}

/// A multithreading runtime: pthreads or one of the deterministic systems.
///
/// The lifecycle is: create the runtime with a configuration, create the
/// synchronization objects and initialize the heap, call
/// [`run`](Runtime::run) exactly once with the main job, then read results
/// back with [`final_read`](Runtime::final_read).
///
/// # Panics
///
/// Implementations panic if `run` is called twice, if objects are created
/// after the run, or on out-of-range heap accesses.
pub trait Runtime {
    /// Human-readable runtime name (e.g. `"consequence-ic"`).
    fn name(&self) -> &'static str;

    /// Whether this runtime guarantees deterministic execution.
    fn is_deterministic(&self) -> bool;

    /// Creates a mutex. Must be called before [`run`](Runtime::run).
    fn create_mutex(&mut self) -> MutexId;

    /// Creates a condition variable. Must be called before `run`.
    fn create_cond(&mut self) -> CondId;

    /// Creates a barrier for `parties` threads. Must be called before `run`.
    fn create_barrier(&mut self, parties: usize) -> BarrierId;

    /// Creates a read-write lock. Must be called before `run`.
    ///
    /// Runtimes without shared-reader support (DThreads' single global
    /// lock) may implement it as an exclusive lock; that is a legal —
    /// merely slower — rwlock.
    fn create_rwlock(&mut self) -> RwLockId {
        unimplemented!("this runtime does not provide read-write locks")
    }

    /// Shared heap length in bytes.
    fn heap_len(&self) -> usize;

    /// Writes initial heap contents before the run.
    fn init_write(&mut self, addr: Addr, data: &[u8]);

    /// Reads final heap contents after the run.
    fn final_read(&self, addr: Addr, buf: &mut [u8]);

    /// Executes `main` (as `Tid(0)`) to completion, including every thread
    /// it transitively spawns, and returns the run report.
    fn run(&mut self, main: Job) -> RunReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = CommonConfig::default();
        assert_eq!(c.heap_bytes(), 1024 * 4096);
        assert!(c.max_threads >= 32);
        assert!(!c.track_lrc);
    }
}
