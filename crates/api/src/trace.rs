//! Deterministic event tracing: schedule hashes and divergence diagnosis.
//!
//! The determinism claim of the Consequence paper (§2.4–§3.5) is a claim
//! about an *order*: every synchronization event — token grants,
//! asynchronous Conversion commits and updates, two-phase barrier
//! installs — happens in the same total order on every run. Final-heap
//! digests ([`crate::RunReport::commit_log_hash`]) witness the
//! *consequences* of that order but say nothing about *where* two runs
//! diverged when they disagree. This module makes the schedule itself the
//! artifact:
//!
//! * [`Event`] — one synchronization event, compact and `Copy`;
//! * [`TraceSink`] — where runtimes send events: [`NullSink`] (default,
//!   a single branch per event), [`HashSink`] (incremental FNV-1a
//!   **schedule hash** plus per-category counts), [`MemorySink`] (bounded
//!   ring buffer retaining the most recent events for diagnosis);
//! * [`diagnose`] / [`Divergence`] — given two recorded traces, the first
//!   differing event with surrounding context, instead of a bare hash
//!   mismatch.
//!
//! # Schedule events vs. auxiliary events
//!
//! Runtimes emit every event with an `in_schedule` flag. Events emitted
//! while the emitting thread holds the global token (or its serial turn)
//! form the deterministic total order and are folded into the schedule
//! hash. Events whose real-time interleaving is *not* part of the
//! determinism contract — counter-overflow publications under adaptive
//! notification (§3.2), parallel-phase update work in DThreads — are
//! emitted as auxiliary: counted, but never hashed. The nondeterministic
//! pthreads baseline emits everything as schedule events; its hash varying
//! across runs is the negative control.
//!
//! # Token domains
//!
//! The `dmt-shard` subsystem partitions a run into independently tokened
//! **domains** (see [`crate::DomainId`]), each with its own deterministic
//! total order. Every emission carries the emitting domain: a
//! [`TraceHandle`] is bound to one domain at construction
//! ([`TraceHandle::to_domain`]) and stamps it on every event, so one sink
//! can absorb several domains' schedules and still tell them apart.
//! Events in [`crate::DomainId::ROOT`] fold into the schedule hash exactly
//! as they did before domains existed — unsharded hashes and recorded
//! traces are stable across versions — while non-root domains fold a
//! domain prefix, so two shards' interleavings can never collide into one
//! hash. [`diagnose_domains`] names the divergent domain.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::hash::Fnv1a;
use crate::ids::{BarrierId, CondId, DomainId, MutexId, RwLockId, Tid};
use crate::sync::Mutex;

/// One synchronization event in a runtime's deterministic total order.
///
/// Fields are the *deterministic* coordinates of the event: thread ids,
/// logical clocks, object ids, ticket numbers, version ids and dirty-page
/// digests. Virtual times and wall times are deliberately absent — they
/// carry no additional schedule information and (for wall time) would
/// destroy hash stability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A thread acquired the global token (GMIC grant or round-robin
    /// turn) at the given logical clock.
    TokenAcquire { tid: Tid, clock: u64 },
    /// The token holder released the token.
    TokenRelease { tid: Tid, clock: u64 },
    /// A thread left the deterministic order to block (`clockDepart`).
    Depart { tid: Tid, clock: u64 },
    /// A deterministic mutex acquisition; `ticket` is the per-lock
    /// acquisition ordinal.
    MutexLock {
        tid: Tid,
        mutex: MutexId,
        ticket: u64,
    },
    /// A thread queued on a held mutex.
    MutexBlock { tid: Tid, mutex: MutexId },
    /// A mutex release; `woke` is the waiter handed the lock, if any.
    MutexUnlock {
        tid: Tid,
        mutex: MutexId,
        woke: Option<Tid>,
    },
    /// A condition wait (mutex released, thread departed).
    CondWait {
        tid: Tid,
        cond: CondId,
        mutex: MutexId,
    },
    /// A signal; `woken` is the deterministically-earliest waiter, if any.
    CondSignal {
        tid: Tid,
        cond: CondId,
        woken: Option<Tid>,
    },
    /// A broadcast waking `woken` waiters.
    CondBroadcast { tid: Tid, cond: CondId, woken: u32 },
    /// Arrival at a barrier generation.
    BarrierArrive {
        tid: Tid,
        barrier: BarrierId,
        gen: u64,
    },
    /// A barrier generation opened (commits installed); emitted by the
    /// last arriver while it still holds the token (§4.2 two-phase
    /// commit), `install_version` being the version every leaver updates
    /// to.
    BarrierOpen {
        tid: Tid,
        barrier: BarrierId,
        gen: u64,
        install_version: u64,
    },
    /// A read-write lock acquisition (`writer` distinguishes the mode).
    RwAcquire {
        tid: Tid,
        lock: RwLockId,
        writer: bool,
    },
    /// A read-write lock release.
    RwRelease {
        tid: Tid,
        lock: RwLockId,
        writer: bool,
    },
    /// A Conversion commit: `version` is the created (or, with no dirty
    /// pages, the pre-existing) version id; `page_set` digests the dirty
    /// page ids.
    Commit {
        tid: Tid,
        version: u64,
        pages: u32,
        merged: u32,
        page_set: u64,
    },
    /// An update pulling remote versions into the local workspace.
    Update { tid: Tid, version: u64, pages: u64 },
    /// Thread creation; `pooled` marks §3.3 thread-pool reuse.
    Spawn {
        parent: Tid,
        child: Tid,
        pooled: bool,
    },
    /// A join that observed the target's exit.
    Join { tid: Tid, target: Tid },
    /// Thread exit at the given logical clock.
    Exit { tid: Tid, clock: u64 },
    /// A contained workload panic: the thread died at the given logical
    /// clock, after deterministically poisoning its held locks and
    /// departing the order. A schedule event — the death is part of the
    /// deterministic total order and must reproduce across reruns.
    ThreadPanic { tid: Tid, clock: u64 },
    /// A logical-clock publication (counter overflow, §3.2). Auxiliary:
    /// its real-time interleaving is not part of the determinism contract
    /// under adaptive notification.
    Publish { tid: Tid, clock: u64 },
    /// A §3.5 fast-forward: the token taker jumped its lagging clock.
    FastForward { tid: Tid, from: u64, to: u64 },
    /// A §3.1 coarsening decision: the token was retained across the end
    /// of a synchronization operation, deferring the commit.
    Coarsen { tid: Tid, clock: u64 },
}

/// Event categories, for counting and display.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    TokenAcquire,
    TokenRelease,
    Depart,
    MutexLock,
    MutexBlock,
    MutexUnlock,
    CondWait,
    CondSignal,
    CondBroadcast,
    BarrierArrive,
    BarrierOpen,
    RwAcquire,
    RwRelease,
    Commit,
    Update,
    Spawn,
    Join,
    Exit,
    ThreadPanic,
    Publish,
    FastForward,
    Coarsen,
}

impl EventKind {
    /// Every kind, in tag order.
    pub const ALL: [EventKind; 22] = [
        EventKind::TokenAcquire,
        EventKind::TokenRelease,
        EventKind::Depart,
        EventKind::MutexLock,
        EventKind::MutexBlock,
        EventKind::MutexUnlock,
        EventKind::CondWait,
        EventKind::CondSignal,
        EventKind::CondBroadcast,
        EventKind::BarrierArrive,
        EventKind::BarrierOpen,
        EventKind::RwAcquire,
        EventKind::RwRelease,
        EventKind::Commit,
        EventKind::Update,
        EventKind::Spawn,
        EventKind::Join,
        EventKind::Exit,
        EventKind::ThreadPanic,
        EventKind::Publish,
        EventKind::FastForward,
        EventKind::Coarsen,
    ];

    /// Short stable name (used in reports and experiment logs).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TokenAcquire => "token_acquire",
            EventKind::TokenRelease => "token_release",
            EventKind::Depart => "depart",
            EventKind::MutexLock => "mutex_lock",
            EventKind::MutexBlock => "mutex_block",
            EventKind::MutexUnlock => "mutex_unlock",
            EventKind::CondWait => "cond_wait",
            EventKind::CondSignal => "cond_signal",
            EventKind::CondBroadcast => "cond_broadcast",
            EventKind::BarrierArrive => "barrier_arrive",
            EventKind::BarrierOpen => "barrier_open",
            EventKind::RwAcquire => "rw_acquire",
            EventKind::RwRelease => "rw_release",
            EventKind::Commit => "commit",
            EventKind::Update => "update",
            EventKind::Spawn => "spawn",
            EventKind::Join => "join",
            EventKind::Exit => "exit",
            EventKind::ThreadPanic => "thread_panic",
            EventKind::Publish => "publish",
            EventKind::FastForward => "fast_forward",
            EventKind::Coarsen => "coarsen",
        }
    }
}

impl Event {
    /// The category of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::TokenAcquire { .. } => EventKind::TokenAcquire,
            Event::TokenRelease { .. } => EventKind::TokenRelease,
            Event::Depart { .. } => EventKind::Depart,
            Event::MutexLock { .. } => EventKind::MutexLock,
            Event::MutexBlock { .. } => EventKind::MutexBlock,
            Event::MutexUnlock { .. } => EventKind::MutexUnlock,
            Event::CondWait { .. } => EventKind::CondWait,
            Event::CondSignal { .. } => EventKind::CondSignal,
            Event::CondBroadcast { .. } => EventKind::CondBroadcast,
            Event::BarrierArrive { .. } => EventKind::BarrierArrive,
            Event::BarrierOpen { .. } => EventKind::BarrierOpen,
            Event::RwAcquire { .. } => EventKind::RwAcquire,
            Event::RwRelease { .. } => EventKind::RwRelease,
            Event::Commit { .. } => EventKind::Commit,
            Event::Update { .. } => EventKind::Update,
            Event::Spawn { .. } => EventKind::Spawn,
            Event::Join { .. } => EventKind::Join,
            Event::Exit { .. } => EventKind::Exit,
            Event::ThreadPanic { .. } => EventKind::ThreadPanic,
            Event::Publish { .. } => EventKind::Publish,
            Event::FastForward { .. } => EventKind::FastForward,
            Event::Coarsen { .. } => EventKind::Coarsen,
        }
    }

    /// The emitting thread.
    pub fn tid(&self) -> Tid {
        match *self {
            Event::TokenAcquire { tid, .. }
            | Event::TokenRelease { tid, .. }
            | Event::Depart { tid, .. }
            | Event::MutexLock { tid, .. }
            | Event::MutexBlock { tid, .. }
            | Event::MutexUnlock { tid, .. }
            | Event::CondWait { tid, .. }
            | Event::CondSignal { tid, .. }
            | Event::CondBroadcast { tid, .. }
            | Event::BarrierArrive { tid, .. }
            | Event::BarrierOpen { tid, .. }
            | Event::RwAcquire { tid, .. }
            | Event::RwRelease { tid, .. }
            | Event::Commit { tid, .. }
            | Event::Update { tid, .. }
            | Event::Join { tid, .. }
            | Event::Exit { tid, .. }
            | Event::ThreadPanic { tid, .. }
            | Event::Publish { tid, .. }
            | Event::FastForward { tid, .. }
            | Event::Coarsen { tid, .. } => tid,
            Event::Spawn { parent, .. } => parent,
        }
    }

    /// Folds this event into an FNV-1a state with a stable encoding:
    /// a kind tag followed by every field, each as a little-endian `u64`.
    pub fn fold(&self, h: &mut Fnv1a) {
        fn opt(t: Option<Tid>) -> u64 {
            t.map_or(u64::MAX, |t| t.0 as u64)
        }
        h.update(&[self.kind() as u8]);
        match *self {
            Event::TokenAcquire { tid, clock }
            | Event::TokenRelease { tid, clock }
            | Event::Depart { tid, clock }
            | Event::Exit { tid, clock }
            | Event::ThreadPanic { tid, clock }
            | Event::Publish { tid, clock }
            | Event::Coarsen { tid, clock } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(clock);
            }
            Event::MutexLock { tid, mutex, ticket } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(mutex.0 as u64);
                h.update_u64(ticket);
            }
            Event::MutexBlock { tid, mutex } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(mutex.0 as u64);
            }
            Event::MutexUnlock { tid, mutex, woke } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(mutex.0 as u64);
                h.update_u64(opt(woke));
            }
            Event::CondWait { tid, cond, mutex } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(cond.0 as u64);
                h.update_u64(mutex.0 as u64);
            }
            Event::CondSignal { tid, cond, woken } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(cond.0 as u64);
                h.update_u64(opt(woken));
            }
            Event::CondBroadcast { tid, cond, woken } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(cond.0 as u64);
                h.update_u64(woken as u64);
            }
            Event::BarrierArrive { tid, barrier, gen } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(barrier.0 as u64);
                h.update_u64(gen);
            }
            Event::BarrierOpen {
                tid,
                barrier,
                gen,
                install_version,
            } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(barrier.0 as u64);
                h.update_u64(gen);
                h.update_u64(install_version);
            }
            Event::RwAcquire { tid, lock, writer } | Event::RwRelease { tid, lock, writer } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(lock.0 as u64);
                h.update_u64(writer as u64);
            }
            Event::Commit {
                tid,
                version,
                pages,
                merged,
                page_set,
            } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(version);
                h.update_u64(pages as u64);
                h.update_u64(merged as u64);
                h.update_u64(page_set);
            }
            Event::Update {
                tid,
                version,
                pages,
            } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(version);
                h.update_u64(pages);
            }
            Event::Spawn {
                parent,
                child,
                pooled,
            } => {
                h.update_u64(parent.0 as u64);
                h.update_u64(child.0 as u64);
                h.update_u64(pooled as u64);
            }
            Event::Join { tid, target } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(target.0 as u64);
            }
            Event::FastForward { tid, from, to } => {
                h.update_u64(tid.0 as u64);
                h.update_u64(from);
                h.update_u64(to);
            }
        }
    }

    /// Folds this event as a member of `domain`.
    ///
    /// [`DomainId::ROOT`] folds nothing extra — byte-for-byte the legacy
    /// encoding, keeping unsharded schedule hashes (and every trace
    /// recorded before domains existed) stable. Any other domain prefixes
    /// a tag byte plus the domain id, so the same event sequence hashed
    /// under two different domains can never collide.
    pub fn fold_domain(&self, domain: DomainId, h: &mut Fnv1a) {
        if domain != DomainId::ROOT {
            // 0xD0 is outside the EventKind tag range, so a domain prefix
            // can never alias an event boundary.
            h.update(&[0xD0]);
            h.update_u64(domain.0 as u64);
        }
        self.fold(h);
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::TokenAcquire { tid, clock } => write!(f, "{tid} acquires token @clock {clock}"),
            Event::TokenRelease { tid, clock } => write!(f, "{tid} releases token @clock {clock}"),
            Event::Depart { tid, clock } => write!(f, "{tid} departs the order @clock {clock}"),
            Event::MutexLock { tid, mutex, ticket } => {
                write!(f, "{tid} locks {mutex} (ticket {ticket})")
            }
            Event::MutexBlock { tid, mutex } => write!(f, "{tid} blocks on {mutex}"),
            Event::MutexUnlock {
                tid,
                mutex,
                woke: Some(w),
            } => write!(f, "{tid} unlocks {mutex}, waking {w}"),
            Event::MutexUnlock { tid, mutex, .. } => write!(f, "{tid} unlocks {mutex}"),
            Event::CondWait { tid, cond, mutex } => {
                write!(f, "{tid} waits on {cond} (releasing {mutex})")
            }
            Event::CondSignal {
                tid,
                cond,
                woken: Some(w),
            } => write!(f, "{tid} signals {cond}, waking {w}"),
            Event::CondSignal { tid, cond, .. } => write!(f, "{tid} signals {cond} (no waiter)"),
            Event::CondBroadcast { tid, cond, woken } => {
                write!(f, "{tid} broadcasts {cond}, waking {woken}")
            }
            Event::BarrierArrive { tid, barrier, gen } => {
                write!(f, "{tid} arrives at {barrier} gen {gen}")
            }
            Event::BarrierOpen {
                tid,
                barrier,
                gen,
                install_version,
            } => write!(
                f,
                "{tid} opens {barrier} gen {gen} (installed version {install_version})"
            ),
            Event::RwAcquire { tid, lock, writer } => {
                write!(f, "{tid} {}-locks {lock}", if writer { "write" } else { "read" })
            }
            Event::RwRelease { tid, lock, writer } => {
                write!(f, "{tid} {}-unlocks {lock}", if writer { "write" } else { "read" })
            }
            Event::Commit {
                tid,
                version,
                pages,
                merged,
                page_set,
            } => write!(
                f,
                "{tid} commits version {version} ({pages} pages, {merged} merged, set {page_set:#018x})"
            ),
            Event::Update {
                tid,
                version,
                pages,
            } => write!(f, "{tid} updates to version {version} ({pages} pages)"),
            Event::Spawn {
                parent,
                child,
                pooled,
            } => write!(
                f,
                "{parent} spawns {child}{}",
                if pooled { " (pooled)" } else { "" }
            ),
            Event::Join { tid, target } => write!(f, "{tid} joins {target}"),
            Event::Exit { tid, clock } => write!(f, "{tid} exits @clock {clock}"),
            Event::ThreadPanic { tid, clock } => {
                write!(f, "{tid} panics (contained) @clock {clock}")
            }
            Event::Publish { tid, clock } => write!(f, "{tid} publishes clock {clock}"),
            Event::FastForward { tid, from, to } => {
                write!(f, "{tid} fast-forwards clock {from} -> {to}")
            }
            Event::Coarsen { tid, clock } => {
                write!(f, "{tid} retains token (coarsened) @clock {clock}")
            }
        }
    }
}

/// Per-category event counts, reported next to the Figure-15 breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts([u64; EventKind::ALL.len()]);

impl EventCounts {
    /// Count of one category.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.0[kind as usize]
    }

    /// Records one event.
    pub fn record(&mut self, kind: EventKind) {
        self.0[kind as usize] += 1;
    }

    /// Total events across all categories.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates `(kind, count)` over categories with non-zero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL
            .iter()
            .map(|k| (*k, self.get(*k)))
            .filter(|(_, c)| *c > 0)
    }
}

/// Destination for runtime trace events.
///
/// `emit` is called from every thread of a run, frequently under the
/// runtime's global lock; implementations must be cheap and `Sync`.
/// `in_schedule` is true when the event occupies a slot in the
/// deterministic total order (see the module docs) — only those events
/// may enter the schedule hash. `domain` is the emitting token domain;
/// unsharded runtimes always pass [`DomainId::ROOT`], sharded runs may
/// interleave several domains into one sink (hashing sinks must fold via
/// [`Event::fold_domain`] so per-domain orders stay distinguishable).
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn emit(&self, ev: &Event, in_schedule: bool, domain: DomainId);

    /// The schedule hash accumulated so far (0 for sinks that don't hash).
    fn schedule_hash(&self) -> u64 {
        0
    }

    /// Per-category counts accumulated so far.
    fn counts(&self) -> EventCounts {
        EventCounts::default()
    }

    /// First divergence a replay-comparing sink has observed. `None` for
    /// ordinary sinks and for replays still on script.
    fn divergence(&self) -> Option<Divergence> {
        None
    }

    /// Events currently resident in the sink (0 for sinks that keep no
    /// buffer). The resource witness samples this as its trace-ring
    /// gauge: a bounded ring's occupancy must never exceed its capacity.
    fn occupancy(&self) -> usize {
        0
    }

    /// A fault that degraded (but did not abort) the sink mid-run — e.g.
    /// a disk-recording sink whose medium failed, leaving the run itself
    /// healthy but its recording truncated. The runtime folds this into
    /// `RunReport::fault` so a degraded recording is visible at the point
    /// of failure, not first at `finish()`. `None` for healthy sinks.
    fn fault(&self) -> Option<String> {
        None
    }

    /// Durable flushes the sink has performed so far (0 for sinks with
    /// no durability notion). Sampled into the resource witness so runs
    /// can bound the freshness of their crash-salvageable prefix.
    fn durable_flushes(&self) -> u64 {
        0
    }

    /// Event pages this sink's schedule was salvaged from (0 for live
    /// recordings; nonzero only on replay sinks driving a recovered
    /// prefix). Sampled into the resource witness.
    fn salvaged_pages(&self) -> u64 {
        0
    }
}

/// Discards every event. With [`TraceHandle::off`] the emission sites
/// reduce to a branch on `None`; this sink exists for callers that want an
/// explicit sink object (e.g. to toggle sinks without changing types).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _: &Event, _: bool, _: DomainId) {}
}

#[derive(Default)]
struct HashState {
    hash: Fnv1a,
    counts: EventCounts,
}

/// Folds every schedule event into an incremental FNV-1a **schedule
/// hash** as it is emitted, and counts all events per category. Two runs
/// of a deterministic runtime on the same program must produce identical
/// hashes; the hash is O(1) memory regardless of run length.
#[derive(Default)]
pub struct HashSink {
    st: Mutex<HashState>,
}

impl HashSink {
    /// Creates an empty hashing sink.
    pub fn new() -> HashSink {
        HashSink::default()
    }
}

impl TraceSink for HashSink {
    fn emit(&self, ev: &Event, in_schedule: bool, domain: DomainId) {
        let mut st = self.st.lock();
        if in_schedule {
            ev.fold_domain(domain, &mut st.hash);
        }
        st.counts.record(ev.kind());
    }

    fn schedule_hash(&self) -> u64 {
        self.st.lock().hash.digest()
    }

    fn counts(&self) -> EventCounts {
        self.st.lock().counts
    }
}

struct MemoryState {
    events: VecDeque<(DomainId, Event)>,
    dropped: u64,
    hash: Fnv1a,
    counts: EventCounts,
}

/// Retains the most recent schedule events in a bounded ring buffer (for
/// [`diagnose`]) while also maintaining the schedule hash and counts.
/// Auxiliary events are counted but not retained: retaining them would
/// make recorded traces incomparable across runs.
pub struct MemorySink {
    st: Mutex<MemoryState>,
    cap: usize,
}

impl MemorySink {
    /// Creates a sink retaining at most `cap` events (oldest dropped).
    pub fn new(cap: usize) -> MemorySink {
        MemorySink {
            st: Mutex::new(MemoryState {
                events: VecDeque::new(),
                dropped: 0,
                hash: Fnv1a::new(),
                counts: EventCounts::default(),
            }),
            cap: cap.max(1),
        }
    }

    /// Takes the recorded schedule events, oldest first, clearing the
    /// buffer. The second value is how many older events were dropped by
    /// the ring bound (0 means the trace is complete).
    pub fn take(&self) -> (Vec<Event>, u64) {
        let (evs, dropped) = self.take_domains();
        (evs.into_iter().map(|(_, ev)| ev).collect(), dropped)
    }

    /// Like [`take`](MemorySink::take), but keeps each event paired with
    /// its emitting token domain — the form [`diagnose_domains`] wants
    /// when a sink absorbed a multi-domain (sharded) schedule.
    pub fn take_domains(&self) -> (Vec<(DomainId, Event)>, u64) {
        let mut st = self.st.lock();
        let dropped = st.dropped;
        st.dropped = 0;
        (st.events.drain(..).collect(), dropped)
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, ev: &Event, in_schedule: bool, domain: DomainId) {
        let mut st = self.st.lock();
        if in_schedule {
            ev.fold_domain(domain, &mut st.hash);
            if st.events.len() == self.cap {
                st.events.pop_front();
                st.dropped += 1;
            }
            st.events.push_back((domain, *ev));
        }
        st.counts.record(ev.kind());
    }

    fn schedule_hash(&self) -> u64 {
        self.st.lock().hash.digest()
    }

    fn counts(&self) -> EventCounts {
        self.st.lock().counts
    }

    fn occupancy(&self) -> usize {
        self.st.lock().events.len()
    }
}

/// A cloneable, optionally-absent sink reference carried in
/// [`crate::CommonConfig`]. The default is off; every emission site then
/// costs one branch.
///
/// A handle is bound to one token domain ([`DomainId::ROOT`] unless built
/// with [`TraceHandle::to_domain`]) and stamps it on every emission, so
/// runtimes never thread domain ids through their emission sites — the
/// `dmt-shard` subsystem simply hands each domain's runtime a handle bound
/// to that domain.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
    domain: DomainId,
}

impl TraceHandle {
    /// Tracing disabled (the default).
    pub fn off() -> TraceHandle {
        TraceHandle {
            sink: None,
            domain: DomainId::ROOT,
        }
    }

    /// Tracing into `sink`, in the root (unsharded) domain.
    pub fn to(sink: Arc<dyn TraceSink>) -> TraceHandle {
        TraceHandle::to_domain(sink, DomainId::ROOT)
    }

    /// Tracing into `sink`, stamping every emission with `domain`.
    pub fn to_domain(sink: Arc<dyn TraceSink>, domain: DomainId) -> TraceHandle {
        TraceHandle {
            sink: Some(sink),
            domain,
        }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The token domain this handle stamps on emissions.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Emits a schedule event (a slot in the deterministic total order).
    #[inline]
    pub fn emit(&self, ev: Event) {
        if let Some(s) = &self.sink {
            s.emit(&ev, true, self.domain);
        }
    }

    /// Emits an auxiliary event (counted, never hashed).
    #[inline]
    pub fn emit_aux(&self, ev: Event) {
        if let Some(s) = &self.sink {
            s.emit(&ev, false, self.domain);
        }
    }

    /// The sink's schedule hash (0 when off or non-hashing).
    pub fn schedule_hash(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.schedule_hash())
    }

    /// The sink's event counts (zeroes when off).
    pub fn counts(&self) -> EventCounts {
        self.sink
            .as_ref()
            .map_or_else(EventCounts::default, |s| s.counts())
    }

    /// The sink's first observed replay divergence (`None` when off or
    /// when the sink does not compare against a recording).
    pub fn divergence(&self) -> Option<Divergence> {
        self.sink.as_ref().and_then(|s| s.divergence())
    }

    /// Events currently resident in the sink (0 when off or unbuffered).
    pub fn occupancy(&self) -> usize {
        self.sink.as_ref().map_or(0, |s| s.occupancy())
    }

    /// The sink's degraded-recording fault, if it hit one (`None` when
    /// off or healthy).
    pub fn fault(&self) -> Option<String> {
        self.sink.as_ref().and_then(|s| s.fault())
    }

    /// Durable flushes the sink has performed (0 when off or
    /// non-durable).
    pub fn durable_flushes(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.durable_flushes())
    }

    /// Event pages the attached sink's schedule was salvaged from (0
    /// when off, or for live recordings).
    pub fn salvaged_pages(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.salvaged_pages())
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.sink.is_some() {
            "TraceHandle(on)"
        } else {
            "TraceHandle(off)"
        })
    }
}

/// Where two recorded schedules split, with surrounding context.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the first differing event (== common prefix length).
    pub index: usize,
    /// The event at `index` in the left trace, if it has one.
    pub left: Option<Event>,
    /// The event at `index` in the right trace, if it has one.
    pub right: Option<Event>,
    /// Up to the last 5 common-prefix events, as `(index, event)`.
    pub context: Vec<(usize, Event)>,
    /// The token domain the divergence happened in. [`DomainId::ROOT`]
    /// for unsharded schedules; for sharded schedules
    /// ([`diagnose_domains`]) the domain of the first differing event —
    /// i.e. *which shard* split first.
    pub domain: DomainId,
}

/// Compares two recorded schedules and reports the first divergence, or
/// `None` when they are identical. This is the answer to "the hashes
/// differ — *where* did the runs split?": the report names the event, its
/// thread, logical clock and object id, plus the agreed-upon events just
/// before the split.
pub fn diagnose(left: &[Event], right: &[Event]) -> Option<Divergence> {
    let common = left
        .iter()
        .zip(right.iter())
        .take_while(|(a, b)| a == b)
        .count();
    if common == left.len() && common == right.len() {
        return None;
    }
    let ctx_from = common.saturating_sub(5);
    Some(Divergence {
        index: common,
        left: left.get(common).copied(),
        right: right.get(common).copied(),
        context: (ctx_from..common).map(|i| (i, left[i])).collect(),
        domain: DomainId::ROOT,
    })
}

/// [`diagnose`] for multi-domain (sharded) schedules: compares two
/// domain-stamped traces and names the token domain of the first
/// differing event, so a sharded divergence report says *which shard*
/// split — a domain mismatch at equal events is itself a divergence.
pub fn diagnose_domains(
    left: &[(DomainId, Event)],
    right: &[(DomainId, Event)],
) -> Option<Divergence> {
    let common = left
        .iter()
        .zip(right.iter())
        .take_while(|(a, b)| a == b)
        .count();
    if common == left.len() && common == right.len() {
        return None;
    }
    let ctx_from = common.saturating_sub(5);
    // Name the domain of whichever side has an event at the split; a
    // trace that simply ended inherits the other side's domain.
    let domain = left
        .get(common)
        .or_else(|| right.get(common))
        .map_or(DomainId::ROOT, |(d, _)| *d);
    Some(Divergence {
        index: common,
        left: left.get(common).map(|(_, ev)| *ev),
        right: right.get(common).map(|(_, ev)| *ev),
        context: (ctx_from..common).map(|i| (i, left[i].1)).collect(),
        domain,
    })
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.domain == DomainId::ROOT {
            writeln!(f, "schedules diverge at event #{}", self.index)?;
        } else {
            writeln!(
                f,
                "schedules diverge at event #{} in domain {}",
                self.index, self.domain
            )?;
        }
        for (i, ev) in &self.context {
            writeln!(f, "  #{i} (both): {ev}")?;
        }
        match self.left {
            Some(ev) => writeln!(f, "  #{} left:  {ev}", self.index)?,
            None => writeln!(f, "  #{} left:  <trace ends>", self.index)?,
        }
        match self.right {
            Some(ev) => write!(f, "  #{} right: {ev}", self.index),
            None => write!(f, "  #{} right: <trace ends>", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, clock: u64) -> Event {
        Event::TokenAcquire {
            tid: Tid(tid),
            clock,
        }
    }

    #[test]
    fn hash_sink_is_order_sensitive() {
        let a = HashSink::new();
        a.emit(&ev(0, 1), true, DomainId::ROOT);
        a.emit(&ev(1, 2), true, DomainId::ROOT);
        let b = HashSink::new();
        b.emit(&ev(1, 2), true, DomainId::ROOT);
        b.emit(&ev(0, 1), true, DomainId::ROOT);
        assert_ne!(a.schedule_hash(), b.schedule_hash());
    }

    #[test]
    fn aux_events_are_counted_but_not_hashed() {
        let a = HashSink::new();
        a.emit(&ev(0, 1), true, DomainId::ROOT);
        let b = HashSink::new();
        b.emit(&ev(0, 1), true, DomainId::ROOT);
        b.emit(
            &Event::Publish {
                tid: Tid(3),
                clock: 99,
            },
            false,
            DomainId::ROOT,
        );
        assert_eq!(a.schedule_hash(), b.schedule_hash());
        assert_eq!(b.counts().get(EventKind::Publish), 1);
        assert_eq!(b.counts().total(), 2);
    }

    #[test]
    fn memory_sink_ring_drops_oldest() {
        let s = MemorySink::new(2);
        for i in 0..5 {
            s.emit(&ev(0, i), true, DomainId::ROOT);
        }
        let (evs, dropped) = s.take();
        assert_eq!(dropped, 3);
        assert_eq!(evs, vec![ev(0, 3), ev(0, 4)]);
    }

    #[test]
    fn root_domain_folds_exactly_like_fold() {
        let mut plain = Fnv1a::new();
        ev(2, 7).fold(&mut plain);
        let mut rooted = Fnv1a::new();
        ev(2, 7).fold_domain(DomainId::ROOT, &mut rooted);
        assert_eq!(plain.digest(), rooted.digest());
    }

    #[test]
    fn domains_distinguish_identical_event_streams() {
        let a = HashSink::new();
        a.emit(&ev(0, 1), true, DomainId(1));
        let b = HashSink::new();
        b.emit(&ev(0, 1), true, DomainId(2));
        let root = HashSink::new();
        root.emit(&ev(0, 1), true, DomainId::ROOT);
        assert_ne!(a.schedule_hash(), b.schedule_hash());
        assert_ne!(a.schedule_hash(), root.schedule_hash());
    }

    #[test]
    fn trace_handle_stamps_its_domain() {
        let sink = Arc::new(MemorySink::new(8));
        let h = TraceHandle::to_domain(sink.clone(), DomainId(3));
        assert_eq!(h.domain(), DomainId(3));
        h.emit(ev(0, 1));
        let (evs, dropped) = sink.take_domains();
        assert_eq!(dropped, 0);
        assert_eq!(evs, vec![(DomainId(3), ev(0, 1))]);
    }

    #[test]
    fn diagnose_reports_first_difference_with_context() {
        let left: Vec<Event> = (0..10).map(|i| ev(0, i)).collect();
        let mut right = left.clone();
        right[7] = ev(1, 7);
        let d = diagnose(&left, &right).expect("must diverge");
        assert_eq!(d.index, 7);
        assert_eq!(d.left, Some(ev(0, 7)));
        assert_eq!(d.right, Some(ev(1, 7)));
        assert_eq!(d.context.len(), 5);
        assert_eq!(d.context[0], (2, ev(0, 2)));
        let report = d.to_string();
        assert!(report.contains("diverge at event #7"), "{report}");
    }

    #[test]
    fn diagnose_handles_prefix_traces() {
        let left: Vec<Event> = (0..3).map(|i| ev(0, i)).collect();
        let right: Vec<Event> = (0..5).map(|i| ev(0, i)).collect();
        let d = diagnose(&left, &right).expect("length mismatch diverges");
        assert_eq!(d.index, 3);
        assert!(d.left.is_none());
        assert_eq!(d.right, Some(ev(0, 3)));
        assert!(diagnose(&left, &left).is_none());
    }

    #[test]
    fn diagnose_domains_names_the_divergent_shard() {
        let left: Vec<(DomainId, Event)> =
            (0..6).map(|i| (DomainId(i as u32 % 2), ev(0, i))).collect();
        let mut right = left.clone();
        right[5] = (DomainId(1), ev(9, 5));
        let d = diagnose_domains(&left, &right).expect("must diverge");
        assert_eq!(d.index, 5);
        assert_eq!(d.domain, DomainId(1));
        assert_eq!(d.left, Some(ev(0, 5)));
        assert_eq!(d.right, Some(ev(9, 5)));
        let report = d.to_string();
        assert!(report.contains("in domain D1"), "{report}");
        assert!(diagnose_domains(&left, &left).is_none());
    }

    #[test]
    fn diagnose_domains_flags_domain_only_mismatch() {
        let left = vec![(DomainId(0), ev(0, 1))];
        let right = vec![(DomainId(1), ev(0, 1))];
        let d = diagnose_domains(&left, &right).expect("domains differ");
        assert_eq!(d.index, 0);
        assert_eq!(d.left, d.right);
    }

    #[test]
    fn fold_distinguishes_kinds_with_equal_fields() {
        let mut a = Fnv1a::new();
        Event::TokenAcquire {
            tid: Tid(1),
            clock: 5,
        }
        .fold(&mut a);
        let mut b = Fnv1a::new();
        Event::TokenRelease {
            tid: Tid(1),
            clock: 5,
        }
        .fold(&mut b);
        assert_ne!(a.digest(), b.digest());
    }
}
