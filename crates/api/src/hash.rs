//! Small deterministic hashing utilities.
//!
//! Output hashes are the determinism witness used throughout the test suite:
//! two runs of a deterministic runtime must produce bit-identical final heap
//! regions, which we compare by FNV-1a digest rather than by byte copies.

/// Incremental 64-bit FNV-1a hasher.
///
/// FNV-1a is used (rather than `std::hash`) because its output is stable
/// across Rust versions and processes, which matters for recording expected
/// digests in tests and experiment logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a `u64` in little-endian byte order.
    #[inline]
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Returns the current digest.
    #[inline]
    pub fn digest(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.update(bytes);
        h.digest()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), Fnv1a::hash(b"foobar"));
    }

    #[test]
    fn u64_update_is_le() {
        let mut a = Fnv1a::new();
        a.update_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.update(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.digest(), b.digest());
    }
}
