//! Virtual-time cost model.
//!
//! The evaluation host cannot measure parallel wall-clock time (it has a
//! single core), so every runtime charges its operations in *virtual cycles*
//! against the constants defined here. The defaults are calibrated to the
//! rough magnitudes of the paper's testbed (2 GHz Xeon, Linux 2.6.37 with
//! the Conversion kernel patch): a copy-on-write page fault costs a trap
//! plus a 4 KiB copy, a commit scans each dirty page, reading a performance
//! counter from kernel space costs a syscall, and so on.
//!
//! The absolute values only scale the overhead-to-work ratio; the figures in
//! the paper are ratios between runtimes that all pay from this same table,
//! so the reproduced *shapes* are insensitive to modest recalibration. Each
//! constant is documented with what it substitutes for.

/// Prices (in virtual cycles) for runtime-internal operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Copy-on-write page fault: trap + twin copy of one 4 KiB page.
    pub fault: u64,
    /// Fixed cost of a commit operation (version bookkeeping).
    pub commit_base: u64,
    /// Per dirty page committed without a conflict (diff scan + publish).
    pub page_commit: u64,
    /// Additional cost when a committed page conflicts with a remote commit
    /// and needs a byte-granularity merge.
    pub page_merge: u64,
    /// Per page applied during an update (page-table entry swap).
    pub page_update: u64,
    /// Per page registered in phase 1 of a parallel barrier commit; the
    /// paper notes phase 2 does "several times" the work of phase 1.
    pub page_register: u64,
    /// Per *mapped* page re-protected at an mprotect-based commit. Only
    /// DThreads pays this (its isolation is `mprotect()`); DWC and
    /// Consequence use Conversion's kernel page-table support, which is
    /// exactly the difference the DWC system exists to remove.
    pub page_protect: u64,
    /// Fixed cost of an update operation.
    pub update_base: u64,
    /// Token acquire/release bookkeeping.
    pub token_op: u64,
    /// Kernel-space read of the retired-instruction counter (one syscall).
    pub counter_read_kernel: u64,
    /// User-space read of the retired-instruction counter (§3.4).
    pub counter_read_user: u64,
    /// Performance-counter overflow interrupt (publication of the clock).
    pub overflow_irq: u64,
    /// Entry into a synchronization operation (library prologue/epilogue).
    pub sync_op: u64,
    /// Waking one blocked thread (futex wake analogue).
    pub wakeup: u64,
    /// Fixed cost of forking a fresh isolated thread (process creation).
    pub spawn_base: u64,
    /// Per mapped page copied into a fresh workspace's page table (§3.3).
    pub page_map: u64,
    /// Reusing a pooled thread instead of forking (§3.3).
    pub pool_reuse: u64,
    /// Nondeterministic pthreads lock/unlock (uncontended fast path).
    pub pthread_lock: u64,
    /// Nondeterministic pthreads barrier / condvar operation.
    pub pthread_sync: u64,
    /// Nondeterministic pthreads thread creation.
    pub pthread_spawn: u64,
    /// Per 8-byte word of shared-memory access (load or store).
    pub mem_word: u64,
    /// Per version reclaimed (dropped or squashed) by the version-chain
    /// collector; the single-threaded collector of Fig. 12 pays this on the
    /// committing thread's critical path.
    pub gc_version: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration: 1 virtual cycle ~= 1 cycle at 2 GHz.
        CostModel {
            fault: 3_000,
            commit_base: 1_500,
            page_commit: 1_200,
            page_merge: 2_500,
            page_update: 250,
            page_register: 300,
            page_protect: 45,
            update_base: 600,
            token_op: 150,
            counter_read_kernel: 3_000,
            counter_read_user: 60,
            overflow_irq: 2_500,
            sync_op: 200,
            wakeup: 1_200,
            spawn_base: 60_000,
            page_map: 40,
            pool_reuse: 2_000,
            pthread_lock: 40,
            pthread_sync: 400,
            pthread_spawn: 9_000,
            mem_word: 1,
            gc_version: 400,
        }
    }
}

impl CostModel {
    /// Cost model with all runtime overheads zeroed (work and memory cycles
    /// only). Useful in tests to isolate logical-clock behaviour.
    pub fn free() -> Self {
        CostModel {
            fault: 0,
            commit_base: 0,
            page_commit: 0,
            page_merge: 0,
            page_update: 0,
            page_register: 0,
            page_protect: 0,
            update_base: 0,
            token_op: 0,
            counter_read_kernel: 0,
            counter_read_user: 0,
            overflow_irq: 0,
            sync_op: 0,
            wakeup: 0,
            spawn_base: 0,
            page_map: 0,
            pool_reuse: 0,
            pthread_lock: 0,
            pthread_sync: 0,
            pthread_spawn: 0,
            mem_word: 0,
            gc_version: 0,
        }
    }

    /// Virtual cost of accessing `bytes` bytes of shared memory.
    #[inline]
    pub fn mem_access(&self, bytes: usize) -> u64 {
        // Round up to whole words so single-byte accesses are not free.
        self.mem_word * (bytes.div_ceil(8) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_calibrated() {
        let c = CostModel::default();
        // A fault must dwarf a word access, and kernel counter reads must
        // dwarf user-space reads (that differential is what §3.4 measures).
        assert!(c.fault > 100 * c.mem_word);
        assert!(c.counter_read_kernel > 10 * c.counter_read_user);
    }

    #[test]
    fn free_model_charges_nothing_for_runtime_ops() {
        let c = CostModel::free();
        assert_eq!(c.fault, 0);
        assert_eq!(c.mem_access(4096), 0);
    }

    #[test]
    fn mem_access_rounds_up_to_words() {
        let c = CostModel {
            mem_word: 2,
            ..CostModel::free()
        };
        assert_eq!(c.mem_access(0), 0);
        assert_eq!(c.mem_access(1), 2);
        assert_eq!(c.mem_access(8), 2);
        assert_eq!(c.mem_access(9), 4);
        assert_eq!(c.mem_access(4096), 2 * 512);
    }
}
