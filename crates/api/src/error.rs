//! The deterministic failure taxonomy.
//!
//! A deterministic runtime cannot stop at deterministic *success*: when a
//! workload thread panics, wedges, or trips a runtime invariant, the
//! failure itself must be delivered deterministically — same error, same
//! observing thread, same point in the schedule, on every rerun of the
//! same seed. [`DmtError`] is the vocabulary for those outcomes. It is
//! runtime-agnostic (defined here, next to [`crate::ThreadCtx`]) so
//! workloads and the stress harness can match on failures without
//! depending on a specific runtime crate.
//!
//! The containment guarantees behind each variant are documented in
//! `docs/ROBUSTNESS.md` at the workspace root.

use std::fmt;

use crate::ids::{BarrierId, CondId, MutexId, RwLockId, Tid};

/// A deterministic runtime failure.
///
/// Every variant is delivered at a deterministic point in the schedule:
/// poison errors arrive in token-grant order, `ThreadPanicked` is observed
/// by `join` exactly where the join would have succeeded, and supervision
/// errors (`Deadlock`, `SchedulerInvariant`, `Shutdown`) tear the run down
/// with a diagnosis instead of hanging the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmtError {
    /// The joined (or otherwise awaited) thread panicked. Carries the
    /// panic payload rendered as a string.
    ThreadPanicked {
        /// The thread that panicked.
        tid: Tid,
        /// The panic message (payload downcast to a string, or a
        /// placeholder for non-string payloads).
        msg: String,
    },
    /// The mutex's owner panicked while holding it. Subsequent acquirers
    /// observe this error in deterministic token-grant order.
    MutexPoisoned {
        /// The poisoned mutex.
        mutex: MutexId,
        /// The thread whose panic poisoned it.
        by: Tid,
    },
    /// A thread waiting on a condition variable was woken because the
    /// owner of its associated mutex died, poisoning the mutex the waiter
    /// would have to re-acquire.
    CondOwnerDied {
        /// The condition variable being waited on.
        cond: CondId,
        /// The mutex the waiter held (and would re-acquire).
        mutex: MutexId,
        /// The thread whose panic poisoned the mutex.
        by: Tid,
    },
    /// A reader–writer lock's exclusive holder panicked while writing.
    RwLockPoisoned {
        /// The poisoned lock.
        lock: RwLockId,
        /// The writer whose panic poisoned it.
        by: Tid,
    },
    /// A barrier can never open again: a participant died before arriving,
    /// leaving fewer live threads than parties.
    BarrierBroken {
        /// The broken barrier.
        barrier: BarrierId,
    },
    /// The supervisor observed no logical progress while threads remain:
    /// either an all-threads-blocked cycle or a wedged token holder.
    /// Carries the watchdog's diagnosis (token holder, per-thread states,
    /// waiter queues).
    Deadlock {
        /// Multi-line human-readable diagnosis from the watchdog.
        diagnosis: String,
    },
    /// A scheduler internal invariant was violated (fast-path corruption).
    /// The runtime fails over to the reference scheduler when it can;
    /// this error reports the violation when it cannot.
    SchedulerInvariant {
        /// What was violated.
        detail: String,
    },
    /// The runtime is shutting down (watchdog teardown after a diagnosed
    /// stall); blocked operations unwind instead of waiting forever.
    Shutdown,
}

impl fmt::Display for DmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmtError::ThreadPanicked { tid, msg } => {
                write!(f, "thread {} panicked: {msg}", tid.0)
            }
            DmtError::MutexPoisoned { mutex, by } => {
                write!(f, "mutex {} poisoned by panicked thread {}", mutex.0, by.0)
            }
            DmtError::CondOwnerDied { cond, mutex, by } => write!(
                f,
                "condvar {} wait aborted: mutex {} poisoned by panicked thread {}",
                cond.0, mutex.0, by.0
            ),
            DmtError::RwLockPoisoned { lock, by } => {
                write!(f, "rwlock {} poisoned by panicked thread {}", lock.0, by.0)
            }
            DmtError::BarrierBroken { barrier } => {
                write!(f, "barrier {} broken: a participant died", barrier.0)
            }
            DmtError::Deadlock { diagnosis } => {
                write!(f, "no logical progress (deadlock):\n{diagnosis}")
            }
            DmtError::SchedulerInvariant { detail } => {
                write!(f, "scheduler invariant violated: {detail}")
            }
            DmtError::Shutdown => f.write_str("runtime shutting down"),
        }
    }
}

impl std::error::Error for DmtError {}

/// Result alias for fallible deterministic operations.
pub type DmtResult<T> = Result<T, DmtError>;

/// Unwind payload used to deliver a [`DmtError`] through the infallible
/// [`crate::ThreadCtx`] methods.
///
/// The trait's blocking methods (`mutex_lock`, `cond_wait`, `join`, …)
/// return `()`; when a deterministic error must surface through them, the
/// runtime unwinds with this payload instead of a plain panic. The thread
/// boundary (`catch_unwind` in the runtime) recognizes it and converts it
/// back into the carried error without the panic-hook noise a real
/// workload bug produces. Workloads that prefer explicit handling call the
/// `try_*` variants, which return the error instead of unwinding.
#[derive(Clone, Debug)]
pub struct ContainedError(pub DmtError);

impl fmt::Display for ContainedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_actors() {
        let e = DmtError::MutexPoisoned {
            mutex: MutexId(3),
            by: Tid(7),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'), "{s}");

        let e = DmtError::ThreadPanicked {
            tid: Tid(2),
            msg: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn errors_are_comparable_for_deterministic_assertions() {
        let a = DmtError::Shutdown;
        let b = DmtError::Shutdown;
        assert_eq!(a, b);
        assert_ne!(
            DmtError::BarrierBroken {
                barrier: BarrierId(0)
            },
            DmtError::BarrierBroken {
                barrier: BarrierId(1)
            }
        );
    }
}
