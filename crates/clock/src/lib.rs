//! Deterministic logical clocks (§2.1, §3.2, §3.5 of the Consequence paper).
//!
//! A deterministic logical clock produces a total order over synchronization
//! operations that is a pure function of program behaviour. Two policies are
//! implemented:
//!
//! * **Instruction count (Kendo/GMIC):** a sync op performed at logical
//!   clock `c` by thread `t` is ordered by the pair `(c, t)`; a thread may
//!   proceed only when it holds the global minimum among threads that could
//!   still perform an earlier operation.
//! * **Round robin** (DThreads/DWC): threads take turns in id order; a
//!   thread's sync op waits for its turn regardless of how much work others
//!   still have — the Figure 1b pathology.
//!
//! The [`ClockTable`] is a passive state machine mutated under the owning
//! runtime's global lock. Crucially it also propagates **virtual time**
//! along wake edges: whenever an event (clock publication, departure, turn
//! advance) makes a waiting thread eligible, the event's virtual timestamp
//! is folded into the waiter's `pending_wake` accumulator, so the waiter
//! resumes no earlier (in virtual time) than the event that released it.
//! This is what makes reported runtimes reflect deterministic waiting.

// Robustness gate: scheduler code must not panic on recoverable
// conditions. The few sanctioned `expect` sites carry `#[allow]` with an
// invariant comment proving they are unreachable absent caller API misuse.
// (Test code is exempt: asserting via unwrap/expect is the point there.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fast;
pub mod overflow;
pub mod replay;
pub mod table;

pub use fast::{FastTable, PublishOutcome, SchedKind, SchedTable, Slots};
pub use overflow::OverflowPolicy;
pub use replay::ReplayCtl;
pub use table::{ClockTable, OrderPolicy, ThreadState};
