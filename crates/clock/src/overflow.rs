//! Adaptive counter-overflow policy (§3.2 of the Consequence paper).
//!
//! A running thread's logical clock is visible to others only when
//! *published* — in the paper, when the hardware performance counter
//! overflows and raises an interrupt. Overflow frequency trades sequential
//! overhead (each publication costs an interrupt) against notification
//! latency (a waiter learns it is the new GMIC only at the next overflow).
//! The frequency has **no effect on determinism**, only on real time, which
//! is exactly why it can be adapted freely.
//!
//! The paper's three rules, implemented verbatim:
//!
//! 1. at chunk start, reset the interval to a conservative base
//!    (5 000 retired instructions);
//! 2. if a thread is waiting to become the GMIC, aim the next overflow at
//!    the point where our clock first exceeds that waiter's clock;
//! 3. otherwise double the interval at every overflow.

/// Per-thread overflow threshold calculator.
#[derive(Clone, Debug)]
pub struct OverflowPolicy {
    base: u64,
    adaptive: bool,
    interval: u64,
}

/// The paper's conservative base overflow interval (rule 1).
pub const BASE_OVERFLOW: u64 = 5_000;

impl OverflowPolicy {
    /// A policy with the given base interval. When `adaptive` is false the
    /// interval stays fixed at `base` (the ablation baseline of Fig. 13).
    pub fn new(base: u64, adaptive: bool) -> OverflowPolicy {
        OverflowPolicy {
            base,
            adaptive,
            interval: base,
        }
    }

    /// The paper's configuration.
    pub fn paper(adaptive: bool) -> OverflowPolicy {
        OverflowPolicy::new(BASE_OVERFLOW, adaptive)
    }

    /// Rule 1: reset at chunk start.
    pub fn chunk_start(&mut self) {
        self.interval = self.base;
    }

    /// Computes the logical-clock value at which the next publication
    /// should occur, given the current clock `now` and the earliest waiting
    /// thread's clock, if any.
    pub fn next_threshold(&mut self, now: u64, min_waiter: Option<u64>) -> u64 {
        if !self.adaptive {
            return now.saturating_add(self.base);
        }
        if let Some(w) = min_waiter {
            // Rule 2: overflow just as our clock passes the waiter's.
            return w.max(now).saturating_add(1);
        }
        // Rule 3: no one to notify — back off exponentially. The interval
        // saturates under a publication storm (a forced-early bias resets
        // the *threshold* every tick but rule 3 keeps doubling), so the
        // addition must saturate too.
        let t = now.saturating_add(self.interval);
        self.interval = self.interval.saturating_mul(2);
        t
    }

    /// Current interval (exposed for tests and stats).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// [`next_threshold`](OverflowPolicy::next_threshold) with the chosen
    /// interval passed through `bias` — the fault-injection hook used by
    /// `dmt-stress` to force early or late publication. The module contract
    /// (frequency has no effect on determinism, only real time) is exactly
    /// what makes arbitrary bias safe; the stress harness turns that claim
    /// into an oracle. An identity `bias` reproduces `next_threshold`.
    pub fn next_threshold_biased(
        &mut self,
        now: u64,
        min_waiter: Option<u64>,
        bias: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let t = self.next_threshold(now, min_waiter);
        let interval = t.saturating_sub(now).max(1);
        now.saturating_add(bias(interval).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_ignores_waiters_and_never_backs_off() {
        let mut p = OverflowPolicy::new(1_000, false);
        assert_eq!(p.next_threshold(0, Some(50)), 1_000);
        assert_eq!(p.next_threshold(1_000, None), 2_000);
        assert_eq!(p.interval(), 1_000);
    }

    #[test]
    fn rule2_targets_waiter_crossing() {
        let mut p = OverflowPolicy::paper(true);
        // Waiter at 12 000, we are at 10 000: publish at 12 001.
        assert_eq!(p.next_threshold(10_000, Some(12_000)), 12_001);
        // Waiter already below us: publish immediately (now + 1).
        assert_eq!(p.next_threshold(10_000, Some(9_000)), 10_001);
    }

    #[test]
    fn rule3_doubles_without_waiters() {
        let mut p = OverflowPolicy::paper(true);
        assert_eq!(p.next_threshold(0, None), 5_000);
        assert_eq!(p.next_threshold(5_000, None), 15_000);
        assert_eq!(p.next_threshold(15_000, None), 35_000);
    }

    #[test]
    fn rule1_resets_at_chunk_start() {
        let mut p = OverflowPolicy::paper(true);
        p.next_threshold(0, None);
        p.next_threshold(0, None);
        assert!(p.interval() > BASE_OVERFLOW);
        p.chunk_start();
        assert_eq!(p.interval(), BASE_OVERFLOW);
    }

    #[test]
    fn biased_threshold_reduces_to_plain_with_identity_bias() {
        let mut a = OverflowPolicy::paper(true);
        let mut b = OverflowPolicy::paper(true);
        for (now, w) in [(0, None), (5_000, Some(7_000)), (7_001, None)] {
            assert_eq!(
                a.next_threshold_biased(now, w, |iv| iv),
                b.next_threshold(now, w)
            );
        }
        assert_eq!(a.interval(), b.interval());
    }

    #[test]
    fn biased_threshold_clamps_to_progress() {
        let mut p = OverflowPolicy::paper(true);
        // A zero-returning bias must still move the threshold forward.
        assert_eq!(p.next_threshold_biased(100, None, |_| 0), 101);
        // Saturating late bias must not wrap.
        let mut q = OverflowPolicy::paper(true);
        assert_eq!(
            q.next_threshold_biased(u64::MAX - 2, None, |_| u64::MAX),
            u64::MAX
        );
    }

    #[test]
    fn doubling_saturates() {
        let mut p = OverflowPolicy::new(u64::MAX / 2, true);
        p.next_threshold(0, None);
        p.next_threshold(0, None);
        assert_eq!(p.interval(), u64::MAX);
        // Once saturated, computing the next threshold must saturate too
        // instead of overflowing (caught by dmt-stress's forced-early case:
        // a publication storm doubles the interval to the ceiling fast).
        assert_eq!(p.next_threshold(123, None), u64::MAX);
    }
}
