//! Adaptive counter-overflow policy (§3.2 of the Consequence paper).
//!
//! A running thread's logical clock is visible to others only when
//! *published* — in the paper, when the hardware performance counter
//! overflows and raises an interrupt. Overflow frequency trades sequential
//! overhead (each publication costs an interrupt) against notification
//! latency (a waiter learns it is the new GMIC only at the next overflow).
//! The frequency has **no effect on determinism**, only on real time, which
//! is exactly why it can be adapted freely.
//!
//! The paper's three rules, implemented verbatim:
//!
//! 1. at chunk start, reset the interval to a conservative base
//!    (5 000 retired instructions);
//! 2. if a thread is waiting to become the GMIC, aim the next overflow at
//!    the point where our clock first exceeds that waiter's clock;
//! 3. otherwise double the interval at every overflow.

/// Per-thread overflow threshold calculator.
#[derive(Clone, Debug)]
pub struct OverflowPolicy {
    base: u64,
    adaptive: bool,
    interval: u64,
}

/// The paper's conservative base overflow interval (rule 1).
pub const BASE_OVERFLOW: u64 = 5_000;

impl OverflowPolicy {
    /// A policy with the given base interval. When `adaptive` is false the
    /// interval stays fixed at `base` (the ablation baseline of Fig. 13).
    pub fn new(base: u64, adaptive: bool) -> OverflowPolicy {
        OverflowPolicy {
            base,
            adaptive,
            interval: base,
        }
    }

    /// The paper's configuration.
    pub fn paper(adaptive: bool) -> OverflowPolicy {
        OverflowPolicy::new(BASE_OVERFLOW, adaptive)
    }

    /// Rule 1: reset at chunk start.
    pub fn chunk_start(&mut self) {
        self.interval = self.base;
    }

    /// Computes the logical-clock value at which the next publication
    /// should occur, given the current clock `now` and the earliest waiting
    /// thread's clock, if any.
    pub fn next_threshold(&mut self, now: u64, min_waiter: Option<u64>) -> u64 {
        if !self.adaptive {
            return now + self.base;
        }
        if let Some(w) = min_waiter {
            // Rule 2: overflow just as our clock passes the waiter's.
            return w.max(now) + 1;
        }
        // Rule 3: no one to notify — back off exponentially.
        let t = now + self.interval;
        self.interval = self.interval.saturating_mul(2);
        t
    }

    /// Current interval (exposed for tests and stats).
    pub fn interval(&self) -> u64 {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_ignores_waiters_and_never_backs_off() {
        let mut p = OverflowPolicy::new(1_000, false);
        assert_eq!(p.next_threshold(0, Some(50)), 1_000);
        assert_eq!(p.next_threshold(1_000, None), 2_000);
        assert_eq!(p.interval(), 1_000);
    }

    #[test]
    fn rule2_targets_waiter_crossing() {
        let mut p = OverflowPolicy::paper(true);
        // Waiter at 12 000, we are at 10 000: publish at 12 001.
        assert_eq!(p.next_threshold(10_000, Some(12_000)), 12_001);
        // Waiter already below us: publish immediately (now + 1).
        assert_eq!(p.next_threshold(10_000, Some(9_000)), 10_001);
    }

    #[test]
    fn rule3_doubles_without_waiters() {
        let mut p = OverflowPolicy::paper(true);
        assert_eq!(p.next_threshold(0, None), 5_000);
        assert_eq!(p.next_threshold(5_000, None), 15_000);
        assert_eq!(p.next_threshold(15_000, None), 35_000);
    }

    #[test]
    fn rule1_resets_at_chunk_start() {
        let mut p = OverflowPolicy::paper(true);
        p.next_threshold(0, None);
        p.next_threshold(0, None);
        assert!(p.interval() > BASE_OVERFLOW);
        p.chunk_start();
        assert_eq!(p.interval(), BASE_OVERFLOW);
    }

    #[test]
    fn doubling_saturates() {
        let mut p = OverflowPolicy::new(u64::MAX / 2, true);
        p.next_threshold(0, None);
        p.next_threshold(0, None);
        assert_eq!(p.interval(), u64::MAX);
    }
}
