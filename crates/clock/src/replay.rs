//! Replay grant source: drives token grants from a recorded schedule.
//!
//! During replay the scheduler does not *recompute* eligibility from
//! published clocks — it *follows* the recorded token-grant order. A
//! [`ReplayCtl`] holds that order; the runtime consults
//! [`ReplayCtl::admits`] where it would normally ask the clock table for
//! eligibility, and calls [`ReplayCtl::granted`] at the grant point to
//! advance the cursor.
//!
//! Replay is self-releasing on divergence: once the trace is exhausted,
//! or a comparison sink flags a divergence via
//! [`ReplayCtl::mark_diverged`], `admits` returns `None` and the runtime
//! falls back to real (recomputed) eligibility so the run can complete
//! and report *where* it split instead of deadlocking on a schedule that
//! no longer fits the execution.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A recorded token-grant order, consumed concurrently by every thread
/// of a replaying runtime.
///
/// All methods are lock-free; the runtime calls them under its own
/// global lock, so the relaxed orderings below are never load-bearing
/// for correctness of the grant sequence itself.
#[derive(Debug)]
pub struct ReplayCtl {
    /// Grantee thread ids (`Tid.0`), in recorded schedule order.
    grants: Vec<u32>,
    /// Next grant to hand out.
    cursor: AtomicUsize,
    /// Replay abandoned: fall back to recomputed eligibility.
    diverged: AtomicBool,
}

impl ReplayCtl {
    /// Builds a grant source from the recorded grantee sequence.
    pub fn new(grants: Vec<u32>) -> ReplayCtl {
        ReplayCtl {
            grants,
            cursor: AtomicUsize::new(0),
            diverged: AtomicBool::new(false),
        }
    }

    /// Whether thread `tid` is the recorded next grantee. `None` when
    /// the replay no longer drives grants (trace exhausted or diverged)
    /// and the caller must fall back to recomputed eligibility.
    pub fn admits(&self, tid: u32) -> Option<bool> {
        if self.diverged.load(Ordering::Acquire) {
            return None;
        }
        let next = *self.grants.get(self.cursor.load(Ordering::Acquire))?;
        Some(next == tid)
    }

    /// Records that `tid` took the token, advancing the cursor when the
    /// grant matches the script. A mismatching grant (possible only
    /// after a fallback wake raced the divergence flag) marks the replay
    /// diverged rather than mis-advancing the script.
    pub fn granted(&self, tid: u32) {
        if self.diverged.load(Ordering::Acquire) {
            return;
        }
        let at = self.cursor.load(Ordering::Acquire);
        match self.grants.get(at) {
            Some(&next) if next == tid => {
                self.cursor.store(at + 1, Ordering::Release);
            }
            Some(_) => self.mark_diverged(),
            None => {}
        }
    }

    /// Abandons grant driving: every subsequent [`ReplayCtl::admits`]
    /// returns `None`. Called by the comparison sink on the first
    /// divergent event so the run can finish under real eligibility.
    pub fn mark_diverged(&self) {
        self.diverged.store(true, Ordering::Release);
    }

    /// Whether the replay was abandoned.
    pub fn diverged(&self) -> bool {
        self.diverged.load(Ordering::Acquire)
    }

    /// Grants consumed so far.
    pub fn position(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Total grants in the script.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Whether every scripted grant has been consumed.
    pub fn exhausted(&self) -> bool {
        self.position() >= self.grants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_only_the_scripted_next_grantee() {
        let ctl = ReplayCtl::new(vec![0, 2, 1]);
        assert_eq!(ctl.admits(0), Some(true));
        assert_eq!(ctl.admits(2), Some(false));
        ctl.granted(0);
        assert_eq!(ctl.admits(0), Some(false));
        assert_eq!(ctl.admits(2), Some(true));
        ctl.granted(2);
        ctl.granted(1);
        assert!(ctl.exhausted());
        // Exhausted: callers fall back to recomputed eligibility.
        assert_eq!(ctl.admits(1), None);
    }

    #[test]
    fn divergence_releases_the_script() {
        let ctl = ReplayCtl::new(vec![0, 1]);
        ctl.mark_diverged();
        assert!(ctl.diverged());
        assert_eq!(ctl.admits(0), None);
        // Grants after divergence do not move the cursor.
        ctl.granted(0);
        assert_eq!(ctl.position(), 0);
    }

    #[test]
    fn offscript_grant_marks_divergence() {
        let ctl = ReplayCtl::new(vec![0, 1]);
        ctl.granted(1);
        assert!(ctl.diverged());
        assert_eq!(ctl.position(), 0);
    }
}
