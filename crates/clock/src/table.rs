//! The clock table: per-thread logical clocks and token eligibility.

use dmt_api::Tid;

/// Which deterministic total order the table enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Kendo-style: order sync ops by `(logical clock, tid)`.
    InstructionCount,
    /// DThreads-style: threads take turns in id order.
    RoundRobin,
}

/// Scheduling state of one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Executing a chunk; `published` is a monotone lower bound of its true
    /// logical clock.
    Running,
    /// Blocked at a synchronization operation with this exact clock,
    /// waiting for eligibility.
    AtSync(u64),
    /// Removed itself from GMIC consideration (`clockDepart()`): blocked on
    /// a lock, condition variable, barrier or join.
    Departed,
    /// Exited.
    Finished,
}

/// A clock value standing in for "will never block anyone again" (departed
/// or finished threads).
const UNBLOCKED: u64 = u64::MAX;

/// Histories shorter than this are never pruned: below it the scan cost is
/// noise and the doubling amortization would thrash.
pub(crate) const PRUNE_MIN: usize = 64;

#[derive(Clone, Debug)]
struct Entry {
    state: ThreadState,
    published: u64,
    /// Publication history: every externally visible change of this
    /// thread's effective clock bound, as `(bound, virtual time)`. A
    /// departure records `(UNBLOCKED, v)`; a reactivation records the
    /// restored (possibly lower) bound. The sequence is a deterministic
    /// function of the program, which is what makes virtual-time waits
    /// reproducible: a waiter's wake time is looked up here rather than
    /// taken from racy wall-clock arrival order.
    ///
    /// Bounded by watermark pruning: entries below the minimum clock any
    /// current or future waiter can query are unreachable by the backward
    /// walk in [`ClockTable::crossing_v`] and are periodically dropped.
    history: Vec<(u64, u64)>,
    /// History length right after the last prune attempt; the next attempt
    /// waits for the history to double past it (amortized O(1) per push).
    hist_floor: usize,
}

/// Drops history entries unreachable by any query at clock `>= w`.
///
/// An entry with `bound < w` compares lexicographically below every future
/// query key `(c, tid)` with `c >= w`, so the backward walk in `crossing_v`
/// always stops at the *newest* such entry ("blocked"); everything older is
/// dead. That newest entry itself is retained as the blocked sentinel.
pub(crate) fn prune_history(h: &mut Vec<(u64, u64)>, w: u64) {
    if let Some(k) = h.iter().rposition(|&(b, _)| b < w) {
        h.drain(..k);
    }
}

/// Per-thread logical clocks plus the eligibility rule for the global token.
///
/// All methods must be called under one external lock (the runtime's global
/// mutex); the table itself performs no synchronization.
#[derive(Debug)]
pub struct ClockTable {
    policy: OrderPolicy,
    entries: Vec<Option<Entry>>,
    /// Round-robin: index of the thread whose turn it is, and the virtual
    /// time of the event that moved the turn there.
    rr_turn: usize,
    rr_turn_v: u64,
}

impl ClockTable {
    /// An empty table with room for `slots` threads.
    pub fn new(policy: OrderPolicy, slots: usize) -> ClockTable {
        ClockTable {
            policy,
            entries: vec![None; slots],
            rr_turn: 0,
            rr_turn_v: 0,
        }
    }

    /// The ordering policy in force.
    pub fn policy(&self) -> OrderPolicy {
        self.policy
    }

    // INVARIANT: every `Tid` reaching a table method was registered by the
    // runtime before use (registration happens under the same global lock
    // as every query). An unregistered tid is API misuse by the caller —
    // a program bug, not a recoverable runtime condition — so these two
    // accessors are the crate's sanctioned panic sites.
    #[allow(clippy::expect_used)]
    fn entry(&self, t: Tid) -> &Entry {
        self.entries[t.index()].as_ref().expect("unregistered tid")
    }

    #[allow(clippy::expect_used)]
    fn entry_mut(&mut self, t: Tid) -> &mut Entry {
        self.entries[t.index()].as_mut().expect("unregistered tid")
    }

    /// Restores one thread's snapshot — the fast-scheduler failover path
    /// (`crate::fast::FastTable::export_reference`). The history must be
    /// the thread's deterministic publication history: the rebuilt table's
    /// wake-time answers (`crossing_v`) are computed from it.
    pub(crate) fn restore_thread(
        &mut self,
        t: Tid,
        state: ThreadState,
        published: u64,
        history: Vec<(u64, u64)>,
    ) {
        self.entries[t.index()] = Some(Entry {
            state,
            published,
            hist_floor: history.len(),
            history,
        });
    }

    /// Restores the round-robin turn — failover path only.
    pub(crate) fn restore_rr_turn(&mut self, turn: usize, v: u64) {
        self.rr_turn = turn;
        self.rr_turn_v = v;
    }

    /// Registers a new thread with an inherited starting clock, at the
    /// spawner's virtual time `v`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is taken or out of range.
    pub fn register(&mut self, t: Tid, clock: u64, v: u64) {
        let slot = &mut self.entries[t.index()];
        assert!(slot.is_none(), "tid {t} registered twice");
        *slot = Some(Entry {
            state: ThreadState::Running,
            published: clock,
            history: vec![(clock, v)],
            hist_floor: 0,
        });
        self.rr_fixup(v);
    }

    /// Current state of `t`.
    pub fn state(&self, t: Tid) -> ThreadState {
        self.entry(t).state
    }

    /// Last published clock of `t`.
    pub fn published(&self, t: Tid) -> u64 {
        self.entry(t).published
    }

    /// Current length of `t`'s publication history (watermark pruning keeps
    /// this bounded while the rest of the table makes progress).
    pub fn history_len(&self, t: Tid) -> usize {
        self.entry(t).history.len()
    }

    /// The minimum clock any current or future waiter can still query:
    /// `AtSync` threads can query at their waiting clock, Running and
    /// Departed threads at no less than their published clock (clocks are
    /// monotone, and a new registration inherits its spawner's clock).
    /// Finished threads never query again.
    fn watermark(&self) -> u64 {
        let mut w = u64::MAX;
        for e in self.entries.iter().flatten() {
            let floor = match e.state {
                ThreadState::Running | ThreadState::Departed => e.published,
                ThreadState::AtSync(c) => c,
                ThreadState::Finished => continue,
            };
            w = w.min(floor);
        }
        w
    }

    /// Prunes `t`'s history against the watermark once it has doubled since
    /// the last attempt (and is past [`PRUNE_MIN`]).
    fn maybe_prune(&mut self, t: Tid) {
        let len = self.entry(t).history.len();
        if len < PRUNE_MIN || len < 2 * self.entry(t).hist_floor.max(PRUNE_MIN / 2) {
            return;
        }
        let w = self.watermark();
        let e = self.entry_mut(t);
        prune_history(&mut e.history, w);
        e.hist_floor = e.history.len();
    }

    /// Publishes a running thread's clock (a counter overflow) at virtual
    /// time `v`. Returns `true` if the published value advanced (waiters
    /// may have become eligible — a notification hint).
    pub fn publish(&mut self, t: Tid, clock: u64, v: u64) -> bool {
        let e = self.entry_mut(t);
        debug_assert!(matches!(e.state, ThreadState::Running));
        let old = e.published;
        debug_assert!(clock >= old, "published clock must be monotone");
        e.published = clock;
        e.history.push((clock, v));
        self.maybe_prune(t);
        clock > old
    }

    /// Thread `t` arrives at a synchronization operation with exact clock
    /// `clock`, at virtual time `v`.
    pub fn arrive_sync(&mut self, t: Tid, clock: u64, v: u64) {
        let e = self.entry_mut(t);
        e.published = clock.max(e.published);
        e.state = ThreadState::AtSync(clock);
        let p = e.published;
        e.history.push((p, v));
        self.maybe_prune(t);
    }

    /// Thread `t` removes itself from GMIC consideration (`clockDepart`)
    /// at virtual time `v`.
    pub fn depart(&mut self, t: Tid, v: u64) {
        let e = self.entry_mut(t);
        e.state = ThreadState::Departed;
        e.history.push((UNBLOCKED, v));
        if self.policy == OrderPolicy::RoundRobin && self.rr_turn == t.index() {
            self.rr_advance(v);
        }
    }

    /// Thread `t` finishes at virtual time `v`.
    pub fn finish(&mut self, t: Tid, v: u64) {
        let e = self.entry_mut(t);
        e.state = ThreadState::Finished;
        e.history.push((UNBLOCKED, v));
        if self.policy == OrderPolicy::RoundRobin && self.rr_turn == t.index() {
            self.rr_advance(v);
        }
    }

    /// A departed thread is woken by an event at virtual time `v` (lock
    /// hand-off, signal, exit) and rejoins GMIC consideration with clock
    /// `clock` — which may *lower* its effective bound again.
    pub fn reactivate(&mut self, t: Tid, clock: u64, v: u64) {
        let e = self.entry_mut(t);
        debug_assert!(matches!(e.state, ThreadState::Departed));
        e.state = ThreadState::Running;
        e.published = e.published.max(clock);
        let p = e.published;
        e.history.push((p, v));
        self.rr_fixup(v);
    }

    /// Thread `t` resumes running after completing a sync op at clock
    /// `clock` (possibly fast-forwarded) and virtual time `v`.
    pub fn resume(&mut self, t: Tid, clock: u64, v: u64) {
        let e = self.entry_mut(t);
        e.state = ThreadState::Running;
        e.published = e.published.max(clock);
        let p = e.published;
        e.history.push((p, v));
    }

    /// Whether `t` (which must be `AtSync`) may proceed under the policy.
    ///
    /// Instruction count: no other live thread could still perform an
    /// earlier-ordered sync op — every Running/AtSync thread's published
    /// clock is lexicographically past `(clock, t)`. Round robin: it is
    /// `t`'s turn.
    pub fn eligible(&self, t: Tid) -> bool {
        let ThreadState::AtSync(c) = self.entry(t).state else {
            return false;
        };
        match self.policy {
            OrderPolicy::InstructionCount => self.entries.iter().enumerate().all(|(i, e)| {
                let Some(e) = e else { return true };
                if i == t.index() {
                    return true;
                }
                match e.state {
                    ThreadState::Departed | ThreadState::Finished => true,
                    ThreadState::Running | ThreadState::AtSync(_) => {
                        (e.published, i as u32) > (c, t.0)
                    }
                }
            }),
            OrderPolicy::RoundRobin => self.rr_turn == t.index(),
        }
    }

    /// Virtual time of the event that made `t` (waiting at clock `c`)
    /// eligible: for every other thread, the final transition of its
    /// effective bound from "could still order before `(c, t)`" to "cannot".
    ///
    /// Because every history is a deterministic function of the program,
    /// this wake time is reproducible regardless of physical arrival order.
    /// Must be called at token acquisition, when eligibility holds.
    pub fn crossing_v(&self, t: Tid, c: u64) -> u64 {
        let mut wake = 0;
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            if i == t.index() {
                continue;
            }
            // Walk backwards to the start of the final non-blocking run.
            // If no entry ever blocked `(c, t)`, this thread imposes no
            // wake constraint at all.
            let mut cross = None;
            let mut blocked = false;
            for &(bound, v) in e.history.iter().rev() {
                if (bound, i as u32) > (c, t.0) {
                    cross = Some(v);
                } else {
                    blocked = true;
                    break;
                }
            }
            if blocked {
                if let Some(v) = cross {
                    wake = wake.max(v);
                }
            }
        }
        wake
    }

    /// Round robin only: advances the turn past the current holder to the
    /// next live, non-departed thread; `v` is the virtual time of the
    /// advancing event. No-op if no such thread exists.
    pub fn rr_advance(&mut self, v: u64) {
        debug_assert_eq!(self.policy, OrderPolicy::RoundRobin);
        let n = self.entries.len();
        for step in 1..=n {
            let i = (self.rr_turn + step) % n;
            if let Some(e) = &self.entries[i] {
                if matches!(e.state, ThreadState::Running | ThreadState::AtSync(_)) {
                    self.rr_turn = i;
                    self.rr_turn_v = self.rr_turn_v.max(v);
                    return;
                }
            }
        }
    }

    /// Round robin: if the turn points at a thread that can no longer take
    /// it (departed/finished — e.g. everyone was blocked when the turn
    /// last advanced), move it to the next eligible thread. Called when a
    /// thread joins or rejoins the rotation; a no-op under instruction
    /// count or while the holder is live.
    fn rr_fixup(&mut self, v: u64) {
        if self.policy != OrderPolicy::RoundRobin {
            return;
        }
        let ok = self.entries[self.rr_turn]
            .as_ref()
            .map(|e| matches!(e.state, ThreadState::Running | ThreadState::AtSync(_)))
            .unwrap_or(false);
        if !ok {
            self.rr_advance(v);
        }
    }

    /// Round robin only: current turn holder.
    pub fn rr_holder(&self) -> usize {
        self.rr_turn
    }

    /// Round robin only: virtual time at which the current turn was set.
    pub fn rr_turn_v(&self) -> u64 {
        self.rr_turn_v
    }

    /// Smallest `(clock, tid)` among threads waiting at a sync op, other
    /// than `t`. Drives the §3.2 adaptive overflow target.
    pub fn min_waiting_other(&self, t: Tid) -> Option<(u64, u32)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != t.index())
            .filter_map(|(i, e)| match e {
                Some(Entry {
                    state: ThreadState::AtSync(c),
                    ..
                }) => Some((*c, i as u32)),
                _ => None,
            })
            .min()
    }

    /// Number of threads in each non-finished state:
    /// `(running, at_sync, departed)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut r = (0, 0, 0);
        for e in self.entries.iter().flatten() {
            match e.state {
                ThreadState::Running => r.0 += 1,
                ThreadState::AtSync(_) => r.1 += 1,
                ThreadState::Departed => r.2 += 1,
                ThreadState::Finished => {}
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ic(slots: usize) -> ClockTable {
        ClockTable::new(OrderPolicy::InstructionCount, slots)
    }

    #[test]
    fn lone_thread_is_always_eligible() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.arrive_sync(Tid(0), 100, 0);
        assert!(t.eligible(Tid(0)));
    }

    #[test]
    fn lower_clock_wins() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(0), 50, 0);
        t.arrive_sync(Tid(1), 40, 0);
        assert!(!t.eligible(Tid(0)));
        assert!(t.eligible(Tid(1)));
    }

    #[test]
    fn equal_clocks_tie_break_by_tid() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(0), 50, 0);
        t.arrive_sync(Tid(1), 50, 0);
        assert!(t.eligible(Tid(0)));
        assert!(!t.eligible(Tid(1)));
    }

    #[test]
    fn running_thread_with_low_published_clock_blocks_waiter() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 7);
        assert!(!t.eligible(Tid(1)));
        let hint = t.publish(Tid(0), 60, 123);
        assert!(hint);
        assert!(t.eligible(Tid(1)));
        // The crossing event carries T0's virtual time.
        assert_eq!(t.crossing_v(Tid(1), 50), 123);
    }

    #[test]
    fn crossing_is_found_even_when_waiter_arrives_late() {
        // T0 crosses 50 at v=123 while nobody waits; T1 arrives later and
        // must still observe the same deterministic wake time.
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.publish(Tid(0), 60, 123);
        t.arrive_sync(Tid(1), 50, 200);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 123);
    }

    #[test]
    fn thread_that_never_blocked_adds_no_constraint() {
        let mut t = ic(4);
        t.register(Tid(0), 100, 999);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 5);
        // T0 started above 50: it never blocked T1, so no wake constraint.
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 0);
    }

    #[test]
    fn publication_at_equal_clock_respects_tid_tiebreak() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 0);
        t.publish(Tid(0), 50, 5);
        assert!(!t.eligible(Tid(1)), "T0 could still sync at (50, 0)");
        t.publish(Tid(0), 51, 9);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 9);
    }

    #[test]
    fn departed_threads_do_not_block_and_carry_their_departure_time() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 0);
        assert!(!t.eligible(Tid(1)));
        t.depart(Tid(0), 77);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 77);
    }

    #[test]
    fn finished_threads_do_not_block() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 0);
        t.finish(Tid(0), 31);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 31);
    }

    #[test]
    fn reactivated_thread_blocks_again_and_recrosses() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.depart(Tid(0), 10);
        t.arrive_sync(Tid(1), 50, 0);
        assert!(t.eligible(Tid(1)));
        // T0 is woken with its old clock 10 (< 50): T1 is blocked again.
        t.reactivate(Tid(0), 10, 12);
        assert!(!t.eligible(Tid(1)));
        // T0 then runs past 50: the *final* crossing is what counts.
        t.publish(Tid(0), 90, 300);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 300);
    }

    #[test]
    fn min_waiting_other_finds_earliest_sync_waiter() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        assert_eq!(t.min_waiting_other(Tid(0)), None);
        t.arrive_sync(Tid(1), 70, 0);
        t.arrive_sync(Tid(2), 30, 0);
        assert_eq!(t.min_waiting_other(Tid(0)), Some((30, 2)));
        assert_eq!(t.min_waiting_other(Tid(2)), Some((70, 1)));
    }

    #[test]
    fn round_robin_takes_turns_in_tid_order() {
        let mut t = ClockTable::new(OrderPolicy::RoundRobin, 4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.arrive_sync(Tid(1), 10, 0);
        t.arrive_sync(Tid(2), 5, 0);
        t.arrive_sync(Tid(0), 99, 0);
        assert!(t.eligible(Tid(0)), "clocks are irrelevant under RR");
        assert!(!t.eligible(Tid(2)));
        t.rr_advance(11);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.rr_turn_v(), 11);
        t.rr_advance(12);
        assert!(t.eligible(Tid(2)));
        t.rr_advance(13);
        assert!(t.eligible(Tid(0)), "rotation wraps");
    }

    #[test]
    fn round_robin_skips_departed_and_finished() {
        let mut t = ClockTable::new(OrderPolicy::RoundRobin, 4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.depart(Tid(1), 0);
        t.arrive_sync(Tid(0), 1, 0);
        t.arrive_sync(Tid(2), 1, 0);
        assert!(t.eligible(Tid(0)));
        t.rr_advance(5);
        assert_eq!(t.rr_holder(), 2, "skips departed T1");
        t.finish(Tid(2), 6);
        assert_eq!(t.rr_holder(), 0, "finish advances past holder");
    }

    #[test]
    fn rr_departure_of_holder_advances_turn() {
        let mut t = ClockTable::new(OrderPolicy::RoundRobin, 2);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 1, 0);
        assert!(!t.eligible(Tid(1)));
        t.depart(Tid(0), 42);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.rr_turn_v(), 42);
    }

    #[test]
    fn census_counts_states() {
        let mut t = ic(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.arrive_sync(Tid(1), 1, 0);
        t.depart(Tid(2), 0);
        assert_eq!(t.census(), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let mut t = ic(2);
        t.register(Tid(0), 0, 0);
        t.register(Tid(0), 0, 0);
    }

    #[test]
    fn long_running_publisher_history_stays_bounded() {
        // Regression: before watermark pruning, `Entry::history` grew by
        // one entry per publication forever. A publisher that overflows
        // 100k times while a peer keeps syncing (advancing the watermark)
        // must keep a small bounded history.
        let mut t = ic(2);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        let mut peak = 0;
        for i in 1..=100_000u64 {
            t.publish(Tid(0), i, i);
            if i % 64 == 0 {
                // Peer syncs just behind the publisher, then resumes: the
                // watermark trails the publisher's clock closely.
                t.arrive_sync(Tid(1), i - 1, i);
                assert!(t.eligible(Tid(1)));
                t.resume(Tid(1), i - 1, i);
            }
            peak = peak.max(t.history_len(Tid(0)));
        }
        assert!(
            peak < 4 * PRUNE_MIN,
            "publisher history peaked at {peak} entries"
        );
        assert!(t.history_len(Tid(1)) < 4 * PRUNE_MIN);
        // Pruning must not change answers: T1 waits at the final clock and
        // the crossing virtual time is still the publisher's last advance.
        t.arrive_sync(Tid(1), 99_999, 100_001);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 99_999), 100_000);
    }

    #[test]
    fn pruning_preserves_crossing_answers_above_watermark() {
        let mut h: Vec<(u64, u64)> = (0..100).map(|i| (i * 10, i)).collect();
        prune_history(&mut h, 500);
        // Newest entry below 500 is (490, 49): kept as the blocked
        // sentinel; everything older dropped.
        assert_eq!(h[0], (490, 49));
        assert_eq!(h.len(), 51);
        // A second prune at the same watermark is a no-op.
        let before = h.clone();
        prune_history(&mut h, 500);
        assert_eq!(h, before);
        // No entry below the watermark at all: nothing to drop.
        let mut h2 = vec![(700, 1), (800, 2)];
        prune_history(&mut h2, 500);
        assert_eq!(h2.len(), 2);
    }
}
