//! Scheduler fast path: lock-free clock publication and O(log T)
//! eligibility.
//!
//! The reference [`ClockTable`] is a passive
//! state machine mutated under the runtime's one global mutex, and its
//! queries are O(T) scans. That is correct but serializes *every* counter
//! overflow through the global lock and makes every wake-up decision walk
//! the whole table. This module splits the scheduler state in two:
//!
//! * [`Slots`] — the lock-free half. One cache-padded `AtomicU64` per
//!   thread holds the thread's *effective clock bound* packed with its tid
//!   (so a single integer compare is the lexicographic `(clock, tid)`
//!   order), plus a per-thread publication history behind a per-thread
//!   mutex. Counter-overflow [`Slots::publish`] touches only the
//!   publisher's own cache line and never takes the global mutex; the
//!   eligibility *read* ([`Slots::eligible_read`]) is a lock-free scan.
//! * [`FastTable`] — the locked half. State transitions (arrive, depart,
//!   finish, reactivate, resume) and wait-queue mutation still happen
//!   under the global runtime lock, exactly like the reference table, but
//!   eligibility and `min_waiting_other` become O(log T) via two ordered
//!   sets: `waiters` (threads blocked `AtSync`, keyed by their waiting
//!   `(clock, tid)`) and `bounds` (every live thread's last *known*
//!   effective bound). Running threads' cached bounds may lag their atomic
//!   slots — staleness only ever under-reports a clock, which is
//!   conservative — and [`FastTable::eligible`] refreshes a stale minimum
//!   lazily from the slot, so each refresh is paid for by a real
//!   publication.
//!
//! # Why the schedule cannot change
//!
//! Eligibility under GMIC is a monotone predicate of published clocks: once
//! a waiter is eligible it stays eligible until it runs, and at most one
//! waiter (the global minimum `(clock, tid)`) is eligible at a time. Wake
//! *timing* therefore cannot reorder token grants — a late or spurious
//! wake-up only delays the same grant. Virtual time is likewise unaffected:
//! wake virtual times come from the deterministic publication histories
//! ([`FastTable::crossing_v`]), not from wall-clock arrival order. The
//! differential stress matrix (`stress --sched-diff`) checks the resulting
//! schedule hashes are bit-identical against the reference table.
//!
//! # Memory-order arguments (no lost wake-up)
//!
//! A publisher that crosses the head waiter's key must ensure somebody
//! wakes that waiter. Three races matter, all resolved with `SeqCst`:
//!
//! 1. *Publisher vs. waiter parking.* The publisher's wake hint is only a
//!    hint: the runtime takes the global mutex before notifying the
//!    waiter's parker. Under that mutex the waiter is either already
//!    parked (the notify lands) or has not yet evaluated its predicate —
//!    and its predicate read, ordered after the mutex acquisition, sees
//!    the publisher's earlier `SeqCst` slot store.
//! 2. *Publisher vs. token release.* Publisher does `W(slot); R(token_free)`
//!    while the releaser does `W(token_free); R(slot)` (the successor
//!    eligibility check). Under `SeqCst` at least one side observes the
//!    other's store, so at least one of them initiates the wake.
//! 3. *Two concurrent publishers both blocking the head.* Each does
//!    `W(own slot)` then reads the other's slot in [`Slots::eligible_read`].
//!    The publisher whose store is later in the `SeqCst` total order
//!    observes every earlier store, finds the head eligible, and raises
//!    the hint — the "last crosser" always reports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use dmt_api::sync::Mutex;
use dmt_api::{CachePadded, Tid};

use crate::table::{prune_history, ClockTable, OrderPolicy, ThreadState, PRUNE_MIN};

/// Bits of a packed key holding the clock; the low 16 bits hold the tid.
pub const TID_BITS: u32 = 16;
/// Largest clock a packed key can represent; larger clocks saturate, which
/// is indistinguishable from "unblocked" (2^48 virtual cycles is decades
/// of simulated work — unreachable in practice, asserted in debug builds).
pub const MAX_PACKED_CLOCK: u64 = (1 << (64 - TID_BITS)) - 1;
/// Sentinel "no thread is waiting" head key. Distinct from every packed
/// key because tids are asserted `< 0xFFFF` at registration.
pub const NO_WAITER: u64 = u64::MAX;

/// Packs `(clock, tid)` so that unsigned integer compare is the
/// lexicographic GMIC order.
#[inline]
pub fn pack(clock: u64, tid: u32) -> u64 {
    debug_assert!(u64::from(tid) < (1 << TID_BITS) - 1);
    (clock.min(MAX_PACKED_CLOCK) << TID_BITS) | u64::from(tid)
}

/// Clock half of a packed key.
#[inline]
pub fn packed_clock(key: u64) -> u64 {
    key >> TID_BITS
}

/// Tid half of a packed key.
#[inline]
pub fn packed_tid(key: u64) -> u32 {
    (key & ((1 << TID_BITS) - 1)) as u32
}

/// Effective bound of a departed or finished thread: blocks nobody.
#[inline]
fn unblocked_key(tid: u32) -> u64 {
    pack(MAX_PACKED_CLOCK, tid)
}

/// Outcome of a lock-free [`Slots::publish`].
#[derive(Clone, Copy, Debug)]
pub struct PublishOutcome {
    /// The published bound advanced (mirrors the reference table's
    /// notification hint).
    pub advanced: bool,
    /// Current head waiter `(clock, tid)`, if any — the lock-free
    /// equivalent of `min_waiting_other` for the adaptive-overflow target.
    pub head: Option<(u64, u32)>,
    /// This publication crossed the head waiter's key, the token looked
    /// free, and every other slot is past the head too: the runtime should
    /// take the global lock, re-check, and wake exactly this thread.
    pub wake_hint: Option<Tid>,
}

/// Per-thread publication history behind its own (uncontended) mutex.
#[derive(Debug, Default)]
struct HistSlot {
    hist: Mutex<Vec<(u64, u64)>>,
    /// Length right after the last prune attempt (amortization floor).
    floor: AtomicUsize,
}

/// The lock-free half of the fast-path scheduler.
///
/// Shared by the runtime (publishers go straight here, bypassing the
/// global mutex) and the [`FastTable`] (which mirrors locked state
/// transitions into the slots so lock-free readers see every bound).
#[derive(Debug)]
pub struct Slots {
    /// `pack(effective bound, tid)` per thread slot. Unregistered slots
    /// hold `u64::MAX` (blocks nobody).
    bounds: Box<[CachePadded<AtomicU64>]>,
    hists: Box<[HistSlot]>,
    /// `pack(clock, tid)` of the minimum `AtSync` waiter, or [`NO_WAITER`].
    /// Written only under the global runtime lock (wait-queue mutation);
    /// read lock-free by publishers.
    head_key: AtomicU64,
    /// 1 while no thread holds the global token. Written under the global
    /// lock; read lock-free by publishers.
    token_free: AtomicU64,
    /// Monotone lower bound on every clock any current or future waiter
    /// can query (see `ClockTable::watermark`). Raised under the global
    /// lock via `fetch_max`; read lock-free by publishers pruning their
    /// own histories. A stale read is a *lower* watermark, which only
    /// prunes less — always safe.
    watermark: AtomicU64,
}

impl Slots {
    /// Slots for up to `n` threads, all unregistered.
    pub fn new(n: usize) -> Arc<Slots> {
        Arc::new(Slots {
            bounds: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            hists: (0..n).map(|_| HistSlot::default()).collect(),
            head_key: AtomicU64::new(NO_WAITER),
            token_free: AtomicU64::new(1),
            watermark: AtomicU64::new(0),
        })
    }

    /// Number of thread slots.
    pub fn capacity(&self) -> usize {
        self.bounds.len()
    }

    /// Lock-free publication of a running thread's clock: append to own
    /// history (with amortized watermark pruning), raise own slot, and
    /// check whether this store crossed the head waiter.
    pub fn publish(&self, t: Tid, clock: u64, v: u64) -> PublishOutcome {
        debug_assert!(clock < MAX_PACKED_CLOCK, "clock saturates packed keys");
        let i = t.index();
        // History before bound: an acquirer that observed the new bound
        // (that is why it became eligible) must find the crossing entry.
        {
            let mut h = self.hists[i].hist.lock();
            h.push((clock, v));
            self.prune_locked(i, &mut h);
        }
        let key = pack(clock, t.0);
        let old = self.bounds[i].swap(key, SeqCst);
        let advanced = key > old;
        let head = self.head_key.load(SeqCst);
        let mut wake_hint = None;
        if advanced
            && head != NO_WAITER
            && packed_tid(head) != t.0
            && old <= head
            && head < key
            && self.token_free.load(SeqCst) == 1
            && self.eligible_read(head)
        {
            wake_hint = Some(Tid(packed_tid(head)));
        }
        PublishOutcome {
            advanced,
            head: (head != NO_WAITER).then(|| (packed_clock(head), packed_tid(head))),
            wake_hint,
        }
    }

    /// Lock-free eligibility read: every slot other than the head's own is
    /// past `head_key`. (Unregistered slots hold `u64::MAX` and pass.)
    pub fn eligible_read(&self, head_key: u64) -> bool {
        let head_idx = packed_tid(head_key) as usize;
        self.bounds
            .iter()
            .enumerate()
            .all(|(i, b)| i == head_idx || b.load(SeqCst) > head_key)
    }

    /// Current head waiter key ([`NO_WAITER`] if none).
    pub fn head_key(&self) -> u64 {
        self.head_key.load(SeqCst)
    }

    /// Publishes whether the global token is free (called under the global
    /// lock on every token hand-off).
    pub fn set_token_free(&self, free: bool) {
        self.token_free.store(u64::from(free), SeqCst);
    }

    /// Raw bound key of one slot.
    fn bound_key(&self, i: usize) -> u64 {
        self.bounds[i].load(SeqCst)
    }

    fn store_bound(&self, i: usize, key: u64) {
        self.bounds[i].store(key, SeqCst);
    }

    fn append_hist(&self, i: usize, bound: u64, v: u64) {
        self.hists[i].hist.lock().push((bound, v));
    }

    /// Amortized watermark prune of one history once it has doubled past
    /// the last attempt. A stale watermark read only prunes less.
    fn prune_locked(&self, i: usize, h: &mut Vec<(u64, u64)>) {
        let len = h.len();
        let floor = self.hists[i].floor.load(SeqCst);
        if len >= PRUNE_MIN && len >= 2 * floor.max(PRUNE_MIN / 2) {
            prune_history(h, self.watermark.load(SeqCst));
            self.hists[i].floor.store(h.len(), SeqCst);
        }
    }

    /// Prune entry point for the locked table paths (threads that sync
    /// without ever overflowing a counter still grow history).
    fn maybe_prune_hist(&self, i: usize) {
        let mut h = self.hists[i].hist.lock();
        self.prune_locked(i, &mut h);
    }

    fn hist_len(&self, i: usize) -> usize {
        self.hists[i].hist.lock().len()
    }
}

/// Cached locked-side view of one thread.
#[derive(Clone, Copy, Debug)]
struct FastEntry {
    state: ThreadState,
    /// Authoritative published clock for `AtSync` / `Departed` /
    /// `Finished`; for `Running` the atomic slot may be ahead.
    published: u64,
    /// Key currently stored for this thread in [`FastTable::bounds`].
    bounds_key: u64,
    /// Key currently stored in [`FastTable::waiters`] (`AtSync` only).
    waiters_key: Option<u64>,
    /// Key currently stored in [`FastTable::departed`] (`Departed` only).
    departed_key: Option<u64>,
}

/// The locked half of the fast-path scheduler: drop-in replacement for the
/// reference [`ClockTable`] with O(log T) `eligible` / `min_waiting_other`.
///
/// All methods must be called under the runtime's global lock, except that
/// publications may *also* flow directly through the shared [`Slots`]
/// without this table's involvement — the cached `bounds` keys then lag
/// and are refreshed lazily.
#[derive(Debug)]
pub struct FastTable {
    policy: OrderPolicy,
    slots: Arc<Slots>,
    entries: Vec<Option<FastEntry>>,
    /// Last known effective bound `pack(bound, tid)` of every registered,
    /// non-finished thread (departed threads appear as `unblocked_key`).
    bounds: std::collections::BTreeSet<u64>,
    /// `pack(clock, tid)` of every `AtSync` thread.
    waiters: std::collections::BTreeSet<u64>,
    /// `pack(published, tid)` of every `Departed` thread — their future
    /// query floor, needed by the watermark but hidden from `bounds`.
    departed: std::collections::BTreeSet<u64>,
    rr_turn: usize,
    rr_turn_v: u64,
}

impl FastTable {
    /// An empty table over `slots` (capacity fixed by [`Slots::new`]).
    pub fn new(policy: OrderPolicy, slots: Arc<Slots>) -> FastTable {
        let n = slots.capacity();
        FastTable {
            policy,
            slots,
            entries: vec![None; n],
            bounds: std::collections::BTreeSet::new(),
            waiters: std::collections::BTreeSet::new(),
            departed: std::collections::BTreeSet::new(),
            rr_turn: 0,
            rr_turn_v: 0,
        }
    }

    /// The shared lock-free half.
    pub fn slots(&self) -> &Arc<Slots> {
        &self.slots
    }

    /// The ordering policy in force.
    pub fn policy(&self) -> OrderPolicy {
        self.policy
    }

    // INVARIANT: every `Tid` reaching a table method was registered by the
    // runtime (under the same global lock) before use; an unregistered tid
    // is caller API misuse, not a recoverable condition. These accessors
    // are the crate's sanctioned panic sites for that misuse.
    #[allow(clippy::expect_used)]
    fn entry(&self, t: Tid) -> &FastEntry {
        self.entries[t.index()].as_ref().expect("unregistered tid")
    }

    #[allow(clippy::expect_used)]
    fn entry_mut(&mut self, t: Tid) -> &mut FastEntry {
        self.entries[t.index()].as_mut().expect("unregistered tid")
    }

    /// Publishes the new head-waiter key and raises the watermark; call
    /// after any wait-queue or state mutation.
    fn sync_head(&mut self) {
        let head = self.waiters.iter().next().copied().unwrap_or(NO_WAITER);
        self.slots.head_key.store(head, SeqCst);
        let mut w = u64::MAX;
        for set in [&self.waiters, &self.bounds, &self.departed] {
            if let Some(&k) = set.iter().next() {
                w = w.min(packed_clock(k));
            }
        }
        if w != u64::MAX {
            self.slots.watermark.fetch_max(w, SeqCst);
        }
    }

    /// Moves `t`'s key in `bounds` to `new_key`.
    fn rekey_bounds(&mut self, t: Tid, new_key: u64) {
        let old = self.entry_mut(t).bounds_key;
        if old != new_key {
            self.bounds.remove(&old);
            self.bounds.insert(new_key);
            self.entry_mut(t).bounds_key = new_key;
        }
    }

    /// Registers a new thread with an inherited starting clock, at the
    /// spawner's virtual time `v`. Mirrors `ClockTable::register`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is taken, out of range, or `t` overflows the
    /// packed-key tid field.
    pub fn register(&mut self, t: Tid, clock: u64, v: u64) {
        assert!(
            u64::from(t.0) < (1 << TID_BITS) - 1,
            "tid {t} overflows packed keys"
        );
        let slot = &mut self.entries[t.index()];
        assert!(slot.is_none(), "tid {t} registered twice");
        let key = pack(clock, t.0);
        *slot = Some(FastEntry {
            state: ThreadState::Running,
            published: clock,
            bounds_key: key,
            waiters_key: None,
            departed_key: None,
        });
        self.slots.append_hist(t.index(), clock, v);
        self.slots.store_bound(t.index(), key);
        self.bounds.insert(key);
        self.rr_fixup(v);
        self.sync_head();
    }

    /// Current state of `t`.
    pub fn state(&self, t: Tid) -> ThreadState {
        self.entry(t).state
    }

    /// Last published clock of `t` (for a running thread this reads the
    /// atomic slot, which lock-free publications may have advanced past
    /// the cached value).
    pub fn published(&self, t: Tid) -> u64 {
        let e = self.entry(t);
        match e.state {
            ThreadState::Running => packed_clock(self.slots.bound_key(t.index())),
            _ => e.published,
        }
    }

    /// Current length of `t`'s publication history.
    pub fn history_len(&self, t: Tid) -> usize {
        self.slots.hist_len(t.index())
    }

    /// Locked-path publication (used by the reference-parity API and
    /// tests; the runtime's hot path calls [`Slots::publish`] directly).
    pub fn publish(&mut self, t: Tid, clock: u64, v: u64) -> bool {
        debug_assert!(matches!(self.entry(t).state, ThreadState::Running));
        let out = self.slots.publish(t, clock, v);
        self.rekey_bounds(t, pack(clock, t.0));
        self.entry_mut(t).published = clock;
        out.advanced
    }

    /// Thread `t` arrives at a synchronization operation with exact clock
    /// `clock`, at virtual time `v`.
    pub fn arrive_sync(&mut self, t: Tid, clock: u64, v: u64) {
        debug_assert!(clock < MAX_PACKED_CLOCK);
        let i = t.index();
        // Fold in any bound the thread published lock-free since the table
        // last saw it.
        let seen = match self.entry(t).state {
            ThreadState::Running => packed_clock(self.slots.bound_key(i)),
            _ => self.entry(t).published,
        };
        let published = clock.max(seen);
        let e = self.entry_mut(t);
        e.published = published;
        e.state = ThreadState::AtSync(clock);
        e.waiters_key = Some(pack(clock, t.0));
        self.slots.append_hist(i, published, v);
        self.slots.maybe_prune_hist(i);
        self.slots.store_bound(i, pack(published, t.0));
        self.rekey_bounds(t, pack(published, t.0));
        self.waiters.insert(pack(clock, t.0));
        self.sync_head();
    }

    /// Removes `t` from the waiters set if present (it may be blocking at
    /// a sync op when it departs or finishes).
    fn unwait(&mut self, t: Tid) {
        if let Some(k) = self.entry_mut(t).waiters_key.take() {
            self.waiters.remove(&k);
        }
    }

    /// Thread `t` removes itself from GMIC consideration (`clockDepart`)
    /// at virtual time `v`.
    pub fn depart(&mut self, t: Tid, v: u64) {
        let i = t.index();
        self.unwait(t);
        let e = self.entry_mut(t);
        e.state = ThreadState::Departed;
        let floor_key = pack(e.published, t.0);
        e.departed_key = Some(floor_key);
        self.slots.append_hist(i, u64::MAX, v);
        self.slots.store_bound(i, unblocked_key(t.0));
        self.rekey_bounds(t, unblocked_key(t.0));
        self.departed.insert(floor_key);
        if self.policy == OrderPolicy::RoundRobin && self.rr_turn == i {
            self.rr_advance(v);
        }
        self.sync_head();
    }

    /// Thread `t` finishes at virtual time `v`.
    pub fn finish(&mut self, t: Tid, v: u64) {
        let i = t.index();
        self.unwait(t);
        let e = self.entry_mut(t);
        e.state = ThreadState::Finished;
        let bounds_key = e.bounds_key;
        if let Some(k) = e.departed_key.take() {
            self.departed.remove(&k);
        }
        self.slots.append_hist(i, u64::MAX, v);
        self.slots.store_bound(i, unblocked_key(t.0));
        self.bounds.remove(&bounds_key);
        if self.policy == OrderPolicy::RoundRobin && self.rr_turn == i {
            self.rr_advance(v);
        }
        self.sync_head();
    }

    /// A departed thread rejoins GMIC consideration with clock `clock` at
    /// virtual time `v`.
    pub fn reactivate(&mut self, t: Tid, clock: u64, v: u64) {
        let i = t.index();
        let e = self.entry_mut(t);
        debug_assert!(matches!(e.state, ThreadState::Departed));
        e.state = ThreadState::Running;
        e.published = e.published.max(clock);
        let published = e.published;
        if let Some(k) = e.departed_key.take() {
            self.departed.remove(&k);
        }
        self.slots.append_hist(i, published, v);
        self.slots.store_bound(i, pack(published, t.0));
        self.rekey_bounds(t, pack(published, t.0));
        self.rr_fixup(v);
        self.sync_head();
    }

    /// Thread `t` resumes running after completing a sync op.
    pub fn resume(&mut self, t: Tid, clock: u64, v: u64) {
        let i = t.index();
        self.unwait(t);
        let e = self.entry_mut(t);
        e.state = ThreadState::Running;
        e.published = e.published.max(clock);
        let published = e.published;
        self.slots.append_hist(i, published, v);
        self.slots.store_bound(i, pack(published, t.0));
        self.rekey_bounds(t, pack(published, t.0));
        self.sync_head();
    }

    /// Whether `t` (which must be `AtSync`) may proceed under the policy.
    ///
    /// O(log T) amortized: takes the minimum cached bound of the other
    /// threads; if it blocks `t` but belongs to a running thread whose
    /// atomic slot has moved on, refreshes that one cache entry and
    /// retries. Every refresh strictly raises a key, and each raise is
    /// paid for by a real lock-free publication.
    pub fn eligible(&mut self, t: Tid) -> bool {
        let ThreadState::AtSync(c) = self.entry(t).state else {
            return false;
        };
        if self.policy == OrderPolicy::RoundRobin {
            return self.rr_turn == t.index();
        }
        let k = pack(c, t.0);
        loop {
            // Only `t`'s own key can be skipped, so this inspects at most
            // two set elements.
            let Some(&m) = self.bounds.iter().find(|&&b| packed_tid(b) != t.0) else {
                return true;
            };
            if m > k {
                return true;
            }
            let j = Tid(packed_tid(m));
            let fresh = match self.entry(j).state {
                // Only running threads publish outside the lock.
                ThreadState::Running => self.slots.bound_key(j.index()),
                _ => return false,
            };
            if fresh == m {
                return false;
            }
            debug_assert!(fresh > m, "published bounds are monotone");
            self.rekey_bounds(j, fresh);
            self.entry_mut(j).published = packed_clock(fresh);
        }
    }

    /// Deterministic wake virtual time for `t` waiting at clock `c`; same
    /// backward history walk as the reference table, over the (bounded)
    /// per-thread histories.
    pub fn crossing_v(&self, t: Tid, c: u64) -> u64 {
        let mut wake = 0;
        for (i, e) in self.entries.iter().enumerate() {
            if e.is_none() || i == t.index() {
                continue;
            }
            let h = self.slots.hists[i].hist.lock();
            let mut cross = None;
            let mut blocked = false;
            for &(bound, v) in h.iter().rev() {
                if (bound, i as u32) > (c, t.0) {
                    cross = Some(v);
                } else {
                    blocked = true;
                    break;
                }
            }
            if blocked {
                if let Some(v) = cross {
                    wake = wake.max(v);
                }
            }
        }
        wake
    }

    /// Smallest `(clock, tid)` among threads waiting at a sync op, other
    /// than `t`. O(log T): at most two elements inspected.
    pub fn min_waiting_other(&self, t: Tid) -> Option<(u64, u32)> {
        self.waiters
            .iter()
            .find(|&&k| packed_tid(k) != t.0)
            .map(|&k| (packed_clock(k), packed_tid(k)))
    }

    /// The unique thread a token release should wake, if any: the head
    /// waiter when it is (now) eligible. `None` means nobody can take the
    /// token yet — the next crossing publication will raise the hint.
    pub fn successor(&mut self) -> Option<Tid> {
        match self.policy {
            OrderPolicy::InstructionCount => {
                let head = self.waiters.iter().next().copied()?;
                let t = Tid(packed_tid(head));
                self.eligible(t).then_some(t)
            }
            OrderPolicy::RoundRobin => {
                let t = Tid(self.rr_turn as u32);
                match self.entries.get(self.rr_turn)?.as_ref()?.state {
                    ThreadState::AtSync(_) => Some(t),
                    _ => None,
                }
            }
        }
    }

    /// Round robin only: advances the turn past the current holder.
    pub fn rr_advance(&mut self, v: u64) {
        debug_assert_eq!(self.policy, OrderPolicy::RoundRobin);
        let n = self.entries.len();
        for step in 1..=n {
            let i = (self.rr_turn + step) % n;
            if let Some(e) = &self.entries[i] {
                if matches!(e.state, ThreadState::Running | ThreadState::AtSync(_)) {
                    self.rr_turn = i;
                    self.rr_turn_v = self.rr_turn_v.max(v);
                    return;
                }
            }
        }
    }

    fn rr_fixup(&mut self, v: u64) {
        if self.policy != OrderPolicy::RoundRobin {
            return;
        }
        let ok = self.entries[self.rr_turn]
            .as_ref()
            .map(|e| matches!(e.state, ThreadState::Running | ThreadState::AtSync(_)))
            .unwrap_or(false);
        if !ok {
            self.rr_advance(v);
        }
    }

    /// Round robin only: current turn holder.
    pub fn rr_holder(&self) -> usize {
        self.rr_turn
    }

    /// Round robin only: virtual time at which the current turn was set.
    pub fn rr_turn_v(&self) -> u64 {
        self.rr_turn_v
    }

    /// Number of threads in each non-finished state:
    /// `(running, at_sync, departed)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut r = (0, 0, 0);
        for e in self.entries.iter().flatten() {
            match e.state {
                ThreadState::Running => r.0 += 1,
                ThreadState::AtSync(_) => r.1 += 1,
                ThreadState::Departed => r.2 += 1,
                ThreadState::Finished => {}
            }
        }
        r
    }

    /// Cross-checks the redundant scheduler state: per-entry cached keys
    /// against the `waiters`/`bounds` sets and the published head key.
    /// `Err` describes the first violation found — the supervisor's cue to
    /// fail over to the reference scheduler before the corrupted queues
    /// mis-order (or lose) a token grant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut at_sync = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            match (e.state, e.waiters_key) {
                (ThreadState::AtSync(c), Some(wk)) => {
                    at_sync += 1;
                    if wk != pack(c, i as u32) {
                        return Err(format!(
                            "thread {i}: waiter key {wk:#x} does not encode its AtSync clock {c}"
                        ));
                    }
                    if !self.waiters.contains(&wk) {
                        return Err(format!(
                            "thread {i}: AtSync({c}) but missing from the waiter queue \
                             (lost waiter — it would never be woken)"
                        ));
                    }
                }
                (ThreadState::AtSync(c), None) => {
                    return Err(format!("thread {i}: AtSync({c}) with no waiter key"));
                }
                (_, Some(wk)) => {
                    return Err(format!(
                        "thread {i}: stale waiter key {wk:#x} in state {:?}",
                        e.state
                    ));
                }
                (_, None) => {}
            }
            if !matches!(e.state, ThreadState::Finished) && !self.bounds.contains(&e.bounds_key) {
                return Err(format!(
                    "thread {i}: cached bound {:#x} missing from the bounds set",
                    e.bounds_key
                ));
            }
        }
        if self.waiters.len() != at_sync {
            return Err(format!(
                "waiter queue holds {} keys but {at_sync} threads are AtSync",
                self.waiters.len()
            ));
        }
        let head = self.slots.head_key();
        let expect = self.waiters.iter().next().copied().unwrap_or(NO_WAITER);
        if head != expect {
            return Err(format!(
                "published head key {head:#x} disagrees with waiter-queue minimum {expect:#x}"
            ));
        }
        Ok(())
    }

    /// Fault-injection hook: silently drops the first waiter other than
    /// `exclude` from the waiter queue, leaving its entry believing it is
    /// queued — the lost-waiter corruption class
    /// [`check_invariants`](Self::check_invariants) exists to catch.
    /// `exclude` is the thread being granted the token (losing *its* key
    /// would be harmless: it is about to resume and leave the queue
    /// anyway). Returns `false` when nobody else is waiting. Testing and
    /// supervised fault drills only.
    pub fn corrupt_lose_head_waiter(&mut self, exclude: Tid) -> bool {
        let Some(&k) = self.waiters.iter().find(|&&k| packed_tid(k) != exclude.0) else {
            return false;
        };
        self.waiters.remove(&k);
        // Republish the (now wrong) head so lock-free publishers are
        // equally blind to the lost waiter.
        self.sync_head();
        true
    }

    /// Snapshots this table into an equivalent reference [`ClockTable`] —
    /// the supervised failover path. States, published bounds (folding in
    /// any lock-free publication the cached keys lag behind), publication
    /// histories and the round-robin turn all carry over, so the rebuilt
    /// table answers every eligibility / wake-time query identically and
    /// the schedule continues bit-for-bit. The sets this table derives
    /// from those snapshots (`waiters`, `bounds`, head key) are dropped —
    /// that redundancy is exactly what a corruption poisons.
    pub fn export_reference(&self) -> ClockTable {
        let mut out = ClockTable::new(self.policy, self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            let published = match e.state {
                ThreadState::Running => e.published.max(packed_clock(self.slots.bound_key(i))),
                _ => e.published,
            };
            let history = self.slots.hists[i].hist.lock().clone();
            out.restore_thread(Tid(i as u32), e.state, published, history);
        }
        out.restore_rr_turn(self.rr_turn, self.rr_turn_v);
        out
    }
}

/// Which clock-table implementation a runtime uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedKind {
    /// Lock-free publication slots + O(log T) sets + targeted wake-ups.
    #[default]
    Fast,
    /// The original all-under-one-lock [`ClockTable`] with `notify_all`
    /// wake-ups; kept selectable for differential testing (same precedent
    /// as `merge::bytewise`).
    Reference,
}

/// Either clock-table implementation behind one interface.
///
/// The runtime holds this inside its global lock; in `Fast` mode the
/// shared [`Slots`] half is additionally reachable lock-free.
#[derive(Debug)]
pub enum SchedTable {
    /// Reference implementation.
    Reference(ClockTable),
    /// Fast path.
    Fast(FastTable),
}

impl SchedTable {
    /// Builds the chosen implementation over up to `slots.capacity()`
    /// threads. The reference table ignores `slots` beyond sizing.
    pub fn new(kind: SchedKind, policy: OrderPolicy, slots: Arc<Slots>) -> SchedTable {
        match kind {
            SchedKind::Reference => {
                SchedTable::Reference(ClockTable::new(policy, slots.capacity()))
            }
            SchedKind::Fast => SchedTable::Fast(FastTable::new(policy, slots)),
        }
    }

    /// Which implementation this is.
    pub fn kind(&self) -> SchedKind {
        match self {
            SchedTable::Reference(_) => SchedKind::Reference,
            SchedTable::Fast(_) => SchedKind::Fast,
        }
    }

    /// See [`ClockTable::policy`].
    pub fn policy(&self) -> OrderPolicy {
        match self {
            SchedTable::Reference(t) => t.policy(),
            SchedTable::Fast(t) => t.policy(),
        }
    }

    /// See [`ClockTable::register`].
    pub fn register(&mut self, t: Tid, clock: u64, v: u64) {
        match self {
            SchedTable::Reference(x) => x.register(t, clock, v),
            SchedTable::Fast(x) => x.register(t, clock, v),
        }
    }

    /// See [`ClockTable::state`].
    pub fn state(&self, t: Tid) -> ThreadState {
        match self {
            SchedTable::Reference(x) => x.state(t),
            SchedTable::Fast(x) => x.state(t),
        }
    }

    /// See [`ClockTable::published`].
    pub fn published(&self, t: Tid) -> u64 {
        match self {
            SchedTable::Reference(x) => x.published(t),
            SchedTable::Fast(x) => x.published(t),
        }
    }

    /// See [`ClockTable::history_len`].
    pub fn history_len(&self, t: Tid) -> usize {
        match self {
            SchedTable::Reference(x) => x.history_len(t),
            SchedTable::Fast(x) => x.history_len(t),
        }
    }

    /// Longest per-thread clock history over tids `0..threads` (the
    /// resource-witness gauge; the pruning watermark must bound it).
    pub fn max_history_len(&self, threads: u32) -> usize {
        (0..threads)
            .map(|t| self.history_len(Tid(t)))
            .max()
            .unwrap_or(0)
    }

    /// See [`ClockTable::publish`].
    pub fn publish(&mut self, t: Tid, clock: u64, v: u64) -> bool {
        match self {
            SchedTable::Reference(x) => x.publish(t, clock, v),
            SchedTable::Fast(x) => x.publish(t, clock, v),
        }
    }

    /// See [`ClockTable::arrive_sync`].
    pub fn arrive_sync(&mut self, t: Tid, clock: u64, v: u64) {
        match self {
            SchedTable::Reference(x) => x.arrive_sync(t, clock, v),
            SchedTable::Fast(x) => x.arrive_sync(t, clock, v),
        }
    }

    /// See [`ClockTable::depart`].
    pub fn depart(&mut self, t: Tid, v: u64) {
        match self {
            SchedTable::Reference(x) => x.depart(t, v),
            SchedTable::Fast(x) => x.depart(t, v),
        }
    }

    /// See [`ClockTable::finish`].
    pub fn finish(&mut self, t: Tid, v: u64) {
        match self {
            SchedTable::Reference(x) => x.finish(t, v),
            SchedTable::Fast(x) => x.finish(t, v),
        }
    }

    /// See [`ClockTable::reactivate`].
    pub fn reactivate(&mut self, t: Tid, clock: u64, v: u64) {
        match self {
            SchedTable::Reference(x) => x.reactivate(t, clock, v),
            SchedTable::Fast(x) => x.reactivate(t, clock, v),
        }
    }

    /// See [`ClockTable::resume`].
    pub fn resume(&mut self, t: Tid, clock: u64, v: u64) {
        match self {
            SchedTable::Reference(x) => x.resume(t, clock, v),
            SchedTable::Fast(x) => x.resume(t, clock, v),
        }
    }

    /// See [`ClockTable::eligible`]. `&mut` because the fast path may
    /// refresh stale cached bounds.
    pub fn eligible(&mut self, t: Tid) -> bool {
        match self {
            SchedTable::Reference(x) => x.eligible(t),
            SchedTable::Fast(x) => x.eligible(t),
        }
    }

    /// See [`ClockTable::crossing_v`].
    pub fn crossing_v(&self, t: Tid, c: u64) -> u64 {
        match self {
            SchedTable::Reference(x) => x.crossing_v(t, c),
            SchedTable::Fast(x) => x.crossing_v(t, c),
        }
    }

    /// See [`ClockTable::min_waiting_other`].
    pub fn min_waiting_other(&self, t: Tid) -> Option<(u64, u32)> {
        match self {
            SchedTable::Reference(x) => x.min_waiting_other(t),
            SchedTable::Fast(x) => x.min_waiting_other(t),
        }
    }

    /// Fast path only: the unique thread a token release should wake (see
    /// [`FastTable::successor`]). `None` under the reference table, whose
    /// releases broadcast.
    pub fn successor(&mut self) -> Option<Tid> {
        match self {
            SchedTable::Reference(_) => None,
            SchedTable::Fast(x) => x.successor(),
        }
    }

    /// See [`ClockTable::rr_advance`].
    pub fn rr_advance(&mut self, v: u64) {
        match self {
            SchedTable::Reference(x) => x.rr_advance(v),
            SchedTable::Fast(x) => x.rr_advance(v),
        }
    }

    /// See [`ClockTable::rr_holder`].
    pub fn rr_holder(&self) -> usize {
        match self {
            SchedTable::Reference(x) => x.rr_holder(),
            SchedTable::Fast(x) => x.rr_holder(),
        }
    }

    /// See [`ClockTable::rr_turn_v`].
    pub fn rr_turn_v(&self) -> u64 {
        match self {
            SchedTable::Reference(x) => x.rr_turn_v(),
            SchedTable::Fast(x) => x.rr_turn_v(),
        }
    }

    /// See [`ClockTable::census`].
    pub fn census(&self) -> (usize, usize, usize) {
        match self {
            SchedTable::Reference(x) => x.census(),
            SchedTable::Fast(x) => x.census(),
        }
    }

    /// See [`FastTable::check_invariants`]. The reference table has no
    /// redundant derived state to corrupt: always `Ok`.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            SchedTable::Reference(_) => Ok(()),
            SchedTable::Fast(x) => x.check_invariants(),
        }
    }

    /// Fails over from the fast path to the reference scheduler in place
    /// (see [`FastTable::export_reference`]). Returns `false` when already
    /// on the reference table. After failover the caller must stop routing
    /// publications through the lock-free [`Slots`] and fall back to
    /// broadcast wake-ups — the slots are no longer read.
    pub fn failover(&mut self) -> bool {
        let SchedTable::Fast(f) = self else {
            return false;
        };
        *self = SchedTable::Reference(f.export_reference());
        true
    }

    /// See [`FastTable::corrupt_lose_head_waiter`]. `false` (no-op) on the
    /// reference table.
    pub fn corrupt_lose_head_waiter(&mut self, exclude: Tid) -> bool {
        match self {
            SchedTable::Reference(_) => false,
            SchedTable::Fast(x) => x.corrupt_lose_head_waiter(exclude),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(n: usize) -> FastTable {
        FastTable::new(OrderPolicy::InstructionCount, Slots::new(n))
    }

    #[test]
    fn packed_keys_order_lexicographically() {
        assert!(pack(5, 3) < pack(6, 0));
        assert!(pack(5, 0) < pack(5, 1));
        assert!(pack(5, 9) < pack(6, 9));
        assert_eq!(packed_clock(pack(77, 3)), 77);
        assert_eq!(packed_tid(pack(77, 3)), 3);
        // Saturation keeps the unblocked sentinel below NO_WAITER.
        assert!(unblocked_key(0xFFFE) < NO_WAITER);
        assert_eq!(packed_clock(pack(u64::MAX, 1)), MAX_PACKED_CLOCK);
    }

    #[test]
    fn fast_table_basic_eligibility_matches_gmic() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(0), 50, 0);
        t.arrive_sync(Tid(1), 40, 0);
        assert!(!t.eligible(Tid(0)));
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.min_waiting_other(Tid(0)), Some((40, 1)));
    }

    #[test]
    fn lock_free_publication_is_seen_by_locked_eligibility() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 7);
        assert!(!t.eligible(Tid(1)));
        // Publish around the table, straight through the slots — the
        // runtime's hot path.
        let out = t.slots().clone().publish(Tid(0), 60, 123);
        assert!(out.advanced);
        assert_eq!(out.head, Some((50, 1)));
        assert_eq!(out.wake_hint, Some(Tid(1)));
        assert!(t.eligible(Tid(1)), "stale cached bound must refresh");
        assert_eq!(t.crossing_v(Tid(1), 50), 123);
        assert_eq!(t.published(Tid(0)), 60);
    }

    #[test]
    fn publish_does_not_hint_when_token_is_held() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 0);
        t.slots().set_token_free(false);
        let out = t.slots().clone().publish(Tid(0), 60, 1);
        assert!(out.advanced);
        assert_eq!(out.wake_hint, None, "no hint while the token is held");
        // The wake is the releaser's job: its successor check (made after
        // setting the token free) observes the crossing.
        t.slots().set_token_free(true);
        assert_eq!(t.successor(), Some(Tid(1)));
    }

    #[test]
    fn publish_does_not_hint_while_third_thread_blocks_head() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.arrive_sync(Tid(1), 50, 0);
        // T0 crosses, but T2 (published 0) still blocks the head.
        let out = t.slots().clone().publish(Tid(0), 60, 1);
        assert_eq!(out.wake_hint, None);
        // T2 crosses last: it raises the hint.
        let out = t.slots().clone().publish(Tid(2), 60, 2);
        assert_eq!(out.wake_hint, Some(Tid(1)));
    }

    #[test]
    fn successor_is_the_eligible_head_waiter() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.arrive_sync(Tid(1), 70, 0);
        t.arrive_sync(Tid(2), 30, 0);
        // T0 still running at clock 0: nobody is eligible yet.
        assert_eq!(t.successor(), None);
        t.publish(Tid(0), 100, 1);
        assert_eq!(t.successor(), Some(Tid(2)));
        // T2 resumes at clock 30: still below T1's (70, 1), so it blocks
        // the new head until it runs past it.
        t.resume(Tid(2), 30, 2);
        assert_eq!(t.successor(), None);
        t.publish(Tid(2), 90, 3);
        assert_eq!(t.successor(), Some(Tid(1)));
    }

    #[test]
    fn departed_and_finished_threads_unblock_waiters() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.arrive_sync(Tid(1), 50, 0);
        assert!(!t.eligible(Tid(1)));
        t.depart(Tid(0), 10);
        assert!(!t.eligible(Tid(1)));
        t.finish(Tid(2), 11);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 50), 11);
        // Reactivation at a low clock blocks the waiter again.
        t.reactivate(Tid(0), 10, 12);
        assert!(!t.eligible(Tid(1)));
    }

    #[test]
    fn sched_table_reference_has_no_successor() {
        let mut t = SchedTable::new(
            SchedKind::Reference,
            OrderPolicy::InstructionCount,
            Slots::new(2),
        );
        t.register(Tid(0), 0, 0);
        t.arrive_sync(Tid(0), 1, 0);
        assert!(t.eligible(Tid(0)));
        assert_eq!(t.successor(), None);
        assert_eq!(t.kind(), SchedKind::Reference);
    }

    #[test]
    fn fast_round_robin_takes_turns() {
        let mut t = FastTable::new(OrderPolicy::RoundRobin, Slots::new(4));
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 10, 0);
        t.arrive_sync(Tid(0), 99, 0);
        assert!(t.eligible(Tid(0)));
        assert!(!t.eligible(Tid(1)));
        assert_eq!(t.successor(), Some(Tid(0)));
        t.rr_advance(5);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.rr_turn_v(), 5);
    }

    #[test]
    fn dead_waiter_is_removed_from_queue_on_finish() {
        // Regression (waiter-queue leak): a thread that dies while queued
        // AtSync must leave the BTreeSet waiter queue, or the GMIC
        // successor computation would select a dead thread forever.
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.arrive_sync(Tid(1), 50, 1);
        t.arrive_sync(Tid(2), 70, 1);
        // T1 (the head waiter) dies while queued.
        t.finish(Tid(1), 5);
        assert_eq!(t.slots().head_key(), pack(70, 2), "head must move to T2");
        t.publish(Tid(0), 100, 6);
        assert_eq!(t.successor(), Some(Tid(2)), "dead thread must be skipped");
        assert!(t.eligible(Tid(2)));
        assert_eq!(t.min_waiting_other(Tid(0)), Some((70, 2)));
        t.check_invariants()
            .expect("finish must leave state coherent");
    }

    #[test]
    fn dead_waiter_is_removed_from_queue_on_depart() {
        // Same leak class via the depart path (a queued thread pulled off
        // to block on a lock hand-off, then never re-queued).
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 1);
        assert_eq!(t.slots().head_key(), pack(50, 1));
        t.depart(Tid(1), 2);
        assert_eq!(t.slots().head_key(), NO_WAITER);
        assert_eq!(t.successor(), None);
        t.check_invariants()
            .expect("depart must leave state coherent");
    }

    #[test]
    fn invariant_check_catches_lost_waiter() {
        let mut t = fast(4);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 1);
        t.check_invariants().expect("healthy table");
        assert!(t.corrupt_lose_head_waiter(Tid(0)));
        let err = t.check_invariants().expect_err("corruption must be found");
        assert!(err.contains("lost waiter"), "{err}");
        // The corrupted table would never wake T1 again.
        t.publish(Tid(0), 100, 2);
        assert_eq!(t.successor(), None);
    }

    #[test]
    fn failover_preserves_every_scheduling_answer() {
        let mut t = SchedTable::new(
            SchedKind::Fast,
            OrderPolicy::InstructionCount,
            Slots::new(4),
        );
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.register(Tid(2), 0, 0);
        t.publish(Tid(0), 20, 3);
        t.arrive_sync(Tid(1), 50, 4);
        t.depart(Tid(2), 5);
        // Lock-free publication the cached keys lag behind.
        if let SchedTable::Fast(f) = &t {
            f.slots().clone().publish(Tid(0), 60, 7);
        }
        assert!(t.failover());
        assert_eq!(t.kind(), SchedKind::Reference);
        assert!(!t.failover(), "second failover is a no-op");
        assert_eq!(t.state(Tid(1)), ThreadState::AtSync(50));
        assert_eq!(t.state(Tid(2)), ThreadState::Departed);
        assert_eq!(t.published(Tid(0)), 60, "lock-free bound must carry over");
        assert!(t.eligible(Tid(1)), "T0 at 60 and departed T2 unblock T1");
        assert_eq!(t.crossing_v(Tid(1), 50), 7, "wake time from history");
        assert_eq!(t.min_waiting_other(Tid(0)), Some((50, 1)));
        assert_eq!(t.census(), (1, 1, 1));
    }

    #[test]
    fn failover_recovers_a_corrupted_queue() {
        // End-to-end at the table level: corrupt, detect, fail over; the
        // lost waiter is schedulable again on the rebuilt table.
        let mut t = SchedTable::new(
            SchedKind::Fast,
            OrderPolicy::InstructionCount,
            Slots::new(4),
        );
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(1), 50, 1);
        assert!(t.corrupt_lose_head_waiter(Tid(0)));
        assert!(t.check_invariants().is_err());
        t.publish(Tid(0), 100, 2);
        assert_eq!(t.successor(), None, "fast path would hang here");
        assert!(t.failover());
        t.check_invariants().expect("reference table is coherent");
        assert!(t.eligible(Tid(1)), "lost waiter is schedulable again");
        assert_eq!(t.crossing_v(Tid(1), 50), 2);
    }

    #[test]
    fn failover_preserves_round_robin_turn() {
        let mut t = SchedTable::new(SchedKind::Fast, OrderPolicy::RoundRobin, Slots::new(4));
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        t.arrive_sync(Tid(0), 9, 0);
        t.rr_advance(3);
        assert_eq!(t.rr_holder(), 1);
        assert!(t.failover());
        assert_eq!(t.rr_holder(), 1);
        assert_eq!(t.rr_turn_v(), 3);
        assert!(!t.eligible(Tid(0)));
    }

    #[test]
    fn fast_history_stays_bounded_under_publication() {
        let mut t = fast(2);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        let slots = t.slots().clone();
        let mut peak = 0;
        for i in 1..=100_000u64 {
            slots.publish(Tid(0), i, i);
            if i % 64 == 0 {
                t.arrive_sync(Tid(1), i - 1, i);
                assert!(t.eligible(Tid(1)));
                t.resume(Tid(1), i - 1, i);
            }
            peak = peak.max(t.history_len(Tid(0)));
        }
        assert!(peak < 4 * PRUNE_MIN, "history peaked at {peak} entries");
        assert!(t.history_len(Tid(1)) < 4 * PRUNE_MIN);
        t.arrive_sync(Tid(1), 99_999, 100_001);
        assert!(t.eligible(Tid(1)));
        assert_eq!(t.crossing_v(Tid(1), 99_999), 100_000);
    }
}
