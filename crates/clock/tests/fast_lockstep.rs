//! Differential property test for the scheduler fast path.
//!
//! Drives the lock-free [`FastTable`] and the reference [`ClockTable`]
//! through identical pseudo-random — but protocol-valid — operation
//! sequences, asserting after every single step that the two agree exactly
//! on each scheduling query the runtime uses: `state`, `published`,
//! `eligible`, `crossing_v` and `min_waiting_other` (plus the round-robin
//! turn). Any divergence would let the fast scheduler produce a different
//! token order than the reference table, breaking the bit-identical
//! schedule guarantee that `stress --sched-diff` checks end to end.

use det_clock::{ClockTable, FastTable, OrderPolicy, Slots};
use dmt_api::Tid;

/// Deterministic LCG (MMIX constants) driving case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// What the harness believes each simulated thread is doing. Mirrors the
/// runtime's own call discipline so every generated op is one the runtime
/// could have issued.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Model {
    /// Executing a chunk; may publish or arrive at a sync op.
    Running,
    /// Blocked at a sync op performed at this clock.
    AtSync(u64),
    /// Departed (blocked on a lock/condvar) at this saved clock.
    Departed(u64),
    /// Exited; its tid is never reused.
    Finished,
}

const MAX_THREADS: usize = 8;

struct Harness {
    fast: FastTable,
    refr: ClockTable,
    model: Vec<Model>,
    clock: Vec<u64>,
    v: u64,
}

impl Harness {
    fn new(policy: OrderPolicy) -> Harness {
        let mut h = Harness {
            fast: FastTable::new(policy, Slots::new(MAX_THREADS)),
            refr: ClockTable::new(policy, MAX_THREADS),
            model: Vec::new(),
            clock: Vec::new(),
            v: 0,
        };
        h.register(0);
        h
    }

    fn register(&mut self, birth_clock: u64) {
        let t = Tid(self.model.len() as u32);
        self.fast.register(t, birth_clock, self.v);
        self.refr.register(t, birth_clock, self.v);
        self.model.push(Model::Running);
        self.clock.push(birth_clock);
    }

    /// All-queries comparison; the heart of the lockstep property.
    fn check(&mut self) {
        for i in 0..self.model.len() {
            let t = Tid(i as u32);
            if self.model[i] == Model::Finished {
                continue;
            }
            assert_eq!(self.fast.state(t), self.refr.state(t), "state({t})");
            assert_eq!(
                self.fast.published(t),
                self.refr.published(t),
                "published({t})"
            );
            assert_eq!(
                self.fast.min_waiting_other(t),
                self.refr.min_waiting_other(t),
                "min_waiting_other({t})"
            );
            if let Model::AtSync(c) = self.model[i] {
                assert_eq!(
                    self.fast.eligible(t),
                    self.refr.eligible(t),
                    "eligible({t}) at clock {c}"
                );
                assert_eq!(
                    self.fast.crossing_v(t, c),
                    self.refr.crossing_v(t, c),
                    "crossing_v({t}, {c})"
                );
            }
        }
        match self.fast.policy() {
            OrderPolicy::InstructionCount => {
                // The fast table's successor — the one thread a token
                // release wakes — must be exactly the waiter the reference
                // table would grant to: the minimum (clock, tid) waiter,
                // when eligible.
                let min_waiter = self
                    .model
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| match m {
                        Model::AtSync(c) => Some((*c, i as u32)),
                        _ => None,
                    })
                    .min();
                let expect = min_waiter
                    .filter(|&(_, w)| self.refr.eligible(Tid(w)))
                    .map(|(_, w)| Tid(w));
                assert_eq!(self.fast.successor(), expect, "successor");
            }
            OrderPolicy::RoundRobin => {
                assert_eq!(self.fast.rr_holder(), self.refr.rr_holder(), "rr_holder");
                assert_eq!(self.fast.rr_turn_v(), self.refr.rr_turn_v(), "rr_turn_v");
                let holder = self.fast.rr_holder();
                let expect = matches!(self.model.get(holder), Some(Model::AtSync(_)))
                    .then(|| Tid(holder as u32));
                assert_eq!(self.fast.successor(), expect, "rr successor");
            }
        }
    }

    fn step(&mut self, rng: &mut Rng) {
        self.v += 1 + rng.below(5);
        let i = rng.below(self.model.len() as u64) as usize;
        let t = Tid(i as u32);
        match self.model[i] {
            Model::Running => match rng.below(10) {
                // Publish a counter-overflow bound (the hot path).
                0..=4 => {
                    self.clock[i] += 1 + rng.below(50);
                    let adv_f = self.fast.publish(t, self.clock[i], self.v);
                    let adv_r = self.refr.publish(t, self.clock[i], self.v);
                    assert_eq!(adv_f, adv_r, "publish advanced");
                }
                // Arrive at a sync op (possibly at the current clock).
                5..=8 => {
                    self.clock[i] += rng.below(20);
                    self.fast.arrive_sync(t, self.clock[i], self.v);
                    self.refr.arrive_sync(t, self.clock[i], self.v);
                    self.model[i] = Model::AtSync(self.clock[i]);
                }
                // Spawn: the child starts at the parent's clock, which is
                // ≥ every pruning watermark (the parent is live).
                _ => {
                    if self.model.len() < MAX_THREADS {
                        self.register(self.clock[i]);
                    }
                }
            },
            Model::AtSync(_) => match rng.below(10) {
                // Granted the token and released it: resume running,
                // possibly fast-forwarded past the arrival clock.
                0..=5 => {
                    self.clock[i] += rng.below(10);
                    self.fast.resume(t, self.clock[i], self.v);
                    self.refr.resume(t, self.clock[i], self.v);
                    self.model[i] = Model::Running;
                    if self.fast.policy() == OrderPolicy::RoundRobin && self.fast.rr_holder() == i {
                        // The runtime advances the turn when the holder
                        // releases the token.
                        self.fast.rr_advance(self.v);
                        self.refr.rr_advance(self.v);
                    }
                }
                // Block on a lock or condvar: leave GMIC consideration.
                6..=8 => {
                    self.fast.depart(t, self.v);
                    self.refr.depart(t, self.v);
                    self.model[i] = Model::Departed(self.clock[i]);
                }
                // Exit (from the sync arrival, as ctx::finish does).
                _ => {
                    self.fast.finish(t, self.v);
                    self.refr.finish(t, self.v);
                    self.model[i] = Model::Finished;
                }
            },
            Model::Departed(saved) => {
                // Woken by an unlock/signal at the waker's virtual time.
                self.fast.reactivate(t, saved, self.v);
                self.refr.reactivate(t, saved, self.v);
                self.clock[i] = self.clock[i].max(saved);
                self.model[i] = Model::Running;
            }
            Model::Finished => {}
        }
        self.check();
    }
}

fn run_seed(policy: OrderPolicy, seed: u64) {
    let mut rng = Rng(seed);
    let mut h = Harness::new(policy);
    for _ in 0..400 {
        h.step(&mut rng);
    }
}

#[test]
fn fast_and_reference_agree_under_instruction_count() {
    for seed in 0..20 {
        run_seed(OrderPolicy::InstructionCount, 0x5EED_1C00 + seed);
    }
}

#[test]
fn fast_and_reference_agree_under_round_robin() {
    for seed in 0..20 {
        run_seed(OrderPolicy::RoundRobin, 0x5EED_4200 + seed);
    }
}

/// Long publication streams with an active waiter: pruning fires on both
/// tables, and every query must still agree (the watermark proof in
/// `table.rs` says pruned entries can never change an answer above the
/// watermark).
#[test]
fn agreement_survives_history_pruning() {
    let mut h = Harness::new(OrderPolicy::InstructionCount);
    h.register(0); // Tid(1)
    let mut rng = Rng(0x5EED_9900);
    for round in 0..2_000u64 {
        h.v += 1;
        h.clock[0] += 1 + rng.below(8);
        let f = h.fast.publish(Tid(0), h.clock[0], h.v);
        let r = h.refr.publish(Tid(0), h.clock[0], h.v);
        assert_eq!(f, r);
        if round % 64 == 0 {
            h.v += 1;
            h.clock[1] = h.clock[0].saturating_sub(1);
            h.fast.arrive_sync(Tid(1), h.clock[1], h.v);
            h.refr.arrive_sync(Tid(1), h.clock[1], h.v);
            h.model[1] = Model::AtSync(h.clock[1]);
            h.check();
            h.v += 1;
            h.fast.resume(Tid(1), h.clock[1], h.v);
            h.refr.resume(Tid(1), h.clock[1], h.v);
            h.model[1] = Model::Running;
        }
        h.check();
    }
    // Pruning actually happened: the publisher's history stayed bounded.
    assert!(h.fast.history_len(Tid(0)) < 512, "fast history unbounded");
    assert!(
        h.refr.history_len(Tid(0)) < 512,
        "reference history unbounded"
    );
}
