//! Property-style tests for the deterministic clock table.
//!
//! These were originally `proptest` properties; they now run over scripted
//! pseudo-random cases from a local LCG so the workspace builds with no
//! external dependencies. The case counts match the old configs.

use det_clock::{ClockTable, OrderPolicy, OverflowPolicy, ThreadState};
use dmt_api::Tid;

/// Deterministic LCG (MMIX constants) driving case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A simulated runnable thread with a fixed schedule of sync-op clocks.
#[derive(Clone, Debug)]
struct Plan {
    /// Strictly increasing clocks at which this thread performs sync ops.
    ops: Vec<u64>,
}

fn gen_plans(rng: &mut Rng) -> Vec<Plan> {
    let nthreads = 2 + rng.below(3) as usize;
    (0..nthreads)
        .map(|_| {
            let nops = 1 + rng.below(5) as usize;
            let mut v: Vec<u64> = (0..nops).map(|_| 1 + rng.below(499)).collect();
            v.sort_unstable();
            v.dedup();
            // Make strictly increasing cumulative clocks.
            let mut acc = 0;
            let ops = v
                .into_iter()
                .map(|d| {
                    acc += d;
                    acc
                })
                .collect();
            Plan { ops }
        })
        .collect()
}

/// Replays all threads' sync ops through the table in an arbitrary
/// arrival interleaving (driven by `perm`), granting greedily whenever
/// someone is eligible, and returns the grant order.
fn simulate(plans: &[Plan], policy: OrderPolicy, perm: u64) -> Vec<(u64, u32)> {
    let n = plans.len();
    let mut t = ClockTable::new(policy, n);
    for (i, _) in plans.iter().enumerate() {
        t.register(Tid(i as u32), 0, 0);
    }
    let mut next = vec![0usize; n];
    let mut arrived = vec![false; n];
    let mut grants = Vec::new();
    let mut rng = perm;
    let total: usize = plans.iter().map(|p| p.ops.len()).sum();
    while grants.len() < total {
        // Nondeterministically let some thread arrive at its next op.
        let mut progressed = false;
        for _ in 0..n {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (rng >> 33) as usize % n;
            if !arrived[i] && next[i] < plans[i].ops.len() {
                t.arrive_sync(Tid(i as u32), plans[i].ops[next[i]], 0);
                arrived[i] = true;
                progressed = true;
                break;
            }
        }
        // Grant to whoever is eligible.
        let mut granted = false;
        for i in 0..n {
            if arrived[i] && t.eligible(Tid(i as u32)) {
                let c = plans[i].ops[next[i]];
                grants.push((c, i as u32));
                next[i] += 1;
                arrived[i] = false;
                if next[i] == plans[i].ops.len() {
                    t.finish(Tid(i as u32), 0);
                } else {
                    t.resume(Tid(i as u32), c, 0);
                }
                if policy == OrderPolicy::RoundRobin {
                    t.rr_advance(0);
                }
                granted = true;
                break;
            }
        }
        // If nothing arrived and nothing was granted, force an arrival of
        // the lowest pending op (models that thread publishing/arriving).
        if !progressed && !granted {
            let pending = (0..n)
                .filter(|&i| !arrived[i] && next[i] < plans[i].ops.len())
                .min_by_key(|&i| (plans[i].ops[next[i]], i));
            if let Some(i) = pending {
                t.arrive_sync(Tid(i as u32), plans[i].ops[next[i]], 0);
                arrived[i] = true;
            }
        }
    }
    grants
}

/// Under instruction-count ordering, the grant multiset equals the plan
/// multiset, per-thread grant order follows each plan, and two different
/// interleavings give the same grant order.
#[test]
fn ic_grants_sort_by_clock_tid() {
    let mut rng = Rng(0x1c_1c_1c);
    for _ in 0..128 {
        let ps = gen_plans(&mut rng);
        let perm = rng.next();
        let grants = simulate(&ps, OrderPolicy::InstructionCount, perm);
        // Grant multiset must equal the plan multiset…
        let mut expect: Vec<(u64, u32)> = ps
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.ops.iter().map(move |&c| (c, i as u32)))
            .collect();
        let mut got = grants.clone();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
        // …and per-thread grant order must follow each plan (clocks are
        // strictly increasing per thread).
        for (i, p) in ps.iter().enumerate() {
            let mine: Vec<u64> = grants
                .iter()
                .filter(|(_, t)| *t == i as u32)
                .map(|(c, _)| *c)
                .collect();
            assert_eq!(mine, p.ops);
        }
        // Two different interleavings give the same grant order.
        let again = simulate(&ps, OrderPolicy::InstructionCount, perm.wrapping_add(1));
        assert_eq!(grants, again);
    }
}

/// Round-robin grants are interleaving-independent too.
#[test]
fn rr_grants_are_interleaving_independent() {
    let mut rng = Rng(0x2d_2d_2d);
    for _ in 0..128 {
        let ps = gen_plans(&mut rng);
        let perm = rng.next();
        let a = simulate(&ps, OrderPolicy::RoundRobin, perm);
        let b = simulate(
            &ps,
            OrderPolicy::RoundRobin,
            perm.wrapping_mul(31).wrapping_add(7),
        );
        assert_eq!(a, b);
    }
}

/// Crossing lookups return the virtual time of an event that actually
/// released the waiter: monotone in the waiter's clock.
#[test]
fn crossing_v_is_monotone_in_waiter_clock() {
    let mut rng = Rng(0x3e_3e_3e);
    for _ in 0..96 {
        let npubs = 1 + rng.below(19) as usize;
        let mut t = ClockTable::new(OrderPolicy::InstructionCount, 2);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        let mut clock = 0;
        let mut v = 0;
        for _ in 0..npubs {
            clock += 1 + rng.below(999);
            v += 1 + rng.below(999);
            t.publish(Tid(0), clock, v);
        }
        let mut last = 0;
        for c in (0..clock).step_by(97) {
            let w = t.crossing_v(Tid(1), c);
            assert!(w >= last, "crossing_v must be monotone");
            last = w;
        }
    }
}

/// The adaptive overflow policy always proposes a strictly future
/// threshold, and rule 2 lands exactly one past the waiter.
#[test]
fn overflow_thresholds_are_future() {
    let mut rng = Rng(0x4f_4f_4f);
    for _ in 0..256 {
        let now = rng.below(1_000_000);
        let w = if rng.below(2) == 0 {
            None
        } else {
            Some(rng.below(1_000_000))
        };
        let mut p = OverflowPolicy::paper(true);
        let t = p.next_threshold(now, w);
        assert!(t > now);
        if let Some(w) = w {
            if w >= now {
                assert_eq!(t, w + 1);
            }
        }
    }
}

#[test]
fn census_and_state_transitions() {
    let mut t = ClockTable::new(OrderPolicy::InstructionCount, 3);
    t.register(Tid(0), 0, 0);
    assert_eq!(t.state(Tid(0)), ThreadState::Running);
    t.arrive_sync(Tid(0), 5, 0);
    assert!(matches!(t.state(Tid(0)), ThreadState::AtSync(5)));
    t.depart(Tid(0), 0);
    assert_eq!(t.state(Tid(0)), ThreadState::Departed);
    t.reactivate(Tid(0), 5, 1);
    assert_eq!(t.state(Tid(0)), ThreadState::Running);
    t.finish(Tid(0), 2);
    assert_eq!(t.state(Tid(0)), ThreadState::Finished);
    assert_eq!(t.census(), (0, 0, 0));
}
