//! Property tests for the deterministic clock table.

use proptest::prelude::*;

use det_clock::{ClockTable, OrderPolicy, OverflowPolicy, ThreadState};
use dmt_api::Tid;

/// A simulated runnable thread with a fixed schedule of sync-op clocks.
#[derive(Clone, Debug)]
struct Plan {
    /// Strictly increasing clocks at which this thread performs sync ops.
    ops: Vec<u64>,
}

fn plans() -> impl Strategy<Value = Vec<Plan>> {
    prop::collection::vec(
        prop::collection::vec(1u64..500, 1..6).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            // Make strictly increasing cumulative clocks.
            let mut acc = 0;
            let ops = v
                .into_iter()
                .map(|d| {
                    acc += d;
                    acc
                })
                .collect();
            Plan { ops }
        }),
        2..5,
    )
}

/// Replays all threads' sync ops through the table in an arbitrary
/// arrival interleaving (driven by `perm`), granting greedily whenever
/// someone is eligible, and returns the grant order.
fn simulate(plans: &[Plan], policy: OrderPolicy, perm: u64) -> Vec<(u64, u32)> {
    let n = plans.len();
    let mut t = ClockTable::new(policy, n);
    for (i, _) in plans.iter().enumerate() {
        t.register(Tid(i as u32), 0, 0);
    }
    let mut next = vec![0usize; n];
    let mut arrived = vec![false; n];
    let mut grants = Vec::new();
    let mut rng = perm;
    let total: usize = plans.iter().map(|p| p.ops.len()).sum();
    while grants.len() < total {
        // Nondeterministically let some thread arrive at its next op.
        let mut progressed = false;
        for _ in 0..n {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (rng >> 33) as usize % n;
            if !arrived[i] && next[i] < plans[i].ops.len() {
                t.arrive_sync(Tid(i as u32), plans[i].ops[next[i]], 0);
                arrived[i] = true;
                progressed = true;
                break;
            }
        }
        // Grant to whoever is eligible.
        let mut granted = false;
        for i in 0..n {
            if arrived[i] && t.eligible(Tid(i as u32)) {
                let c = plans[i].ops[next[i]];
                grants.push((c, i as u32));
                next[i] += 1;
                arrived[i] = false;
                if next[i] == plans[i].ops.len() {
                    t.finish(Tid(i as u32), 0);
                } else {
                    t.resume(Tid(i as u32), c, 0);
                }
                if policy == OrderPolicy::RoundRobin {
                    t.rr_advance(0);
                }
                granted = true;
                break;
            }
        }
        // If nothing arrived and nothing was granted, force an arrival of
        // the lowest pending op (models that thread publishing/arriving).
        if !progressed && !granted {
            let pending = (0..n)
                .filter(|&i| !arrived[i] && next[i] < plans[i].ops.len())
                .min_by_key(|&i| (plans[i].ops[next[i]], i));
            if let Some(i) = pending {
                t.arrive_sync(Tid(i as u32), plans[i].ops[next[i]], 0);
                arrived[i] = true;
            }
        }
    }
    grants
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under instruction-count ordering, the grant order is the sorted
    /// order of `(clock, tid)` — regardless of real-time arrival order.
    ///
    /// (One caveat makes this exact here: each thread's published clock at
    /// arrival time equals its op clock, so the greedy grant can never run
    /// ahead of a thread that has not arrived yet.)
    #[test]
    fn ic_grants_sort_by_clock_tid(ps in plans(), perm in any::<u64>()) {
        // Threads publish only at arrival in this model, so eligibility
        // can stall until the blocking thread arrives; the simulator's
        // fallback models exactly the overflow publication that unblocks.
        let grants = simulate(&ps, OrderPolicy::InstructionCount, perm);
        let per_thread_next = vec![0usize; ps.len()];
        for window in grants.windows(2) {
            let (_c0, t0) = window[0];
            let _ = per_thread_next[t0 as usize];
        }
        // Grant multiset must equal the plan multiset…
        let mut expect: Vec<(u64, u32)> = ps
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.ops.iter().map(move |&c| (c, i as u32)))
            .collect();
        let mut got = grants.clone();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(&got, &expect);
        // …and per-thread grant order must follow each plan (clocks are
        // strictly increasing per thread).
        for (i, p) in ps.iter().enumerate() {
            let mine: Vec<u64> = grants
                .iter()
                .filter(|(_, t)| *t == i as u32)
                .map(|(c, _)| *c)
                .collect();
            prop_assert_eq!(&mine, &p.ops);
        }
        // Two different interleavings give the same grant order.
        let again = simulate(&ps, OrderPolicy::InstructionCount, perm.wrapping_add(1));
        prop_assert_eq!(grants, again);
    }

    /// Round-robin grants are interleaving-independent too.
    #[test]
    fn rr_grants_are_interleaving_independent(ps in plans(), perm in any::<u64>()) {
        let a = simulate(&ps, OrderPolicy::RoundRobin, perm);
        let b = simulate(&ps, OrderPolicy::RoundRobin, perm.wrapping_mul(31).wrapping_add(7));
        prop_assert_eq!(a, b);
    }

    /// Crossing lookups return the virtual time of an event that actually
    /// released the waiter: monotone in the waiter's clock.
    #[test]
    fn crossing_v_is_monotone_in_waiter_clock(
        pubs in prop::collection::vec((1u64..1_000, 1u64..1_000), 1..20)
    ) {
        let mut t = ClockTable::new(OrderPolicy::InstructionCount, 2);
        t.register(Tid(0), 0, 0);
        t.register(Tid(1), 0, 0);
        let mut clock = 0;
        let mut v = 0;
        for (dc, dv) in pubs {
            clock += dc;
            v += dv;
            t.publish(Tid(0), clock, v);
        }
        let mut last = 0;
        for c in (0..clock).step_by(97) {
            let w = t.crossing_v(Tid(1), c);
            prop_assert!(w >= last, "crossing_v must be monotone");
            last = w;
        }
    }

    /// The adaptive overflow policy always proposes a strictly future
    /// threshold, and rule 2 lands exactly one past the waiter.
    #[test]
    fn overflow_thresholds_are_future(now in 0u64..1_000_000, w in prop::option::of(0u64..1_000_000)) {
        let mut p = OverflowPolicy::paper(true);
        let t = p.next_threshold(now, w);
        prop_assert!(t > now);
        if let Some(w) = w {
            if w >= now {
                prop_assert_eq!(t, w + 1);
            }
        }
    }
}

#[test]
fn census_and_state_transitions() {
    let mut t = ClockTable::new(OrderPolicy::InstructionCount, 3);
    t.register(Tid(0), 0, 0);
    assert_eq!(t.state(Tid(0)), ThreadState::Running);
    t.arrive_sync(Tid(0), 5, 0);
    assert!(matches!(t.state(Tid(0)), ThreadState::AtSync(5)));
    t.depart(Tid(0), 0);
    assert_eq!(t.state(Tid(0)), ThreadState::Departed);
    t.reactivate(Tid(0), 5, 1);
    assert_eq!(t.state(Tid(0)), ThreadState::Running);
    t.finish(Tid(0), 2);
    assert_eq!(t.state(Tid(0)), ThreadState::Finished);
    assert_eq!(t.census(), (0, 0, 0));
}
