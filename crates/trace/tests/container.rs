//! Container-level tests: write/read round trips and rejection of
//! damaged files — every corruption class named in `docs/TRACE_FORMAT.md`
//! must map to a specific `TraceError`.

use dmt_api::trace::Event;
use dmt_api::{MutexId, Tid};
use dmt_trace::{Trace, TraceError, TraceMeta, TraceWriter, HEADER_LEN, PAGE_EVENTS};

/// Deterministic LCG over a representative event mix (multiple pages,
/// every delta path: clocks, versions, tickets, optional tids).
fn gen_events(n: usize, seed: u64) -> Vec<Event> {
    let mut s = seed | 1;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    let mut clock = 0u64;
    let mut version = 0u64;
    (0..n)
        .map(|_| {
            clock += next() % 5_000;
            match next() % 5 {
                0 => Event::TokenAcquire {
                    tid: Tid((next() % 8) as u32),
                    clock,
                },
                1 => Event::TokenRelease {
                    tid: Tid((next() % 8) as u32),
                    clock,
                },
                2 => Event::MutexLock {
                    tid: Tid((next() % 8) as u32),
                    mutex: MutexId((next() % 4) as u32),
                    ticket: next() % 1_000,
                },
                3 => {
                    version += 1;
                    Event::Commit {
                        tid: Tid((next() % 8) as u32),
                        version,
                        pages: (next() % 32) as u32,
                        merged: (next() % 8) as u32,
                        page_set: next(),
                    }
                }
                _ => Event::Publish {
                    tid: Tid((next() % 8) as u32),
                    clock,
                },
            }
        })
        .collect()
}

fn meta() -> TraceMeta {
    TraceMeta {
        runtime: "consequence-ic".into(),
        workload: "synthetic".into(),
        threads: 4,
        scale: 1,
        input_seed: 42,
        heap_pages: 64,
        max_threads: 64,
        options_fingerprint: 0xDEAD_BEEF,
        perturb_seed: 0,
        perturb_plan: 0,
        event_count: 0,
        schedule_hash: 0,
        commit_log_hash: 7,
        output_hash: 9,
        checkpoint_interval: 0,
        panic_site: 0,
        panic_victim: 0,
        panic_nth: 0,
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dmtrace-container-{}-{name}", std::process::id()))
}

/// Writes `n` generated events and returns the container image.
fn written(n: usize, seed: u64) -> (Vec<Event>, Vec<u8>) {
    let path = scratch(&format!("w{n}-{seed}"));
    let events = gen_events(n, seed);
    let mut w = TraceWriter::create(&path).unwrap();
    for ev in &events {
        w.push(ev).unwrap();
    }
    w.finish(meta()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    (events, bytes)
}

#[test]
fn round_trip_property_across_sizes_and_seeds() {
    // Sizes straddling page boundaries: empty, tiny, exactly one page,
    // one page ± 1, several pages.
    for (i, n) in [
        0,
        1,
        7,
        PAGE_EVENTS - 1,
        PAGE_EVENTS,
        PAGE_EVENTS + 1,
        3 * PAGE_EVENTS + 17,
    ]
    .into_iter()
    .enumerate()
    {
        let (events, bytes) = written(n, 0x5EED + i as u64);
        let t = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(t.events, events, "n={n}");
        assert_eq!(t.meta.event_count, n as u64);
        assert_eq!(t.checkpoints.len(), n.div_ceil(PAGE_EVENTS));
        assert_eq!(t.meta.runtime, "consequence-ic");
        assert_eq!(t.meta.options_fingerprint, 0xDEAD_BEEF);
    }
}

#[test]
fn rejects_bad_magic() {
    let (_, mut bytes) = written(10, 1);
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::BadMagic)
    ));
}

#[test]
fn rejects_wrong_versions() {
    let (_, mut bytes) = written(10, 2);
    bytes[8] = 99; // container version
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::BadVersion {
            what: "container",
            ..
        })
    ));
    let (_, mut bytes) = written(10, 2);
    bytes[40] = 99; // codec version
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::BadVersion {
            what: "event codec",
            ..
        })
    ));
}

#[test]
fn rejects_short_reads() {
    let (_, bytes) = written(PAGE_EVENTS * 2, 3);
    // Shorter than a header.
    assert!(matches!(
        Trace::from_bytes(&bytes[..HEADER_LEN - 1]),
        Err(TraceError::Truncated { .. })
    ));
    // Header intact but the file is cut before the directory.
    assert!(matches!(
        Trace::from_bytes(&bytes[..bytes.len() - 40]),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn rejects_unfinished_recording() {
    // A writer that was never finish()ed leaves directory offset 0.
    let path = scratch("unfinished");
    let mut w = TraceWriter::create(&path).unwrap();
    for ev in gen_events(PAGE_EVENTS + 3, 4) {
        w.push(&ev).unwrap();
    }
    drop(w); // process "died" mid-recording
    let err = Trace::open(&path).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(err, TraceError::Truncated { what: "directory" }));
}

#[test]
fn rejects_flipped_payload_byte() {
    let (_, mut bytes) = written(PAGE_EVENTS + 50, 5);
    // Flip one byte inside the first event page's payload (the page
    // header starts right after the container header).
    bytes[HEADER_LEN + 16 + 10] ^= 0x01;
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::ChecksumMismatch { .. })
    ));
}

#[test]
fn rejects_flipped_directory_byte() {
    let (_, mut bytes) = written(20, 6);
    let n = bytes.len();
    bytes[n - 1] ^= 0x01; // last directory byte
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::ChecksumMismatch {
            what: "directory",
            ..
        })
    ));
}

#[test]
fn grants_extracts_token_acquire_order() {
    let (events, bytes) = written(PAGE_EVENTS * 2 + 9, 7);
    let t = Trace::from_bytes(&bytes).unwrap();
    let expected: Vec<Tid> = events
        .iter()
        .filter_map(|ev| match ev {
            Event::TokenAcquire { tid, .. } => Some(*tid),
            _ => None,
        })
        .collect();
    assert_eq!(t.grants(), expected);
}

#[test]
fn save_round_trips_edited_events() {
    let (_, bytes) = written(PAGE_EVENTS + 11, 8);
    let mut t = Trace::from_bytes(&bytes).unwrap();
    let target = t
        .events
        .iter()
        .position(|ev| matches!(ev, Event::TokenAcquire { .. }))
        .unwrap();
    if let Event::TokenAcquire { clock, .. } = &mut t.events[target] {
        *clock += 1;
    }
    let path = scratch("resave");
    t.save(&path).unwrap();
    // The rewritten container is internally valid (digests recomputed)
    // and preserves the edit.
    let t2 = Trace::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(t2.events, t.events);
    assert_ne!(t2.meta.schedule_hash, t.meta.schedule_hash);
}
