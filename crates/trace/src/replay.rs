//! The replay comparison sink: recorded schedule vs. live re-execution.

use std::sync::Arc;

use det_clock::ReplayCtl;
use dmt_api::sync::Mutex;
use dmt_api::trace::{Divergence, Event, EventCounts, TraceSink};
use dmt_api::{DomainId, Fnv1a};

use crate::reader::{Checkpoint, Trace};

/// A failed cumulative-hash checkpoint during replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointFailure {
    /// Event index (count folded) at which the checkpoint was taken.
    pub events: u64,
    /// Hash recorded in the trace.
    pub recorded: u64,
    /// Hash the replay computed.
    pub replayed: u64,
}

struct ReplayState {
    cursor: usize,
    hash: Fnv1a,
    counts: EventCounts,
    divergence: Option<Divergence>,
    next_ckpt: usize,
    checkpoints_passed: u64,
    checkpoint_failure: Option<CheckpointFailure>,
    /// Partial mode: live event index at which the recording ran out
    /// (clean exhaustion, not divergence).
    exhausted_at: Option<u64>,
    /// Live schedule hash at the moment the cursor crossed the end of
    /// the recording — the value compared against the (partial) trace's
    /// recorded prefix hash.
    prefix_hash: Option<u64>,
}

/// A [`TraceSink`] that checks a re-execution against a recorded trace
/// event by event.
///
/// Attached as the replaying runtime's trace sink, it folds the live
/// schedule hash exactly like a `HashSink`, compares every schedule
/// event against the recorded stream, verifies each per-page cumulative
/// hash checkpoint as it is crossed, and on the first mismatch builds
/// the same first-divergent-event [`Divergence`] diagnosis the stress
/// harness produces — then releases the grant script via
/// [`ReplayCtl::mark_diverged`] so the run completes under recomputed
/// eligibility instead of deadlocking on an inapplicable schedule.
///
/// Call [`finish_check`](ReplaySink::finish_check) after the run: a
/// replay that stopped *short* of the recorded stream is a divergence
/// too, which per-event comparison alone cannot see.
pub struct ReplaySink {
    recorded: Vec<(DomainId, Event)>,
    checkpoints: Vec<Checkpoint>,
    ctl: Arc<ReplayCtl>,
    /// Partial mode: the recording is a salvaged prefix of a longer run,
    /// so the live run outliving it is *exhaustion*, not divergence.
    partial: bool,
    st: Mutex<ReplayState>,
}

impl ReplaySink {
    /// Builds the comparison sink for `trace`, sharing the grant-script
    /// control the scheduler consults.
    pub fn new(trace: &Trace, ctl: Arc<ReplayCtl>) -> ReplaySink {
        ReplaySink::build(trace, ctl, false)
    }

    /// Builds the sink in **partial mode**, for a trace salvaged from a
    /// crashed recording ([`crate::PartialTrace`]): the live run emitting
    /// more events than were recorded is reported as clean exhaustion
    /// ([`exhausted_at`](ReplaySink::exhausted_at)) rather than
    /// divergence, and the live hash at the crossing point is captured
    /// as [`prefix_hash`](ReplaySink::prefix_hash). Every event *within*
    /// the recorded prefix is still compared exactly as in full mode.
    pub fn new_partial(trace: &Trace, ctl: Arc<ReplayCtl>) -> ReplaySink {
        ReplaySink::build(trace, ctl, true)
    }

    fn build(trace: &Trace, ctl: Arc<ReplayCtl>, partial: bool) -> ReplaySink {
        let recorded = trace.domain_events();
        // An empty recording is already exhausted: its prefix hash is
        // the empty-stream hash.
        let prefix_hash = recorded.is_empty().then(|| Fnv1a::new().digest());
        ReplaySink {
            recorded,
            checkpoints: trace.checkpoints.clone(),
            ctl,
            partial,
            st: Mutex::new(ReplayState {
                cursor: 0,
                hash: Fnv1a::new(),
                counts: EventCounts::default(),
                divergence: None,
                next_ckpt: 0,
                checkpoints_passed: 0,
                checkpoint_failure: None,
                exhausted_at: None,
                prefix_hash,
            }),
        }
    }

    fn context_before(&self, index: usize) -> Vec<(usize, Event)> {
        (index.saturating_sub(5)..index)
            .map(|i| (i, self.recorded[i].1))
            .collect()
    }

    /// End-of-run check: a replay that emitted fewer schedule events
    /// than were recorded diverged at its end. Records that divergence
    /// (if none was seen earlier) and returns the final verdict.
    pub fn finish_check(&self) -> Option<Divergence> {
        let mut st = self.st.lock();
        if st.divergence.is_none() && st.cursor < self.recorded.len() {
            let (domain, ev) = self.recorded[st.cursor];
            st.divergence = Some(Divergence {
                index: st.cursor,
                left: Some(ev),
                right: None,
                context: self.context_before(st.cursor),
                domain,
            });
        }
        st.divergence.clone()
    }

    /// Schedule events the replay has emitted so far.
    pub fn replayed_events(&self) -> u64 {
        self.st.lock().cursor as u64
    }

    /// Cumulative-hash checkpoints that matched so far.
    pub fn checkpoints_passed(&self) -> u64 {
        self.st.lock().checkpoints_passed
    }

    /// Checkpoints the recorded trace carries in total.
    pub fn checkpoints_total(&self) -> u64 {
        self.checkpoints.len() as u64
    }

    /// The first failed checkpoint, if any. With per-event comparison
    /// active this only fires when the *hash folding itself* disagrees
    /// across builds — the cross-build drift the checkpoints exist to
    /// localize.
    pub fn checkpoint_failure(&self) -> Option<CheckpointFailure> {
        self.st.lock().checkpoint_failure
    }

    /// Partial mode only: the live event index at which the recorded
    /// prefix ran out. `None` means the live run never outlived the
    /// recording (or the sink is in full mode, where that is divergence).
    pub fn exhausted_at(&self) -> Option<u64> {
        self.st.lock().exhausted_at
    }

    /// The live cumulative schedule hash at the moment the replay
    /// finished consuming exactly the recorded events — the value to
    /// compare against the recording's schedule hash for bit-identical
    /// prefix reproduction. `None` while the replay is still inside the
    /// prefix.
    pub fn prefix_hash(&self) -> Option<u64> {
        self.st.lock().prefix_hash
    }
}

impl TraceSink for ReplaySink {
    fn emit(&self, ev: &Event, in_schedule: bool, domain: DomainId) {
        let mut st = self.st.lock();
        st.counts.record(ev.kind());
        if !in_schedule {
            return;
        }
        ev.fold_domain(domain, &mut st.hash);
        let i = st.cursor;
        st.cursor += 1;
        if st.divergence.is_none() {
            match self.recorded.get(i) {
                Some((rec_d, rec)) if rec == ev && *rec_d == domain => {}
                Some((rec_d, rec)) => {
                    // Name the recorded side's domain unless only the
                    // live side exists there.
                    st.divergence = Some(Divergence {
                        index: i,
                        left: Some(*rec),
                        right: Some(*ev),
                        context: self.context_before(i),
                        domain: *rec_d,
                    });
                    self.ctl.mark_diverged();
                }
                None if self.partial => {
                    // A salvaged prefix ran out mid-run: the recording
                    // ends here by construction, not by disagreement.
                    if st.exhausted_at.is_none() {
                        st.exhausted_at = Some(i as u64);
                    }
                }
                None => {
                    // The replay ran past the end of the recording.
                    st.divergence = Some(Divergence {
                        index: i,
                        left: None,
                        right: Some(*ev),
                        context: self.context_before(i),
                        domain,
                    });
                    self.ctl.mark_diverged();
                }
            }
        }
        if st.cursor == self.recorded.len() && st.prefix_hash.is_none() {
            st.prefix_hash = Some(st.hash.digest());
        }
        if let Some(ck) = self.checkpoints.get(st.next_ckpt) {
            if st.cursor as u64 == ck.events {
                st.next_ckpt += 1;
                if st.hash.digest() == ck.hash {
                    st.checkpoints_passed += 1;
                } else if st.checkpoint_failure.is_none() {
                    st.checkpoint_failure = Some(CheckpointFailure {
                        events: ck.events,
                        recorded: ck.hash,
                        replayed: st.hash.digest(),
                    });
                    self.ctl.mark_diverged();
                }
            }
        }
    }

    fn schedule_hash(&self) -> u64 {
        self.st.lock().hash.digest()
    }

    fn counts(&self) -> EventCounts {
        self.st.lock().counts
    }

    fn salvaged_pages(&self) -> u64 {
        if self.partial {
            self.checkpoints.len() as u64
        } else {
            0
        }
    }

    fn divergence(&self) -> Option<Divergence> {
        self.st.lock().divergence.clone()
    }
}
