//! Container constants, stream directory and error type.
//!
//! The byte-level layout implemented here is specified normatively in
//! `docs/TRACE_FORMAT.md` at the workspace root; the two must be kept in
//! lockstep. In brief, a `.dmtrace` file is:
//!
//! ```text
//! [ header (64 bytes, fixed) ]
//! [ stream 1: EVENTS       — paged, varint/delta-encoded ]
//! [ stream 0: META         — run identity + recorded digests ]
//! [ stream 2: CHECKPOINTS  — cumulative FNV-1a per event page ]
//! [ stream 3: PERTURB      — fault-injection plan seed + digest ]
//! [ stream directory (32 bytes per stream, FNV-1a protected) ]
//! ```
//!
//! The event stream comes first so the writer can stream it during the
//! run without knowing its final length; everything else is appended by
//! [`crate::TraceWriter::finish`], which then patches the directory
//! offset into the header. A file whose header still carries offset 0 was
//! never finished and is rejected as truncated.

use std::fmt;

use dmt_api::Fnv1a;

/// Magic bytes opening every trace container (`"DMTRACE\0"`).
pub const MAGIC: [u8; 8] = *b"DMTRACE\0";

/// Container layout version written and accepted by this build.
pub const CONTAINER_VERSION: u32 = 1;

/// Event codec version written and accepted by this build. Bumped when
/// the per-event byte encoding (tags, field order, delta rules) changes.
pub const CODEC_VERSION: u32 = 1;

/// Size of the fixed file header in bytes.
pub const HEADER_LEN: usize = 64;

/// Size of one stream-directory entry in bytes.
pub const DIR_ENTRY_LEN: usize = 32;

/// Schedule events per page of the event stream — also the checkpoint
/// interval: one cumulative-hash checkpoint is recorded per sealed page.
pub const PAGE_EVENTS: usize = 512;

/// Stream identifiers, as stored in the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum StreamId {
    /// Run identity and recorded digests ([`crate::TraceMeta`]).
    Meta = 0,
    /// The paged schedule-event stream.
    Events = 1,
    /// Per-page cumulative schedule-hash checkpoints.
    Checkpoints = 2,
    /// Fault-injection plan seed and digest active during the recording.
    Perturb = 3,
}

/// Every error the container reader or writer can produce.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a trace container.
    BadMagic,
    /// The container or codec version is not one this build reads.
    BadVersion {
        /// What carried the unexpected version.
        what: &'static str,
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The file ends before a structure it promises is complete — e.g.
    /// a recording that crashed before [`crate::TraceWriter::finish`].
    Truncated {
        /// The structure that was cut short.
        what: &'static str,
    },
    /// A stored FNV-1a digest does not match the bytes it covers.
    ChecksumMismatch {
        /// The structure whose digest failed.
        what: &'static str,
        /// Digest stored in the file.
        stored: u64,
        /// Digest recomputed from the bytes.
        computed: u64,
    },
    /// A structurally invalid value (impossible offset, unknown event
    /// tag, inconsistent counts) that checksums alone cannot explain.
    Corrupt {
        /// What was structurally invalid.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a dmtrace container (bad magic)"),
            TraceError::BadVersion {
                what,
                found,
                expected,
            } => write!(
                f,
                "unsupported {what} version {found} (this build reads {expected})"
            ),
            TraceError::Truncated { what } => {
                write!(f, "trace truncated inside {what} (unfinished recording?)")
            }
            TraceError::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::Corrupt { what } => write!(f, "trace corrupt: invalid {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// One entry of the end-of-file stream directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Stream identifier (a [`StreamId`] value; unknown ids are skipped
    /// by readers, which is the forward-compatibility rule).
    pub id: u32,
    /// Byte offset of the stream from the start of the file.
    pub offset: u64,
    /// Stream length in bytes.
    pub len: u64,
    /// FNV-1a digest of the stream's bytes.
    pub fnv: u64,
}

impl DirEntry {
    /// Serializes this entry into its fixed 32-byte form.
    pub fn to_bytes(self) -> [u8; DIR_ENTRY_LEN] {
        let mut b = [0u8; DIR_ENTRY_LEN];
        b[0..4].copy_from_slice(&self.id.to_le_bytes());
        // bytes 4..8 reserved (zero)
        b[8..16].copy_from_slice(&self.offset.to_le_bytes());
        b[16..24].copy_from_slice(&self.len.to_le_bytes());
        b[24..32].copy_from_slice(&self.fnv.to_le_bytes());
        b
    }

    /// Parses one fixed 32-byte directory entry.
    pub fn from_bytes(b: &[u8; DIR_ENTRY_LEN]) -> DirEntry {
        DirEntry {
            id: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            offset: u64::from_le_bytes(b[8..16].try_into().unwrap_or([0; 8])),
            len: u64::from_le_bytes(b[16..24].try_into().unwrap_or([0; 8])),
            fnv: u64::from_le_bytes(b[24..32].try_into().unwrap_or([0; 8])),
        }
    }
}

/// FNV-1a over a byte slice (the digest every stream and the directory
/// itself are protected with).
pub fn fnv_of(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.digest()
}

/// Byte offset, within the header, of the write-ahead identity record's
/// length field (`u32`), followed at [`IDENT_FNV_OFFSET`] by its FNV-1a
/// digest (`u64`). Both are zero in containers written before durable
/// recording existed (the fields live in the formerly-reserved header
/// tail, so such files keep parsing identically).
pub const IDENT_LEN_OFFSET: usize = 48;

/// Byte offset of the write-ahead identity record's FNV-1a digest.
pub const IDENT_FNV_OFFSET: usize = 52;

/// Assembles the fixed 64-byte header.
///
/// `dir_offset`/`dir_len`/`dir_fnv` are zero while the recording is in
/// progress and patched in by [`crate::TraceWriter::finish`].
/// `ident_len`/`ident_fnv` describe the write-ahead identity record
/// (a provisional META image written immediately after the header at
/// recording start, so crashed runs can be salvaged); both are zero for
/// writers that do not emit one.
pub fn header_bytes(
    dir_offset: u64,
    dir_len: u64,
    dir_fnv: u64,
    streams: u32,
    ident_len: u32,
    ident_fnv: u64,
) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&CONTAINER_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(HEADER_LEN as u32).to_le_bytes());
    h[16..24].copy_from_slice(&dir_offset.to_le_bytes());
    h[24..32].copy_from_slice(&dir_len.to_le_bytes());
    h[32..40].copy_from_slice(&dir_fnv.to_le_bytes());
    h[40..44].copy_from_slice(&CODEC_VERSION.to_le_bytes());
    h[44..48].copy_from_slice(&streams.to_le_bytes());
    h[IDENT_LEN_OFFSET..IDENT_FNV_OFFSET].copy_from_slice(&ident_len.to_le_bytes());
    h[IDENT_FNV_OFFSET..IDENT_FNV_OFFSET + 8].copy_from_slice(&ident_fnv.to_le_bytes());
    // bytes 60..64 reserved (zero)
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_entry_roundtrips() {
        let e = DirEntry {
            id: 2,
            offset: 0xDEAD_BEEF,
            len: 4096,
            fnv: 0x0123_4567_89AB_CDEF,
        };
        assert_eq!(DirEntry::from_bytes(&e.to_bytes()), e);
    }

    #[test]
    fn header_carries_magic_and_versions() {
        let h = header_bytes(100, 64, 7, 4, 0, 0);
        assert_eq!(&h[0..8], &MAGIC);
        assert_eq!(u32::from_le_bytes([h[8], h[9], h[10], h[11]]), 1);
        assert_eq!(
            u64::from_le_bytes(h[16..24].try_into().unwrap()),
            100,
            "directory offset"
        );
    }

    #[test]
    fn header_carries_identity_fields_in_the_reserved_tail() {
        let h = header_bytes(100, 64, 7, 4, 33, 0xFEED_F00D);
        assert_eq!(
            u32::from_le_bytes(h[IDENT_LEN_OFFSET..IDENT_FNV_OFFSET].try_into().unwrap()),
            33
        );
        assert_eq!(
            u64::from_le_bytes(
                h[IDENT_FNV_OFFSET..IDENT_FNV_OFFSET + 8]
                    .try_into()
                    .unwrap()
            ),
            0xFEED_F00D
        );
        // Without an identity record the tail is all zero — byte-identical
        // to headers written before durable recording existed.
        let legacy = header_bytes(100, 64, 7, 4, 0, 0);
        assert!(legacy[IDENT_LEN_OFFSET..].iter().all(|&b| b == 0));
    }
}
