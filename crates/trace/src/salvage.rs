//! Salvage: recover the valid prefix of an unfinished or torn container.
//!
//! [`Trace::open`] demands a *finished* container — directory present,
//! every digest valid end to end. A recording that panicked, deadlocked,
//! was SIGKILLed or hit an I/O fault never reached
//! [`crate::TraceWriter::finish`], so its header still carries directory
//! offset 0 and `open` rejects it as truncated. But the event stream is
//! self-describing: every page carries its own count, length and FNV-1a
//! digest, and the codec's delta state resets at page boundaries, so each
//! complete page decodes independently of the torn tail.
//! [`Trace::salvage`] exploits that: it scans forward through
//! digest-valid pages, stops at the first tear, and reconstructs a
//! fully-consistent [`Trace`] for the recovered prefix — identity coming
//! from the write-ahead identity record that durable recordings
//! ([`crate::TraceWriter::create_with_identity`]) emit at start of file.
//!
//! The recovered prefix is exactly as trustworthy as a finished
//! container's: nothing past a failed digest is ever accepted, and a
//! page that decodes to the wrong event count or leaves trailing bytes
//! is treated as torn, not patched up.

use std::path::Path;

use dmt_api::trace::Event;
use dmt_api::{DomainId, Fnv1a};

use crate::codec::{decode_in_domain, CodecState};
use crate::format::{
    fnv_of, TraceError, CODEC_VERSION, CONTAINER_VERSION, HEADER_LEN, IDENT_FNV_OFFSET,
    IDENT_LEN_OFFSET, MAGIC, PAGE_EVENTS,
};
use crate::meta::TraceMeta;
use crate::reader::{read_u32, read_u64, Checkpoint, Trace};

/// What salvage recovered and what it had to give up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossReport {
    /// Complete, digest-valid event pages recovered.
    pub pages_recovered: u64,
    /// Schedule events in the recovered prefix.
    pub events_recovered: u64,
    /// Byte offset of the tear: the first file offset past the last
    /// valid page (equals the file length when nothing was torn).
    pub tear_offset: u64,
    /// File bytes past the tear that could not be validated. At most
    /// `16 + page bytes` of schedule data — the unsealed tail page —
    /// plus whatever the durable-flush cadence had not yet flushed.
    pub bytes_lost: u64,
    /// True when the container was actually finished and fully valid —
    /// salvage recovered everything and the trace equals what
    /// [`Trace::open`] would return.
    pub complete: bool,
}

/// The salvaged prefix of a crashed recording: an internally consistent
/// [`Trace`] (its meta's event count, schedule hash and checkpoints all
/// describe the *recovered prefix*) plus the [`LossReport`] saying how
/// much of the original run it covers.
///
/// The contained trace replays like any finished one; replaying past its
/// end is *exhaustion*, not divergence (see
/// `consequence::new_replaying_partial`).
#[derive(Clone, Debug)]
pub struct PartialTrace {
    /// The recovered, fully validated prefix.
    pub trace: Trace,
    /// How much was recovered and where the tear sits.
    pub loss: LossReport,
}

impl Trace {
    /// Salvages whatever valid prefix `path` holds. See
    /// [`PartialTrace::from_bytes`] for the exact rules.
    pub fn salvage<P: AsRef<Path>>(path: P) -> Result<PartialTrace, TraceError> {
        PartialTrace::from_bytes(&std::fs::read(path)?)
    }
}

impl PartialTrace {
    /// Salvages a container image already in memory.
    ///
    /// Rules, in order:
    ///
    /// 1. The fixed header must be present and carry the right magic and
    ///    versions — otherwise this is not (recoverably) a trace at all.
    /// 2. If the directory offset is non-zero the file claims to be
    ///    finished: try the full [`Trace::from_bytes`] validation. If it
    ///    passes, the result is a zero-loss `PartialTrace`
    ///    (`loss.complete == true`). If it fails, fall through — a
    ///    finished-looking file with a torn body is salvaged like a
    ///    crashed one.
    /// 3. The write-ahead identity record (header bytes 48..60) must be
    ///    present and digest-valid; without it there is no trustworthy
    ///    run identity to attach the events to, and recordings made
    ///    before durable recording existed are rejected with a typed
    ///    error rather than guessed at.
    /// 4. Event pages are scanned forward from the end of the identity
    ///    record. A page is accepted only if its 16-byte header is
    ///    complete, its event count is in `1..=PAGE_EVENTS`, its payload
    ///    is fully present with a matching FNV-1a digest, and exactly
    ///    `count` events decode consuming exactly the payload. The first
    ///    page failing any of these is the tear; everything before it is
    ///    the recovered prefix, everything from it on is reported lost.
    ///
    /// Zero recovered events is still success (an empty but identified
    /// prefix); the caller decides whether that is useful.
    pub fn from_bytes(bytes: &[u8]) -> Result<PartialTrace, TraceError> {
        if bytes.len() < HEADER_LEN {
            return Err(TraceError::Truncated { what: "header" });
        }
        if bytes[0..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let container_v = read_u32(bytes, 8);
        if container_v != CONTAINER_VERSION {
            return Err(TraceError::BadVersion {
                what: "container",
                found: container_v,
                expected: CONTAINER_VERSION,
            });
        }
        let codec_v = read_u32(bytes, 40);
        if codec_v != CODEC_VERSION {
            return Err(TraceError::BadVersion {
                what: "event codec",
                found: codec_v,
                expected: CODEC_VERSION,
            });
        }

        if read_u64(bytes, 16) != 0 {
            if let Ok(trace) = Trace::from_bytes(bytes) {
                let loss = LossReport {
                    pages_recovered: trace.checkpoints.len() as u64,
                    events_recovered: trace.events.len() as u64,
                    tear_offset: bytes.len() as u64,
                    bytes_lost: 0,
                    complete: true,
                };
                return Ok(PartialTrace { trace, loss });
            }
            // Finished-looking but torn: salvage the events prefix below.
        }

        let ident_len = read_u32(bytes, IDENT_LEN_OFFSET) as usize;
        let ident_fnv = read_u64(bytes, IDENT_FNV_OFFSET);
        if ident_len == 0 {
            return Err(TraceError::Corrupt {
                what: "unfinished container without a write-ahead identity record",
            });
        }
        let events_start = HEADER_LEN
            .checked_add(ident_len)
            .ok_or(TraceError::Corrupt {
                what: "identity record length",
            })?;
        if events_start > bytes.len() {
            return Err(TraceError::Truncated {
                what: "identity record",
            });
        }
        let ident = &bytes[HEADER_LEN..events_start];
        let computed = fnv_of(ident);
        if computed != ident_fnv {
            return Err(TraceError::ChecksumMismatch {
                what: "identity record",
                stored: ident_fnv,
                computed,
            });
        }
        let meta = TraceMeta::from_bytes(ident)?;

        // Forward scan over self-describing pages; first invalid page is
        // the tear. Each page decodes into scratch vectors and commits
        // atomically, so a page that is digest-valid but structurally
        // broken contributes nothing.
        let mut events: Vec<Event> = Vec::new();
        let mut domains: Vec<DomainId> = Vec::new();
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut hash = Fnv1a::new();
        let mut pos = events_start;
        while let Some(page) = try_page(bytes, pos) {
            let mut st = CodecState::default();
            let mut p = 0usize;
            let mut page_events = Vec::with_capacity(page.count);
            let mut page_domains = Vec::with_capacity(page.count);
            let mut page_hash = hash;
            let mut ok = true;
            for _ in 0..page.count {
                match decode_in_domain(page.payload, &mut p, &mut st) {
                    Ok((domain, ev)) => {
                        ev.fold_domain(domain, &mut page_hash);
                        page_events.push(ev);
                        page_domains.push(domain);
                    }
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok || p != page.payload.len() {
                break;
            }
            events.append(&mut page_events);
            domains.append(&mut page_domains);
            hash = page_hash;
            checkpoints.push(Checkpoint {
                events: events.len() as u64,
                hash: hash.digest(),
            });
            pos = page.end;
        }

        let meta = TraceMeta {
            event_count: events.len() as u64,
            schedule_hash: hash.digest(),
            checkpoint_interval: PAGE_EVENTS as u64,
            ..meta
        };
        let loss = LossReport {
            pages_recovered: checkpoints.len() as u64,
            events_recovered: events.len() as u64,
            tear_offset: pos as u64,
            bytes_lost: (bytes.len() - pos) as u64,
            complete: false,
        };
        Ok(PartialTrace {
            trace: Trace {
                meta,
                events,
                domains,
                checkpoints,
            },
            loss,
        })
    }
}

struct RawPage<'a> {
    count: usize,
    payload: &'a [u8],
    /// File offset one past this page.
    end: usize,
}

/// Reads the page at `pos` if its framing and digest are valid; `None`
/// marks the tear.
fn try_page(bytes: &[u8], pos: usize) -> Option<RawPage<'_>> {
    let rest = bytes.len().checked_sub(pos)?;
    if rest < 16 {
        return None;
    }
    let count = read_u32(bytes, pos) as usize;
    let len = read_u32(bytes, pos + 4) as usize;
    let stored_fnv = read_u64(bytes, pos + 8);
    if count == 0 || count > PAGE_EVENTS || len == 0 {
        return None;
    }
    let start = pos.checked_add(16)?;
    let end = start.checked_add(len)?;
    if end > bytes.len() {
        return None;
    }
    let payload = &bytes[start..end];
    if fnv_of(payload) != stored_fnv {
        return None;
    }
    Some(RawPage {
        count,
        payload,
        end,
    })
}
