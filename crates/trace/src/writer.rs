//! Streaming container writer and the [`DiskSink`] trace sink.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use dmt_api::sync::Mutex;
use dmt_api::trace::{Event, EventCounts, TraceSink};
use dmt_api::{DomainId, Fnv1a};

use crate::codec::{encode_in_domain, CodecState};
use crate::format::{
    fnv_of, header_bytes, DirEntry, StreamId, TraceError, HEADER_LEN, PAGE_EVENTS,
};
use crate::meta::TraceMeta;

/// The storage a [`TraceWriter`] streams into. [`File`] is the normal
/// medium; the stress harness substitutes seeded fallible media (short
/// writes, ENOSPC, torn tails) to drill the salvage path.
///
/// `sync_data` is called once at [`TraceWriter::finish`]; media without a
/// durability notion keep the no-op default.
pub trait TraceMedia: Write + Seek + Send {
    /// Flushes written bytes to durable storage (no-op by default).
    fn sync_data(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl TraceMedia for File {
    fn sync_data(&mut self) -> io::Result<()> {
        self.sync_all()
    }
}

/// Streams schedule events into a `.dmtrace` container.
///
/// Events are buffered into pages of [`PAGE_EVENTS`]; each sealed page
/// carries its own event count, byte length and FNV-1a digest, and adds
/// one cumulative-schedule-hash checkpoint. Call
/// [`finish`](TraceWriter::finish) to append the META, CHECKPOINTS and
/// PERTURB streams plus the directory and patch the header — a file that
/// was never finished is rejected by [`crate::Trace::open`] as truncated,
/// but remains recoverable by [`crate::Trace::salvage`] when it was
/// created with a write-ahead identity record
/// ([`create_with_identity`](TraceWriter::create_with_identity)).
///
/// # Examples
///
/// ```no_run
/// use dmt_trace::{TraceMeta, TraceWriter};
/// use dmt_api::{trace::Event, Tid};
///
/// let mut w = TraceWriter::create("run.dmtrace")?;
/// w.push(&Event::TokenAcquire { tid: Tid(0), clock: 100 })?;
/// # let meta: TraceMeta = todo!();
/// w.finish(meta)?; // meta from the finished run's report
/// # Ok::<(), dmt_trace::TraceError>(())
/// ```
pub struct TraceWriter {
    file: BufWriter<Box<dyn TraceMedia>>,
    /// Bytes written past the events-stream start (== its length so far).
    written: u64,
    /// File offset the events stream starts at (`HEADER_LEN` plus the
    /// write-ahead identity record, when one was emitted).
    events_start: u64,
    ident_len: u32,
    ident_fnv: u64,
    page_buf: Vec<u8>,
    page_events: u32,
    codec: CodecState,
    events_total: u64,
    hash: Fnv1a,
    events_fnv: Fnv1a,
    checkpoints: Vec<(u64, u64)>,
    /// Durable-flush cadence: flush the OS-visible file after every this
    /// many sealed pages (0 = only at finish). Bounds how much schedule a
    /// SIGKILL can cost the salvage path.
    flush_every_pages: u32,
    pages_since_flush: u32,
    durable_flushes: u64,
}

impl TraceWriter {
    /// Creates `path` (truncating any existing file) and writes the
    /// provisional header. No identity record, no durable-flush cadence:
    /// the resulting container is salvageable only once finished.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<TraceWriter, TraceError> {
        TraceWriter::create_on(Box::new(File::create(path)?), None, 0)
    }

    /// Creates `path` with a **write-ahead identity record**: `ident`
    /// (digests need not be known yet — zeros are fine) is serialized
    /// immediately after the header, and its length/digest are stamped
    /// into the header's identity fields, so a recording that never
    /// reaches [`finish`](TraceWriter::finish) can still be salvaged
    /// ([`crate::Trace::salvage`]). `flush_every_pages` sets the
    /// durable-flush cadence (0 = only at finish).
    pub fn create_with_identity<P: AsRef<Path>>(
        path: P,
        ident: &TraceMeta,
        flush_every_pages: u32,
    ) -> Result<TraceWriter, TraceError> {
        TraceWriter::create_on(
            Box::new(File::create(path)?),
            Some(ident),
            flush_every_pages,
        )
    }

    /// Like [`create_with_identity`](TraceWriter::create_with_identity),
    /// but onto caller-supplied [`TraceMedia`] — the hook the stress
    /// harness uses to inject I/O faults under the writer.
    pub fn create_on(
        media: Box<dyn TraceMedia>,
        ident: Option<&TraceMeta>,
        flush_every_pages: u32,
    ) -> Result<TraceWriter, TraceError> {
        let ident_bytes = ident.map(|m| m.to_bytes());
        let (ident_len, ident_fnv) = match &ident_bytes {
            Some(b) => (b.len() as u32, fnv_of(b)),
            None => (0, 0),
        };
        let mut file = BufWriter::new(media);
        file.write_all(&header_bytes(0, 0, 0, 0, ident_len, ident_fnv))?;
        if let Some(b) = &ident_bytes {
            file.write_all(b)?;
        }
        // The header + identity record are the salvage anchor: make them
        // OS-visible immediately so even an instant kill leaves a
        // well-formed (zero-event) salvageable container.
        if ident_bytes.is_some() {
            file.flush()?;
        }
        Ok(TraceWriter {
            file,
            written: 0,
            events_start: HEADER_LEN as u64 + ident_len as u64,
            ident_len,
            ident_fnv,
            page_buf: Vec::with_capacity(PAGE_EVENTS * 8),
            page_events: 0,
            codec: CodecState::default(),
            events_total: 0,
            hash: Fnv1a::new(),
            events_fnv: Fnv1a::new(),
            checkpoints: Vec::new(),
            flush_every_pages,
            pages_since_flush: 0,
            durable_flushes: 0,
        })
    }

    /// Appends one root-domain schedule event, sealing a page when full.
    pub fn push(&mut self, ev: &Event) -> Result<(), TraceError> {
        self.push_in_domain(ev, DomainId::ROOT)
    }

    /// Appends one schedule event stamped with its token domain. Root
    /// domain events encode exactly as [`push`](TraceWriter::push); other
    /// domains cost a domain-switch marker whenever consecutive events
    /// change domain, and fold the domain into the schedule hash.
    pub fn push_in_domain(&mut self, ev: &Event, domain: DomainId) -> Result<(), TraceError> {
        encode_in_domain(ev, domain, &mut self.codec, &mut self.page_buf);
        ev.fold_domain(domain, &mut self.hash);
        self.page_events += 1;
        self.events_total += 1;
        if self.page_events as usize >= PAGE_EVENTS {
            self.seal_page()?;
        }
        Ok(())
    }

    /// Schedule events pushed so far.
    pub fn events(&self) -> u64 {
        self.events_total
    }

    /// Cumulative schedule hash of the events pushed so far.
    pub fn schedule_hash(&self) -> u64 {
        self.hash.digest()
    }

    /// Durable flushes performed so far (cadence flushes plus explicit
    /// [`checkpoint_now`](TraceWriter::checkpoint_now) calls).
    pub fn durable_flushes(&self) -> u64 {
        self.durable_flushes
    }

    /// Seals the current partial page (if any) and flushes everything to
    /// the OS — a durability checkpoint. After this call the whole
    /// schedule so far is recoverable by [`crate::Trace::salvage`] even
    /// if the process is killed before [`finish`](TraceWriter::finish).
    pub fn checkpoint_now(&mut self) -> Result<(), TraceError> {
        self.seal_page()?;
        self.file.flush()?;
        self.durable_flushes += 1;
        self.pages_since_flush = 0;
        Ok(())
    }

    fn write_stream_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.events_fnv.update(bytes);
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn seal_page(&mut self) -> io::Result<()> {
        if self.page_events == 0 {
            return Ok(());
        }
        let header_count = self.page_events.to_le_bytes();
        let header_len = (self.page_buf.len() as u32).to_le_bytes();
        let header_fnv = fnv_of(&self.page_buf).to_le_bytes();
        self.write_stream_bytes(&header_count)?;
        self.write_stream_bytes(&header_len)?;
        self.write_stream_bytes(&header_fnv)?;
        let payload = std::mem::take(&mut self.page_buf);
        self.write_stream_bytes(&payload)?;
        self.page_buf = payload;
        self.page_buf.clear();
        self.page_events = 0;
        // Delta state resets per page so each page decodes independently
        // — a truncated tail never poisons earlier pages.
        self.codec = CodecState::default();
        self.checkpoints
            .push((self.events_total, self.hash.digest()));
        if self.flush_every_pages > 0 {
            self.pages_since_flush += 1;
            if self.pages_since_flush >= self.flush_every_pages {
                self.file.flush()?;
                self.durable_flushes += 1;
                self.pages_since_flush = 0;
            }
        }
        Ok(())
    }

    /// Seals the final page, writes the remaining streams and directory,
    /// and patches the header. Consumes the writer; the returned
    /// [`TraceMeta`] is `meta` with the event count, schedule hash and
    /// checkpoint interval the writer actually observed stamped in.
    pub fn finish(mut self, meta: TraceMeta) -> Result<TraceMeta, TraceError> {
        self.seal_page()?;
        let meta = TraceMeta {
            event_count: self.events_total,
            schedule_hash: self.hash.digest(),
            checkpoint_interval: PAGE_EVENTS as u64,
            ..meta
        };

        let events_entry = DirEntry {
            id: StreamId::Events as u32,
            offset: self.events_start,
            len: self.written,
            fnv: self.events_fnv.digest(),
        };

        let meta_bytes = meta.to_bytes();
        let mut ckpt_bytes = Vec::with_capacity(8 + self.checkpoints.len() * 16);
        ckpt_bytes.extend_from_slice(&(self.checkpoints.len() as u64).to_le_bytes());
        for (events, digest) in &self.checkpoints {
            ckpt_bytes.extend_from_slice(&events.to_le_bytes());
            ckpt_bytes.extend_from_slice(&digest.to_le_bytes());
        }
        let mut perturb_bytes = Vec::with_capacity(16);
        perturb_bytes.extend_from_slice(&meta.perturb_seed.to_le_bytes());
        perturb_bytes.extend_from_slice(&meta.perturb_plan.to_le_bytes());

        let mut offset = self.events_start + self.written;
        let mut entries = vec![events_entry];
        for (id, bytes) in [
            (StreamId::Meta, &meta_bytes),
            (StreamId::Checkpoints, &ckpt_bytes),
            (StreamId::Perturb, &perturb_bytes),
        ] {
            self.file.write_all(bytes)?;
            entries.push(DirEntry {
                id: id as u32,
                offset,
                len: bytes.len() as u64,
                fnv: fnv_of(bytes),
            });
            offset += bytes.len() as u64;
        }

        let dir_offset = offset;
        let mut dir_bytes = Vec::with_capacity(4 * crate::format::DIR_ENTRY_LEN);
        for e in entries {
            dir_bytes.extend_from_slice(&e.to_bytes());
        }
        self.file.write_all(&dir_bytes)?;

        let header = header_bytes(
            dir_offset,
            dir_bytes.len() as u64,
            fnv_of(&dir_bytes),
            4,
            self.ident_len,
            self.ident_fnv,
        );
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| TraceError::Io(io::Error::other(e.to_string())))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(meta)
    }
}

struct DiskState {
    writer: Option<TraceWriter>,
    counts: EventCounts,
    final_hash: u64,
    io_error: Option<TraceError>,
    /// Human-readable fault description recorded the moment a mid-run
    /// write error degraded the recording (events captured until then).
    fault: Option<String>,
    durable_flushes: u64,
}

/// A [`TraceSink`] that streams schedule events straight to disk.
///
/// Attach via `TraceHandle::to` like any other sink; after the run, call
/// [`finish`](DiskSink::finish) with the run's [`TraceMeta`] to complete
/// the container. An I/O error mid-run stops writing (the run itself is
/// unaffected), is surfaced immediately through [`TraceSink::fault`] —
/// which the runtime stamps into `RunReport::fault` as a degraded
/// recording — and again by `finish`.
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use dmt_api::TraceHandle;
/// use dmt_trace::DiskSink;
///
/// let sink = Arc::new(DiskSink::create("run.dmtrace")?);
/// let trace = TraceHandle::to(Arc::clone(&sink) as _);
/// // ... build a runtime with `trace` in its CommonConfig and run ...
/// # let meta = todo!();
/// let meta = sink.finish(meta)?;
/// # Ok::<(), dmt_trace::TraceError>(())
/// ```
pub struct DiskSink {
    st: Mutex<DiskState>,
}

impl DiskSink {
    /// Creates the container file and a sink streaming into it (no
    /// identity record — the pre-durability layout).
    pub fn create<P: AsRef<Path>>(path: P) -> Result<DiskSink, TraceError> {
        Ok(DiskSink::on_writer(TraceWriter::create(path)?))
    }

    /// Creates a **crash-durable** sink: writes the write-ahead identity
    /// record `ident` at the start of the container and flushes after
    /// every `flush_every_pages` sealed pages, so a killed recording
    /// loses at most that many pages plus the unsealed tail (see
    /// [`crate::Trace::salvage`]).
    pub fn create_durable<P: AsRef<Path>>(
        path: P,
        ident: &TraceMeta,
        flush_every_pages: u32,
    ) -> Result<DiskSink, TraceError> {
        Ok(DiskSink::on_writer(TraceWriter::create_with_identity(
            path,
            ident,
            flush_every_pages,
        )?))
    }

    /// A sink over caller-supplied [`TraceMedia`] (the stress harness's
    /// fault-injection hook).
    pub fn create_on(
        media: Box<dyn TraceMedia>,
        ident: Option<&TraceMeta>,
        flush_every_pages: u32,
    ) -> Result<DiskSink, TraceError> {
        Ok(DiskSink::on_writer(TraceWriter::create_on(
            media,
            ident,
            flush_every_pages,
        )?))
    }

    fn on_writer(writer: TraceWriter) -> DiskSink {
        DiskSink {
            st: Mutex::new(DiskState {
                writer: Some(writer),
                counts: EventCounts::default(),
                final_hash: 0,
                io_error: None,
                fault: None,
                durable_flushes: 0,
            }),
        }
    }

    /// Seals and flushes the current page — a durability checkpoint
    /// making everything recorded so far salvageable. No-op after a
    /// write fault or `finish`.
    pub fn seal_and_flush(&self) -> Result<(), TraceError> {
        let mut st = self.st.lock();
        if let Some(w) = st.writer.as_mut() {
            let r = w.checkpoint_now();
            let flushes = w.durable_flushes();
            st.durable_flushes = flushes;
            r?;
        }
        Ok(())
    }

    /// Completes the container: seals the last page, writes META (from
    /// `meta`, with the observed event count and schedule hash stamped
    /// in), CHECKPOINTS, PERTURB and the directory. Returns the final
    /// meta, or the first error the recording hit.
    pub fn finish(&self, meta: TraceMeta) -> Result<TraceMeta, TraceError> {
        let mut st = self.st.lock();
        if let Some(e) = st.io_error.take() {
            return Err(e);
        }
        let writer = st.writer.take().ok_or(TraceError::Corrupt {
            what: "sink finished twice",
        })?;
        st.final_hash = writer.schedule_hash();
        st.durable_flushes = writer.durable_flushes();
        writer.finish(meta)
    }
}

impl TraceSink for DiskSink {
    fn emit(&self, ev: &Event, in_schedule: bool, domain: DomainId) {
        let mut st = self.st.lock();
        st.counts.record(ev.kind());
        if !in_schedule {
            return;
        }
        let mut failed = None;
        if let Some(w) = st.writer.as_mut() {
            if let Err(e) = w.push_in_domain(ev, domain) {
                failed = Some((e, w.events(), w.schedule_hash(), w.durable_flushes()));
            }
        }
        if let Some((e, events, hash, flushes)) = failed {
            // Stop recording but let the run itself continue. The fault
            // is visible immediately (RunReport::fault marks the run's
            // recording as degraded) and the error object itself
            // resurfaces at finish().
            st.fault = Some(format!(
                "degraded recording: trace write failed at event #{events}: {e}"
            ));
            st.final_hash = hash;
            st.durable_flushes = flushes;
            st.io_error = Some(e);
            st.writer = None;
        }
    }

    fn schedule_hash(&self) -> u64 {
        let st = self.st.lock();
        st.writer
            .as_ref()
            .map_or(st.final_hash, |w| w.schedule_hash())
    }

    fn counts(&self) -> EventCounts {
        self.st.lock().counts
    }

    fn fault(&self) -> Option<String> {
        self.st.lock().fault.clone()
    }

    fn durable_flushes(&self) -> u64 {
        let st = self.st.lock();
        st.writer
            .as_ref()
            .map_or(st.durable_flushes, |w| w.durable_flushes())
    }
}
