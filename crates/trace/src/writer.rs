//! Streaming container writer and the [`DiskSink`] trace sink.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use dmt_api::sync::Mutex;
use dmt_api::trace::{Event, EventCounts, TraceSink};
use dmt_api::{DomainId, Fnv1a};

use crate::codec::{encode_in_domain, CodecState};
use crate::format::{fnv_of, header_bytes, DirEntry, StreamId, TraceError, PAGE_EVENTS};
use crate::meta::TraceMeta;

/// Streams schedule events into a `.dmtrace` container.
///
/// Events are buffered into pages of [`PAGE_EVENTS`]; each sealed page
/// carries its own event count, byte length and FNV-1a digest, and adds
/// one cumulative-schedule-hash checkpoint. Call
/// [`finish`](TraceWriter::finish) to append the META, CHECKPOINTS and
/// PERTURB streams plus the directory and patch the header — a file that
/// was never finished is rejected by the reader as truncated.
///
/// # Examples
///
/// ```no_run
/// use dmt_trace::{TraceMeta, TraceWriter};
/// use dmt_api::{trace::Event, Tid};
///
/// let mut w = TraceWriter::create("run.dmtrace")?;
/// w.push(&Event::TokenAcquire { tid: Tid(0), clock: 100 })?;
/// # let meta: TraceMeta = todo!();
/// w.finish(meta)?; // meta from the finished run's report
/// # Ok::<(), dmt_trace::TraceError>(())
/// ```
pub struct TraceWriter {
    file: BufWriter<File>,
    /// Bytes written past the header (== current events-stream length).
    written: u64,
    page_buf: Vec<u8>,
    page_events: u32,
    codec: CodecState,
    events_total: u64,
    hash: Fnv1a,
    events_fnv: Fnv1a,
    checkpoints: Vec<(u64, u64)>,
}

impl TraceWriter {
    /// Creates `path` (truncating any existing file) and writes the
    /// provisional header.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<TraceWriter, TraceError> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&header_bytes(0, 0, 0, 0))?;
        Ok(TraceWriter {
            file,
            written: 0,
            page_buf: Vec::with_capacity(PAGE_EVENTS * 8),
            page_events: 0,
            codec: CodecState::default(),
            events_total: 0,
            hash: Fnv1a::new(),
            events_fnv: Fnv1a::new(),
            checkpoints: Vec::new(),
        })
    }

    /// Appends one root-domain schedule event, sealing a page when full.
    pub fn push(&mut self, ev: &Event) -> Result<(), TraceError> {
        self.push_in_domain(ev, DomainId::ROOT)
    }

    /// Appends one schedule event stamped with its token domain. Root
    /// domain events encode exactly as [`push`](TraceWriter::push); other
    /// domains cost a domain-switch marker whenever consecutive events
    /// change domain, and fold the domain into the schedule hash.
    pub fn push_in_domain(&mut self, ev: &Event, domain: DomainId) -> Result<(), TraceError> {
        encode_in_domain(ev, domain, &mut self.codec, &mut self.page_buf);
        ev.fold_domain(domain, &mut self.hash);
        self.page_events += 1;
        self.events_total += 1;
        if self.page_events as usize >= PAGE_EVENTS {
            self.seal_page()?;
        }
        Ok(())
    }

    /// Schedule events pushed so far.
    pub fn events(&self) -> u64 {
        self.events_total
    }

    /// Cumulative schedule hash of the events pushed so far.
    pub fn schedule_hash(&self) -> u64 {
        self.hash.digest()
    }

    fn write_stream_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.events_fnv.update(bytes);
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn seal_page(&mut self) -> io::Result<()> {
        if self.page_events == 0 {
            return Ok(());
        }
        let header_count = self.page_events.to_le_bytes();
        let header_len = (self.page_buf.len() as u32).to_le_bytes();
        let header_fnv = fnv_of(&self.page_buf).to_le_bytes();
        self.write_stream_bytes(&header_count)?;
        self.write_stream_bytes(&header_len)?;
        self.write_stream_bytes(&header_fnv)?;
        let payload = std::mem::take(&mut self.page_buf);
        self.write_stream_bytes(&payload)?;
        self.page_buf = payload;
        self.page_buf.clear();
        self.page_events = 0;
        // Delta state resets per page so each page decodes independently
        // — a truncated tail never poisons earlier pages.
        self.codec = CodecState::default();
        self.checkpoints
            .push((self.events_total, self.hash.digest()));
        Ok(())
    }

    /// Seals the final page, writes the remaining streams and directory,
    /// and patches the header. Consumes the writer; the returned
    /// [`TraceMeta`] is `meta` with the event count, schedule hash and
    /// checkpoint interval the writer actually observed stamped in.
    pub fn finish(mut self, meta: TraceMeta) -> Result<TraceMeta, TraceError> {
        self.seal_page()?;
        let meta = TraceMeta {
            event_count: self.events_total,
            schedule_hash: self.hash.digest(),
            checkpoint_interval: PAGE_EVENTS as u64,
            ..meta
        };

        let header_len = crate::format::HEADER_LEN as u64;
        let events_entry = DirEntry {
            id: StreamId::Events as u32,
            offset: header_len,
            len: self.written,
            fnv: self.events_fnv.digest(),
        };

        let meta_bytes = meta.to_bytes();
        let mut ckpt_bytes = Vec::with_capacity(8 + self.checkpoints.len() * 16);
        ckpt_bytes.extend_from_slice(&(self.checkpoints.len() as u64).to_le_bytes());
        for (events, digest) in &self.checkpoints {
            ckpt_bytes.extend_from_slice(&events.to_le_bytes());
            ckpt_bytes.extend_from_slice(&digest.to_le_bytes());
        }
        let mut perturb_bytes = Vec::with_capacity(16);
        perturb_bytes.extend_from_slice(&meta.perturb_seed.to_le_bytes());
        perturb_bytes.extend_from_slice(&meta.perturb_plan.to_le_bytes());

        let mut offset = header_len + self.written;
        let mut entries = vec![events_entry];
        for (id, bytes) in [
            (StreamId::Meta, &meta_bytes),
            (StreamId::Checkpoints, &ckpt_bytes),
            (StreamId::Perturb, &perturb_bytes),
        ] {
            self.file.write_all(bytes)?;
            entries.push(DirEntry {
                id: id as u32,
                offset,
                len: bytes.len() as u64,
                fnv: fnv_of(bytes),
            });
            offset += bytes.len() as u64;
        }

        let dir_offset = offset;
        let mut dir_bytes = Vec::with_capacity(4 * crate::format::DIR_ENTRY_LEN);
        for e in entries {
            dir_bytes.extend_from_slice(&e.to_bytes());
        }
        self.file.write_all(&dir_bytes)?;

        let header = header_bytes(dir_offset, dir_bytes.len() as u64, fnv_of(&dir_bytes), 4);
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| TraceError::Io(io::Error::other(e.to_string())))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(meta)
    }
}

struct DiskState {
    writer: Option<TraceWriter>,
    counts: EventCounts,
    final_hash: u64,
    io_error: Option<TraceError>,
}

/// A [`TraceSink`] that streams schedule events straight to disk.
///
/// Attach via `TraceHandle::to` like any other sink; after the run, call
/// [`finish`](DiskSink::finish) with the run's [`TraceMeta`] to complete
/// the container. An I/O error mid-run stops writing (the run itself is
/// unaffected) and is surfaced by `finish`.
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use dmt_api::TraceHandle;
/// use dmt_trace::DiskSink;
///
/// let sink = Arc::new(DiskSink::create("run.dmtrace")?);
/// let trace = TraceHandle::to(Arc::clone(&sink) as _);
/// // ... build a runtime with `trace` in its CommonConfig and run ...
/// # let meta = todo!();
/// let meta = sink.finish(meta)?;
/// # Ok::<(), dmt_trace::TraceError>(())
/// ```
pub struct DiskSink {
    st: Mutex<DiskState>,
}

impl DiskSink {
    /// Creates the container file and a sink streaming into it.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<DiskSink, TraceError> {
        Ok(DiskSink {
            st: Mutex::new(DiskState {
                writer: Some(TraceWriter::create(path)?),
                counts: EventCounts::default(),
                final_hash: 0,
                io_error: None,
            }),
        })
    }

    /// Completes the container: seals the last page, writes META (from
    /// `meta`, with the observed event count and schedule hash stamped
    /// in), CHECKPOINTS, PERTURB and the directory. Returns the final
    /// meta, or the first error the recording hit.
    pub fn finish(&self, meta: TraceMeta) -> Result<TraceMeta, TraceError> {
        let mut st = self.st.lock();
        if let Some(e) = st.io_error.take() {
            return Err(e);
        }
        let writer = st.writer.take().ok_or(TraceError::Corrupt {
            what: "sink finished twice",
        })?;
        st.final_hash = writer.schedule_hash();
        writer.finish(meta)
    }
}

impl TraceSink for DiskSink {
    fn emit(&self, ev: &Event, in_schedule: bool, domain: DomainId) {
        let mut st = self.st.lock();
        st.counts.record(ev.kind());
        if !in_schedule {
            return;
        }
        if let Some(w) = st.writer.as_mut() {
            if let Err(e) = w.push_in_domain(ev, domain) {
                // Stop recording but let the run itself continue; the
                // error resurfaces at finish().
                st.io_error = Some(e);
                st.final_hash = st.writer.as_ref().map_or(0, |w| w.schedule_hash());
                st.writer = None;
            }
        }
    }

    fn schedule_hash(&self) -> u64 {
        let st = self.st.lock();
        st.writer
            .as_ref()
            .map_or(st.final_hash, |w| w.schedule_hash())
    }

    fn counts(&self) -> EventCounts {
        self.st.lock().counts
    }
}
