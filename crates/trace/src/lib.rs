//! `dmt-trace`: the persistent record/replay trace container.
//!
//! A `.dmtrace` file captures everything needed to re-execute a
//! deterministic run and check it: the full schedule-event stream
//! (delta/varint coded, paged, per-page digests), cumulative-hash
//! checkpoints, the perturbation seed and plan, and an options
//! fingerprint identifying the configuration the schedule is valid for.
//! The byte-level layout is specified in `docs/TRACE_FORMAT.md`; this
//! crate is the reference implementation of that spec.
//!
//! * Recording: attach a [`DiskSink`] as the runtime's trace sink, then
//!   [`DiskSink::finish`] with the run's [`TraceMeta`].
//! * Reading: [`Trace::open`] fully validates the container (magic,
//!   versions, every digest, checkpoint re-derivation) before returning.
//! * Replaying: feed [`Trace::grants`] to a `det_clock::ReplayCtl` and
//!   attach a [`ReplaySink`] to compare the re-execution event by event.
//! * Salvaging: [`Trace::salvage`] recovers the digest-valid prefix of a
//!   recording that crashed before `finish` (panic, SIGKILL, I/O fault),
//!   returning a [`PartialTrace`] with a typed loss report.
//!
//! The crate has no dependencies outside the workspace and performs no
//! I/O except through [`TraceWriter`]/[`Trace::open`].

#![deny(missing_docs)]

pub mod codec;
pub mod format;
pub mod meta;
pub mod reader;
pub mod replay;
pub mod salvage;
pub mod varint;
pub mod writer;

pub use format::{
    StreamId, TraceError, CODEC_VERSION, CONTAINER_VERSION, DIR_ENTRY_LEN, HEADER_LEN, MAGIC,
    PAGE_EVENTS,
};
pub use meta::TraceMeta;
pub use reader::{Checkpoint, Trace};
pub use replay::{CheckpointFailure, ReplaySink};
pub use salvage::{LossReport, PartialTrace};
pub use writer::{DiskSink, TraceMedia, TraceWriter};
