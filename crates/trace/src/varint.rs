//! LEB128 varints and zigzag deltas — the container's integer encoding.
//!
//! Thread ids, object ids and counts are small; logical clocks and
//! version ids are large but nearly monotone. LEB128 compresses the
//! former directly and, combined with zigzag-coded deltas, the latter:
//! a clock that advances by a few thousand per event costs two bytes
//! instead of eight.

/// Appends `v` to `out` as an LEB128 varint (1–10 bytes).
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` at `*pos`, advancing it. `None` on
/// a truncated or over-long (> 10 byte) encoding.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-encodes a signed delta so small magnitudes of either sign get
/// short varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the zigzag-coded difference `to - from` (wrapping).
pub fn put_delta(out: &mut Vec<u8>, from: u64, to: u64) {
    put_u64(out, zigzag(to.wrapping_sub(from) as i64));
}

/// Reads a delta written by [`put_delta`] and applies it to `from`.
pub fn get_delta(buf: &[u8], pos: &mut usize, from: u64) -> Option<u64> {
    let d = unzigzag(get_u64(buf, pos)?);
    Some(from.wrapping_add(d as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_across_magnitudes() {
        let mut buf = Vec::new();
        let vals = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in vals {
            buf.clear();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(get_u64(&[0x80, 0x80], &mut pos), None);
        // 11-byte encoding: more continuation bytes than u64 can hold.
        let long = [0xff; 11];
        pos = 0;
        assert_eq!(get_u64(&long, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert!(zigzag(-3) < 8);
    }

    #[test]
    fn delta_roundtrips_even_backwards() {
        let mut buf = Vec::new();
        for (from, to) in [(100u64, 105u64), (105, 90), (0, u64::MAX), (u64::MAX, 0)] {
            buf.clear();
            put_delta(&mut buf, from, to);
            let mut pos = 0;
            assert_eq!(get_delta(&buf, &mut pos, from), Some(to));
        }
    }
}
