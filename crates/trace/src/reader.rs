//! Container reader: full structural and cryptographic-digest validation
//! on open, so every later consumer works on known-good data.

use std::path::Path;

use dmt_api::trace::Event;
use dmt_api::{DomainId, Fnv1a, Tid};

use crate::codec::{decode_in_domain, CodecState};
use crate::format::{
    fnv_of, DirEntry, StreamId, TraceError, CODEC_VERSION, CONTAINER_VERSION, DIR_ENTRY_LEN,
    HEADER_LEN, MAGIC,
};
use crate::meta::TraceMeta;
use crate::writer::TraceWriter;

/// One cumulative-hash checkpoint, recorded per sealed event page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Schedule events folded when this checkpoint was taken.
    pub events: u64,
    /// Cumulative FNV-1a schedule hash at that point.
    pub hash: u64,
}

/// A fully validated, decoded trace container.
///
/// [`Trace::open`] verifies the magic and versions, the directory digest,
/// every stream digest, every event page digest, and that the decoded
/// event stream reproduces both every checkpoint and the final schedule
/// hash recorded in the META stream. Anything that fails returns a
/// specific [`TraceError`]; a `Trace` value is therefore always
/// internally consistent.
///
/// # Examples
///
/// ```no_run
/// let t = dmt_trace::Trace::open("run.dmtrace")?;
/// println!(
///     "{} under {}: {} events, schedule hash {:#x}",
///     t.meta.workload,
///     t.meta.runtime,
///     t.events.len(),
///     t.meta.schedule_hash
/// );
/// # Ok::<(), dmt_trace::TraceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    /// Run identity and recorded digests.
    pub meta: TraceMeta,
    /// The decoded schedule-event stream, in deterministic total order.
    pub events: Vec<Event>,
    /// Token domain of each event, parallel to `events`. All
    /// [`DomainId::ROOT`] for unsharded traces; sharded traces stamp each
    /// event with the shard that produced it.
    pub domains: Vec<DomainId>,
    /// Per-page cumulative-hash checkpoints.
    pub checkpoints: Vec<Checkpoint>,
}

pub(crate) fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

pub(crate) fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(a)
}

pub(crate) fn slice<'a>(
    b: &'a [u8],
    off: u64,
    len: u64,
    what: &'static str,
) -> Result<&'a [u8], TraceError> {
    let off = usize::try_from(off).map_err(|_| TraceError::Corrupt { what })?;
    let len = usize::try_from(len).map_err(|_| TraceError::Corrupt { what })?;
    let end = off.checked_add(len).ok_or(TraceError::Corrupt { what })?;
    if end > b.len() {
        return Err(TraceError::Truncated { what });
    }
    Ok(&b[off..end])
}

/// Locates stream `id` in the directory and verifies its digest.
/// Unknown directory ids are skipped: future minor revisions may append
/// streams without breaking old readers.
fn find_stream<'a>(bytes: &'a [u8], dir: &[u8], id: StreamId) -> Result<&'a [u8], TraceError> {
    for chunk in dir.chunks_exact(DIR_ENTRY_LEN) {
        let entry = DirEntry::from_bytes(chunk.try_into().map_err(|_| TraceError::Corrupt {
            what: "directory entry",
        })?);
        if entry.id != id as u32 {
            continue;
        }
        let s = slice(bytes, entry.offset, entry.len, "stream")?;
        let computed = fnv_of(s);
        if computed != entry.fnv {
            return Err(TraceError::ChecksumMismatch {
                what: "stream",
                stored: entry.fnv,
                computed,
            });
        }
        return Ok(s);
    }
    Err(TraceError::Corrupt {
        what: "missing stream",
    })
}

impl Trace {
    /// Reads and validates a container file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Trace, TraceError> {
        Trace::from_bytes(&std::fs::read(path)?)
    }

    /// Validates and decodes a container image already in memory.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < HEADER_LEN {
            return Err(TraceError::Truncated { what: "header" });
        }
        if bytes[0..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let container_v = read_u32(bytes, 8);
        if container_v != CONTAINER_VERSION {
            return Err(TraceError::BadVersion {
                what: "container",
                found: container_v,
                expected: CONTAINER_VERSION,
            });
        }
        let codec_v = read_u32(bytes, 40);
        if codec_v != CODEC_VERSION {
            return Err(TraceError::BadVersion {
                what: "event codec",
                found: codec_v,
                expected: CODEC_VERSION,
            });
        }
        let dir_offset = read_u64(bytes, 16);
        let dir_len = read_u64(bytes, 24);
        let dir_fnv = read_u64(bytes, 32);
        if dir_offset == 0 {
            // The header is only patched by TraceWriter::finish; offset 0
            // means the recording process died mid-run.
            return Err(TraceError::Truncated { what: "directory" });
        }
        let dir = slice(bytes, dir_offset, dir_len, "directory")?;
        let computed = fnv_of(dir);
        if computed != dir_fnv {
            return Err(TraceError::ChecksumMismatch {
                what: "directory",
                stored: dir_fnv,
                computed,
            });
        }
        if dir.len() % DIR_ENTRY_LEN != 0 {
            return Err(TraceError::Corrupt { what: "directory" });
        }

        let meta = TraceMeta::from_bytes(find_stream(bytes, dir, StreamId::Meta)?)?;
        let events_stream = find_stream(bytes, dir, StreamId::Events)?;
        let ckpt_stream = find_stream(bytes, dir, StreamId::Checkpoints)?;
        let perturb_stream = find_stream(bytes, dir, StreamId::Perturb)?;

        // CHECKPOINTS: fixed u64 count + (events, hash) pairs.
        if ckpt_stream.len() < 8 {
            return Err(TraceError::Truncated {
                what: "checkpoints",
            });
        }
        let n = read_u64(ckpt_stream, 0) as usize;
        if ckpt_stream.len() != 8 + n * 16 {
            return Err(TraceError::Corrupt {
                what: "checkpoints",
            });
        }
        let checkpoints: Vec<Checkpoint> = (0..n)
            .map(|i| Checkpoint {
                events: read_u64(ckpt_stream, 8 + i * 16),
                hash: read_u64(ckpt_stream, 16 + i * 16),
            })
            .collect();

        // PERTURB: seed + plan digest, both mirrored in META.
        if perturb_stream.len() != 16 {
            return Err(TraceError::Corrupt {
                what: "perturb stream",
            });
        }
        if read_u64(perturb_stream, 0) != meta.perturb_seed
            || read_u64(perturb_stream, 8) != meta.perturb_plan
        {
            return Err(TraceError::Corrupt {
                what: "perturb stream (disagrees with meta)",
            });
        }

        // EVENTS: decode page by page, re-deriving every checkpoint.
        let mut events = Vec::with_capacity(meta.event_count as usize);
        let mut domains = Vec::with_capacity(meta.event_count as usize);
        let mut hash = Fnv1a::new();
        let mut pos = 0usize;
        let mut page_idx = 0usize;
        while pos < events_stream.len() {
            if events_stream.len() - pos < 16 {
                return Err(TraceError::Truncated { what: "event page" });
            }
            let count = read_u32(events_stream, pos) as usize;
            let len = read_u32(events_stream, pos + 4) as usize;
            let stored_fnv = read_u64(events_stream, pos + 8);
            pos += 16;
            let payload = slice(events_stream, pos as u64, len as u64, "event page payload")?;
            let computed = fnv_of(payload);
            if computed != stored_fnv {
                return Err(TraceError::ChecksumMismatch {
                    what: "event page",
                    stored: stored_fnv,
                    computed,
                });
            }
            let mut st = CodecState::default();
            let mut p = 0usize;
            for _ in 0..count {
                let (domain, ev) = decode_in_domain(payload, &mut p, &mut st)?;
                ev.fold_domain(domain, &mut hash);
                events.push(ev);
                domains.push(domain);
            }
            if p != payload.len() {
                return Err(TraceError::Corrupt {
                    what: "event page length",
                });
            }
            pos += len;
            let ck = checkpoints.get(page_idx).ok_or(TraceError::Corrupt {
                what: "checkpoint count",
            })?;
            if ck.events != events.len() as u64 || ck.hash != hash.digest() {
                return Err(TraceError::ChecksumMismatch {
                    what: "checkpoint",
                    stored: ck.hash,
                    computed: hash.digest(),
                });
            }
            page_idx += 1;
        }
        if page_idx != checkpoints.len() {
            return Err(TraceError::Corrupt {
                what: "checkpoint count",
            });
        }
        if events.len() as u64 != meta.event_count {
            return Err(TraceError::Corrupt {
                what: "event count (disagrees with meta)",
            });
        }
        let computed = hash.digest();
        if computed != meta.schedule_hash {
            return Err(TraceError::ChecksumMismatch {
                what: "schedule hash",
                stored: meta.schedule_hash,
                computed,
            });
        }

        Ok(Trace {
            meta,
            events,
            domains,
            checkpoints,
        })
    }

    /// The decoded stream as `(domain, event)` pairs, in schedule order.
    pub fn domain_events(&self) -> Vec<(DomainId, Event)> {
        self.domains
            .iter()
            .copied()
            .zip(self.events.iter().copied())
            .collect()
    }

    /// The recorded token-grant order: the emitting thread of every
    /// `TokenAcquire` event, in schedule order. This is the list a replay
    /// feeds into the scheduler as its grant source.
    pub fn grants(&self) -> Vec<Tid> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                Event::TokenAcquire { tid, .. } => Some(*tid),
                _ => None,
            })
            .collect()
    }

    /// Re-encodes this trace to `path`, recomputing page digests,
    /// checkpoints, the event count and the schedule hash from
    /// `self.events`. Primarily for tests and tooling that edit a trace
    /// in memory (e.g. the tamper-divergence test): the written file is
    /// internally valid even if the events were modified.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<TraceMeta, TraceError> {
        let mut w = TraceWriter::create(path)?;
        for (i, ev) in self.events.iter().enumerate() {
            let domain = self.domains.get(i).copied().unwrap_or_default();
            w.push_in_domain(ev, domain)?;
        }
        w.finish(self.meta.clone())
    }
}
