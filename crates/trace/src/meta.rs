//! The META stream: run identity and the recorded run's digests.

use crate::format::TraceError;
use crate::varint::{get_u64, put_u64};

/// Everything a replayer needs to reconstruct and check the recorded
/// run: which workload under which runtime configuration, and the
/// digests the re-execution must reproduce.
///
/// Wall-clock timestamps are deliberately absent — two recordings of the
/// same run must be byte-identical, so the container can itself be
/// compared with `cmp`/`sha256sum` across machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Runtime label, e.g. `"consequence-ic"` (see `dmt-baselines`).
    pub runtime: String,
    /// Workload paper name, e.g. `"histogram"` (see `dmt-workloads`).
    pub workload: String,
    /// Worker threads the workload was sized for.
    pub threads: u64,
    /// Workload problem-size multiplier.
    pub scale: u64,
    /// Workload input-generation seed.
    pub input_seed: u64,
    /// Heap pages the runtime was created with.
    pub heap_pages: u64,
    /// `CommonConfig::max_threads` of the recording.
    pub max_threads: u64,
    /// FNV-1a fingerprint of the schedule-relevant runtime options
    /// (`consequence::Options::fingerprint`); replay refuses a build
    /// whose options would order synchronization differently.
    pub options_fingerprint: u64,
    /// Master seed of the fault-injection plan active while recording
    /// (0 = no perturbation).
    pub perturb_seed: u64,
    /// Digest of that plan (0 = no perturbation).
    pub perturb_plan: u64,
    /// Schedule events in the event stream.
    pub event_count: u64,
    /// Final schedule hash of the recorded run.
    pub schedule_hash: u64,
    /// Final commit-log hash of the recorded run.
    pub commit_log_hash: u64,
    /// Output-region digest of the recorded run (0 if not validated).
    pub output_hash: u64,
    /// Events per page — the checkpoint interval the CHECKPOINTS stream
    /// was written at.
    pub checkpoint_interval: u64,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let corrupt = TraceError::Corrupt {
        what: "meta string",
    };
    let len = get_u64(buf, pos).ok_or(TraceError::Truncated { what: "meta" })? as usize;
    if len > 4096 || *pos + len > buf.len() {
        return Err(corrupt);
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len]).map_err(|_| TraceError::Corrupt {
        what: "meta string",
    })?;
    *pos += len;
    Ok(s.to_string())
}

impl TraceMeta {
    /// Serializes the META stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        put_str(&mut out, &self.runtime);
        put_str(&mut out, &self.workload);
        for v in [
            self.threads,
            self.scale,
            self.input_seed,
            self.heap_pages,
            self.max_threads,
            self.options_fingerprint,
            self.perturb_seed,
            self.perturb_plan,
            self.event_count,
            self.schedule_hash,
            self.commit_log_hash,
            self.output_hash,
            self.checkpoint_interval,
        ] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Parses a META stream; the whole buffer must be consumed.
    pub fn from_bytes(buf: &[u8]) -> Result<TraceMeta, TraceError> {
        let mut pos = 0;
        let runtime = get_str(buf, &mut pos)?;
        let workload = get_str(buf, &mut pos)?;
        let mut next = || -> Result<u64, TraceError> {
            get_u64(buf, &mut pos).ok_or(TraceError::Truncated { what: "meta" })
        };
        let meta = TraceMeta {
            runtime,
            workload,
            threads: next()?,
            scale: next()?,
            input_seed: next()?,
            heap_pages: next()?,
            max_threads: next()?,
            options_fingerprint: next()?,
            perturb_seed: next()?,
            perturb_plan: next()?,
            event_count: next()?,
            schedule_hash: next()?,
            commit_log_hash: next()?,
            output_hash: next()?,
            checkpoint_interval: next()?,
        };
        if pos != buf.len() {
            return Err(TraceError::Corrupt {
                what: "meta trailing bytes",
            });
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceMeta {
        TraceMeta {
            runtime: "consequence-ic".into(),
            workload: "histogram".into(),
            threads: 4,
            scale: 1,
            input_seed: 42,
            heap_pages: 2048,
            max_threads: 64,
            options_fingerprint: 0xABCD,
            perturb_seed: 0,
            perturb_plan: 0,
            event_count: 12_345,
            schedule_hash: 0x1111_2222_3333_4444,
            commit_log_hash: 0x5555,
            output_hash: 0x6666,
            checkpoint_interval: 512,
        }
    }

    #[test]
    fn meta_roundtrips() {
        let m = sample();
        assert_eq!(TraceMeta::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn meta_rejects_truncation_and_trailers() {
        let b = sample().to_bytes();
        assert!(TraceMeta::from_bytes(&b[..b.len() - 1]).is_err());
        let mut long = b.clone();
        long.push(0);
        assert!(TraceMeta::from_bytes(&long).is_err());
    }
}
