//! The META stream: run identity and the recorded run's digests.

use crate::format::TraceError;
use crate::varint::{get_u64, put_u64};

/// Everything a replayer needs to reconstruct and check the recorded
/// run: which workload under which runtime configuration, and the
/// digests the re-execution must reproduce.
///
/// Wall-clock timestamps are deliberately absent — two recordings of the
/// same run must be byte-identical, so the container can itself be
/// compared with `cmp`/`sha256sum` across machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Runtime label, e.g. `"consequence-ic"` (see `dmt-baselines`).
    pub runtime: String,
    /// Workload paper name, e.g. `"histogram"` (see `dmt-workloads`).
    pub workload: String,
    /// Worker threads the workload was sized for.
    pub threads: u64,
    /// Workload problem-size multiplier.
    pub scale: u64,
    /// Workload input-generation seed.
    pub input_seed: u64,
    /// Heap pages the runtime was created with.
    pub heap_pages: u64,
    /// `CommonConfig::max_threads` of the recording.
    pub max_threads: u64,
    /// FNV-1a fingerprint of the schedule-relevant runtime options
    /// (`consequence::Options::fingerprint`); replay refuses a build
    /// whose options would order synchronization differently.
    pub options_fingerprint: u64,
    /// Master seed of the fault-injection plan active while recording
    /// (0 = no perturbation).
    pub perturb_seed: u64,
    /// Digest of that plan (0 = no perturbation).
    pub perturb_plan: u64,
    /// Schedule events in the event stream.
    pub event_count: u64,
    /// Final schedule hash of the recorded run.
    pub schedule_hash: u64,
    /// Final commit-log hash of the recorded run.
    pub commit_log_hash: u64,
    /// Output-region digest of the recorded run (0 if not validated).
    pub output_hash: u64,
    /// Events per page — the checkpoint interval the CHECKPOINTS stream
    /// was written at.
    pub checkpoint_interval: u64,
    /// Panic-injection site code active during the recording
    /// (`dmt_api::PanicSite::code`; 0 = no injected panic). Together with
    /// the two fields below this makes a panic-injected recording a
    /// complete reproducer: replay rebuilds the same fixed `(site,
    /// victim, nth)` injector. Extension fields — absent from containers
    /// written before durable recording existed, parsed as 0.
    pub panic_site: u64,
    /// Thread id of the injected victim (0 when `panic_site` is 0).
    pub panic_victim: u64,
    /// 0-based occurrence index the injected panic fires at.
    pub panic_nth: u64,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let corrupt = TraceError::Corrupt {
        what: "meta string",
    };
    let len = get_u64(buf, pos).ok_or(TraceError::Truncated { what: "meta" })? as usize;
    if len > 4096 || *pos + len > buf.len() {
        return Err(corrupt);
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len]).map_err(|_| TraceError::Corrupt {
        what: "meta string",
    })?;
    *pos += len;
    Ok(s.to_string())
}

impl TraceMeta {
    /// Serializes the META stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        put_str(&mut out, &self.runtime);
        put_str(&mut out, &self.workload);
        for v in [
            self.threads,
            self.scale,
            self.input_seed,
            self.heap_pages,
            self.max_threads,
            self.options_fingerprint,
            self.perturb_seed,
            self.perturb_plan,
            self.event_count,
            self.schedule_hash,
            self.commit_log_hash,
            self.output_hash,
            self.checkpoint_interval,
        ] {
            put_u64(&mut out, v);
        }
        // Extension fields (durable recording / replay-to-fault). Old
        // readers never see them: they only read finished containers,
        // whose META was written by the same build.
        for v in [self.panic_site, self.panic_victim, self.panic_nth] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Parses a META stream; the whole buffer must be consumed. A buffer
    /// ending after the base fields (a container written before the
    /// panic-injection extension existed) parses with the extension
    /// fields zeroed.
    pub fn from_bytes(buf: &[u8]) -> Result<TraceMeta, TraceError> {
        fn next(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
            get_u64(buf, pos).ok_or(TraceError::Truncated { what: "meta" })
        }
        let mut pos = 0;
        let runtime = get_str(buf, &mut pos)?;
        let workload = get_str(buf, &mut pos)?;
        let mut meta = TraceMeta {
            runtime,
            workload,
            threads: next(buf, &mut pos)?,
            scale: next(buf, &mut pos)?,
            input_seed: next(buf, &mut pos)?,
            heap_pages: next(buf, &mut pos)?,
            max_threads: next(buf, &mut pos)?,
            options_fingerprint: next(buf, &mut pos)?,
            perturb_seed: next(buf, &mut pos)?,
            perturb_plan: next(buf, &mut pos)?,
            event_count: next(buf, &mut pos)?,
            schedule_hash: next(buf, &mut pos)?,
            commit_log_hash: next(buf, &mut pos)?,
            output_hash: next(buf, &mut pos)?,
            checkpoint_interval: next(buf, &mut pos)?,
            panic_site: 0,
            panic_victim: 0,
            panic_nth: 0,
        };
        if pos < buf.len() {
            meta.panic_site = next(buf, &mut pos)?;
            meta.panic_victim = next(buf, &mut pos)?;
            meta.panic_nth = next(buf, &mut pos)?;
        }
        if pos != buf.len() {
            return Err(TraceError::Corrupt {
                what: "meta trailing bytes",
            });
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceMeta {
        TraceMeta {
            runtime: "consequence-ic".into(),
            workload: "histogram".into(),
            threads: 4,
            scale: 1,
            input_seed: 42,
            heap_pages: 2048,
            max_threads: 64,
            options_fingerprint: 0xABCD,
            perturb_seed: 0,
            perturb_plan: 0,
            event_count: 12_345,
            schedule_hash: 0x1111_2222_3333_4444,
            commit_log_hash: 0x5555,
            output_hash: 0x6666,
            checkpoint_interval: 512,
            panic_site: 0,
            panic_victim: 0,
            panic_nth: 0,
        }
    }

    #[test]
    fn meta_roundtrips() {
        let m = sample();
        assert_eq!(TraceMeta::from_bytes(&m.to_bytes()).unwrap(), m);
        let injected = TraceMeta {
            panic_site: 2,
            panic_victim: 3,
            panic_nth: 5,
            ..sample()
        };
        assert_eq!(
            TraceMeta::from_bytes(&injected.to_bytes()).unwrap(),
            injected
        );
    }

    #[test]
    fn meta_without_extension_fields_parses_with_zeroes() {
        // A META image from before the panic-injection extension: base
        // fields only. It must parse, with the extension zeroed.
        let full = sample().to_bytes();
        // The extension is exactly three zero varints (one byte each).
        let legacy = &full[..full.len() - 3];
        let m = TraceMeta::from_bytes(legacy).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn meta_rejects_truncation_and_trailers() {
        let b = sample().to_bytes();
        assert!(TraceMeta::from_bytes(&b[..b.len() - 1]).is_err());
        let mut long = b.clone();
        long.push(0);
        assert!(TraceMeta::from_bytes(&long).is_err());
    }
}
