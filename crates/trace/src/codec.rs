//! The per-event byte codec: one tag byte plus varint/delta fields.
//!
//! Every event is encoded as its [`EventKind`] discriminant followed by
//! its fields in declaration order. Small identifiers (thread, mutex,
//! cond, barrier, rwlock ids; counts; flags) are plain LEB128 varints.
//! Logical clocks and version ids are zigzag deltas against a running
//! [`CodecState`], which the writer resets at every page boundary — so a
//! page decodes independently of all earlier pages and a corrupt page
//! cannot poison its successors' decoding.
//!
//! `Option<Tid>` is biased by one: `0` is `None`, `n` is `Tid(n - 1)`.
//!
//! # Token domains
//!
//! Sharded traces interleave events from several token domains. Rather
//! than pay a per-event domain field, the codec keeps a *current domain*
//! in [`CodecState`] (reset to [`DomainId::ROOT`] at each page boundary)
//! and emits a [`DOMAIN_MARKER`] byte plus a varint domain id only when
//! an event's domain differs from the current one. Single-domain traces
//! therefore encode byte-identically to the pre-domain format, and the
//! marker tag (`0x7F`) can never collide with an [`EventKind`]
//! discriminant, so a pre-domain reader rejects a sharded trace as
//! corrupt instead of silently mis-decoding it.

use dmt_api::trace::{Event, EventKind};
use dmt_api::{BarrierId, CondId, DomainId, MutexId, RwLockId, Tid};

use crate::format::TraceError;
use crate::varint::{get_delta, get_u64, put_delta, put_u64};

/// Tag byte announcing a token-domain switch; followed by the new domain
/// id as a varint. Deliberately far above every [`EventKind`]
/// discriminant (they stop at 21).
pub const DOMAIN_MARKER: u8 = 0x7F;

/// Rolling delta bases, reset at each page boundary.
#[derive(Clone, Copy, Debug, Default)]
pub struct CodecState {
    /// Base for clock-valued fields.
    pub prev_clock: u64,
    /// Base for version-valued fields.
    pub prev_version: u64,
    /// Current token domain; events encode without a domain field until
    /// a [`DOMAIN_MARKER`] switches it.
    pub domain: DomainId,
}

fn put_tid(out: &mut Vec<u8>, t: Tid) {
    put_u64(out, t.0 as u64);
}

fn put_opt_tid(out: &mut Vec<u8>, t: Option<Tid>) {
    put_u64(out, t.map_or(0, |t| t.0 as u64 + 1));
}

/// Encodes one event into `out`, updating the delta state.
pub fn encode(ev: &Event, st: &mut CodecState, out: &mut Vec<u8>) {
    out.push(ev.kind() as u8);
    match *ev {
        Event::TokenAcquire { tid, clock }
        | Event::TokenRelease { tid, clock }
        | Event::Depart { tid, clock }
        | Event::Exit { tid, clock }
        | Event::ThreadPanic { tid, clock }
        | Event::Publish { tid, clock }
        | Event::Coarsen { tid, clock } => {
            put_tid(out, tid);
            put_delta(out, st.prev_clock, clock);
            st.prev_clock = clock;
        }
        Event::MutexLock { tid, mutex, ticket } => {
            put_tid(out, tid);
            put_u64(out, mutex.0 as u64);
            put_u64(out, ticket);
        }
        Event::MutexBlock { tid, mutex } => {
            put_tid(out, tid);
            put_u64(out, mutex.0 as u64);
        }
        Event::MutexUnlock { tid, mutex, woke } => {
            put_tid(out, tid);
            put_u64(out, mutex.0 as u64);
            put_opt_tid(out, woke);
        }
        Event::CondWait { tid, cond, mutex } => {
            put_tid(out, tid);
            put_u64(out, cond.0 as u64);
            put_u64(out, mutex.0 as u64);
        }
        Event::CondSignal { tid, cond, woken } => {
            put_tid(out, tid);
            put_u64(out, cond.0 as u64);
            put_opt_tid(out, woken);
        }
        Event::CondBroadcast { tid, cond, woken } => {
            put_tid(out, tid);
            put_u64(out, cond.0 as u64);
            put_u64(out, woken as u64);
        }
        Event::BarrierArrive { tid, barrier, gen } => {
            put_tid(out, tid);
            put_u64(out, barrier.0 as u64);
            put_u64(out, gen);
        }
        Event::BarrierOpen {
            tid,
            barrier,
            gen,
            install_version,
        } => {
            put_tid(out, tid);
            put_u64(out, barrier.0 as u64);
            put_u64(out, gen);
            put_delta(out, st.prev_version, install_version);
            st.prev_version = install_version;
        }
        Event::RwAcquire { tid, lock, writer } | Event::RwRelease { tid, lock, writer } => {
            put_tid(out, tid);
            put_u64(out, lock.0 as u64);
            put_u64(out, writer as u64);
        }
        Event::Commit {
            tid,
            version,
            pages,
            merged,
            page_set,
        } => {
            put_tid(out, tid);
            put_delta(out, st.prev_version, version);
            st.prev_version = version;
            put_u64(out, pages as u64);
            put_u64(out, merged as u64);
            put_u64(out, page_set);
        }
        Event::Update {
            tid,
            version,
            pages,
        } => {
            put_tid(out, tid);
            put_delta(out, st.prev_version, version);
            st.prev_version = version;
            put_u64(out, pages);
        }
        Event::Spawn {
            parent,
            child,
            pooled,
        } => {
            put_tid(out, parent);
            put_tid(out, child);
            put_u64(out, pooled as u64);
        }
        Event::Join { tid, target } => {
            put_tid(out, tid);
            put_tid(out, target);
        }
        Event::FastForward { tid, from, to } => {
            put_tid(out, tid);
            put_delta(out, st.prev_clock, from);
            put_delta(out, from, to);
            st.prev_clock = to;
        }
    }
}

/// Encodes one event stamped with its token domain, emitting a
/// [`DOMAIN_MARKER`] first whenever the domain differs from the codec
/// state's current one. Root-domain-only streams never emit a marker.
pub fn encode_in_domain(ev: &Event, domain: DomainId, st: &mut CodecState, out: &mut Vec<u8>) {
    if domain != st.domain {
        out.push(DOMAIN_MARKER);
        put_u64(out, domain.0 as u64);
        st.domain = domain;
    }
    encode(ev, st, out);
}

fn corrupt(what: &'static str) -> TraceError {
    TraceError::Corrupt { what }
}

fn need(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, TraceError> {
    get_u64(buf, pos).ok_or(corrupt(what))
}

fn need_tid(buf: &[u8], pos: &mut usize) -> Result<Tid, TraceError> {
    let v = need(buf, pos, "event tid")?;
    u32::try_from(v).map(Tid).map_err(|_| corrupt("event tid"))
}

fn need_opt_tid(buf: &[u8], pos: &mut usize) -> Result<Option<Tid>, TraceError> {
    match need(buf, pos, "event optional tid")? {
        0 => Ok(None),
        n => u32::try_from(n - 1)
            .map(|t| Some(Tid(t)))
            .map_err(|_| corrupt("event optional tid")),
    }
}

fn need_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, TraceError> {
    u32::try_from(need(buf, pos, what)?).map_err(|_| corrupt(what))
}

fn need_clock(buf: &[u8], pos: &mut usize, st: &mut CodecState) -> Result<u64, TraceError> {
    let c = get_delta(buf, pos, st.prev_clock).ok_or(corrupt("event clock"))?;
    st.prev_clock = c;
    Ok(c)
}

fn need_version(buf: &[u8], pos: &mut usize, st: &mut CodecState) -> Result<u64, TraceError> {
    let v = get_delta(buf, pos, st.prev_version).ok_or(corrupt("event version"))?;
    st.prev_version = v;
    Ok(v)
}

/// Decodes one event from `buf` at `*pos`, advancing it and the state.
pub fn decode(buf: &[u8], pos: &mut usize, st: &mut CodecState) -> Result<Event, TraceError> {
    let tag = *buf.get(*pos).ok_or(TraceError::Truncated {
        what: "event record",
    })?;
    *pos += 1;
    let kind = *EventKind::ALL
        .get(tag as usize)
        .ok_or(corrupt("event tag"))?;
    Ok(match kind {
        EventKind::TokenAcquire
        | EventKind::TokenRelease
        | EventKind::Depart
        | EventKind::Exit
        | EventKind::ThreadPanic
        | EventKind::Publish
        | EventKind::Coarsen => {
            let tid = need_tid(buf, pos)?;
            let clock = need_clock(buf, pos, st)?;
            match kind {
                EventKind::TokenAcquire => Event::TokenAcquire { tid, clock },
                EventKind::TokenRelease => Event::TokenRelease { tid, clock },
                EventKind::Depart => Event::Depart { tid, clock },
                EventKind::Exit => Event::Exit { tid, clock },
                EventKind::ThreadPanic => Event::ThreadPanic { tid, clock },
                EventKind::Publish => Event::Publish { tid, clock },
                _ => Event::Coarsen { tid, clock },
            }
        }
        EventKind::MutexLock => Event::MutexLock {
            tid: need_tid(buf, pos)?,
            mutex: MutexId(need_u32(buf, pos, "mutex id")?),
            ticket: need(buf, pos, "mutex ticket")?,
        },
        EventKind::MutexBlock => Event::MutexBlock {
            tid: need_tid(buf, pos)?,
            mutex: MutexId(need_u32(buf, pos, "mutex id")?),
        },
        EventKind::MutexUnlock => Event::MutexUnlock {
            tid: need_tid(buf, pos)?,
            mutex: MutexId(need_u32(buf, pos, "mutex id")?),
            woke: need_opt_tid(buf, pos)?,
        },
        EventKind::CondWait => Event::CondWait {
            tid: need_tid(buf, pos)?,
            cond: CondId(need_u32(buf, pos, "cond id")?),
            mutex: MutexId(need_u32(buf, pos, "mutex id")?),
        },
        EventKind::CondSignal => Event::CondSignal {
            tid: need_tid(buf, pos)?,
            cond: CondId(need_u32(buf, pos, "cond id")?),
            woken: need_opt_tid(buf, pos)?,
        },
        EventKind::CondBroadcast => Event::CondBroadcast {
            tid: need_tid(buf, pos)?,
            cond: CondId(need_u32(buf, pos, "cond id")?),
            woken: need_u32(buf, pos, "broadcast count")?,
        },
        EventKind::BarrierArrive => Event::BarrierArrive {
            tid: need_tid(buf, pos)?,
            barrier: BarrierId(need_u32(buf, pos, "barrier id")?),
            gen: need(buf, pos, "barrier generation")?,
        },
        EventKind::BarrierOpen => Event::BarrierOpen {
            tid: need_tid(buf, pos)?,
            barrier: BarrierId(need_u32(buf, pos, "barrier id")?),
            gen: need(buf, pos, "barrier generation")?,
            install_version: need_version(buf, pos, st)?,
        },
        EventKind::RwAcquire | EventKind::RwRelease => {
            let tid = need_tid(buf, pos)?;
            let lock = RwLockId(need_u32(buf, pos, "rwlock id")?);
            let writer = need(buf, pos, "rwlock mode")? != 0;
            if kind == EventKind::RwAcquire {
                Event::RwAcquire { tid, lock, writer }
            } else {
                Event::RwRelease { tid, lock, writer }
            }
        }
        EventKind::Commit => Event::Commit {
            tid: need_tid(buf, pos)?,
            version: need_version(buf, pos, st)?,
            pages: need_u32(buf, pos, "commit pages")?,
            merged: need_u32(buf, pos, "commit merged")?,
            page_set: need(buf, pos, "commit page set")?,
        },
        EventKind::Update => Event::Update {
            tid: need_tid(buf, pos)?,
            version: need_version(buf, pos, st)?,
            pages: need(buf, pos, "update pages")?,
        },
        EventKind::Spawn => Event::Spawn {
            parent: need_tid(buf, pos)?,
            child: need_tid(buf, pos)?,
            pooled: need(buf, pos, "spawn pooled flag")? != 0,
        },
        EventKind::Join => Event::Join {
            tid: need_tid(buf, pos)?,
            target: need_tid(buf, pos)?,
        },
        EventKind::FastForward => {
            let tid = need_tid(buf, pos)?;
            let from = need_clock(buf, pos, st)?;
            let to = get_delta(buf, pos, from).ok_or(corrupt("event clock"))?;
            st.prev_clock = to;
            Event::FastForward { tid, from, to }
        }
    })
}

/// Decodes one event plus its token domain, consuming any
/// [`DOMAIN_MARKER`] prefix first.
pub fn decode_in_domain(
    buf: &[u8],
    pos: &mut usize,
    st: &mut CodecState,
) -> Result<(DomainId, Event), TraceError> {
    while buf.get(*pos) == Some(&DOMAIN_MARKER) {
        *pos += 1;
        st.domain = DomainId(need_u32(buf, pos, "domain id")?);
    }
    Ok((st.domain, decode(buf, pos, st)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so the property test needs no external crates.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn arbitrary_event(r: &mut Lcg) -> Event {
        let tid = Tid((r.next() % 64) as u32);
        let clock = r.next() % (1 << 40);
        match r.next() % 22 {
            0 => Event::TokenAcquire { tid, clock },
            1 => Event::TokenRelease { tid, clock },
            2 => Event::Depart { tid, clock },
            3 => Event::MutexLock {
                tid,
                mutex: MutexId((r.next() % 32) as u32),
                ticket: r.next(),
            },
            4 => Event::MutexBlock {
                tid,
                mutex: MutexId((r.next() % 32) as u32),
            },
            5 => Event::MutexUnlock {
                tid,
                mutex: MutexId((r.next() % 32) as u32),
                woke: (r.next().is_multiple_of(2)).then(|| Tid((r.next() % 64) as u32)),
            },
            6 => Event::CondWait {
                tid,
                cond: CondId((r.next() % 16) as u32),
                mutex: MutexId((r.next() % 32) as u32),
            },
            7 => Event::CondSignal {
                tid,
                cond: CondId((r.next() % 16) as u32),
                woken: (r.next().is_multiple_of(2)).then(|| Tid((r.next() % 64) as u32)),
            },
            8 => Event::CondBroadcast {
                tid,
                cond: CondId((r.next() % 16) as u32),
                woken: (r.next() % 64) as u32,
            },
            9 => Event::BarrierArrive {
                tid,
                barrier: BarrierId((r.next() % 8) as u32),
                gen: r.next() % 1000,
            },
            10 => Event::BarrierOpen {
                tid,
                barrier: BarrierId((r.next() % 8) as u32),
                gen: r.next() % 1000,
                install_version: r.next() % (1 << 32),
            },
            11 => Event::RwAcquire {
                tid,
                lock: RwLockId((r.next() % 8) as u32),
                writer: r.next().is_multiple_of(2),
            },
            12 => Event::RwRelease {
                tid,
                lock: RwLockId((r.next() % 8) as u32),
                writer: r.next().is_multiple_of(2),
            },
            13 => Event::Commit {
                tid,
                version: r.next() % (1 << 32),
                pages: (r.next() % 512) as u32,
                merged: (r.next() % 64) as u32,
                page_set: r.next(),
            },
            14 => Event::Update {
                tid,
                version: r.next() % (1 << 32),
                pages: r.next() % 512,
            },
            15 => Event::Spawn {
                parent: tid,
                child: Tid((r.next() % 64) as u32),
                pooled: r.next().is_multiple_of(2),
            },
            16 => Event::Join {
                tid,
                target: Tid((r.next() % 64) as u32),
            },
            17 => Event::Exit { tid, clock },
            18 => Event::ThreadPanic { tid, clock },
            19 => Event::Publish { tid, clock },
            20 => Event::FastForward {
                tid,
                from: clock,
                to: clock + r.next() % 10_000,
            },
            _ => Event::Coarsen { tid, clock },
        }
    }

    #[test]
    fn every_kind_roundtrips() {
        // Property test: 4 000 random events across all 22 kinds encode
        // and decode to identical values under a shared delta state.
        let mut r = Lcg(0x5EED);
        let events: Vec<Event> = (0..4000).map(|_| arbitrary_event(&mut r)).collect();
        let mut buf = Vec::new();
        let mut enc = CodecState::default();
        for ev in &events {
            encode(ev, &mut enc, &mut buf);
        }
        let mut dec = CodecState::default();
        let mut pos = 0;
        for (i, ev) in events.iter().enumerate() {
            let got = decode(&buf, &mut pos, &mut dec).unwrap_or_else(|e| panic!("event {i}: {e}"));
            assert_eq!(&got, ev, "event {i}");
        }
        assert_eq!(pos, buf.len(), "decoder must consume exactly the buffer");
    }

    #[test]
    fn domain_markers_roundtrip_and_root_streams_emit_none() {
        let mut r = Lcg(0xD011A1);
        let events: Vec<(DomainId, Event)> = (0..1000)
            .map(|i| (DomainId((i % 3) as u32), arbitrary_event(&mut r)))
            .collect();
        let mut buf = Vec::new();
        let mut enc = CodecState::default();
        for (d, ev) in &events {
            encode_in_domain(ev, *d, &mut enc, &mut buf);
        }
        let mut dec = CodecState::default();
        let mut pos = 0;
        for (i, want) in events.iter().enumerate() {
            let got = decode_in_domain(&buf, &mut pos, &mut dec)
                .unwrap_or_else(|e| panic!("event {i}: {e}"));
            assert_eq!(&got, want, "event {i}");
        }
        assert_eq!(pos, buf.len());

        // A root-only stream must encode byte-identically to plain
        // `encode` — no marker anywhere.
        let mut plain = Vec::new();
        let mut rooted = Vec::new();
        let mut st_a = CodecState::default();
        let mut st_b = CodecState::default();
        for (_, ev) in &events {
            encode(ev, &mut st_a, &mut plain);
            encode_in_domain(ev, DomainId::ROOT, &mut st_b, &mut rooted);
        }
        assert_eq!(plain, rooted);
    }

    #[test]
    fn domain_marker_is_corrupt_to_the_plain_decoder() {
        // A pre-domain reader must reject a sharded stream, not
        // mis-decode it: DOMAIN_MARKER is out of EventKind range.
        let mut buf = Vec::new();
        let mut st = CodecState::default();
        encode_in_domain(
            &Event::TokenAcquire {
                tid: Tid(1),
                clock: 7,
            },
            DomainId(2),
            &mut st,
            &mut buf,
        );
        assert_eq!(buf[0], DOMAIN_MARKER);
        let mut pos = 0;
        let mut st = CodecState::default();
        assert!(matches!(
            decode(&buf, &mut pos, &mut st),
            Err(TraceError::Corrupt { what: "event tag" })
        ));
    }

    #[test]
    fn unknown_tag_is_corrupt_not_panic() {
        let buf = [99u8, 0, 0];
        let mut pos = 0;
        let mut st = CodecState::default();
        assert!(matches!(
            decode(&buf, &mut pos, &mut st),
            Err(TraceError::Corrupt { what: "event tag" })
        ));
    }

    #[test]
    fn truncated_record_is_reported() {
        let mut buf = Vec::new();
        let mut st = CodecState::default();
        encode(
            &Event::TokenAcquire {
                tid: Tid(3),
                clock: 1_000_000,
            },
            &mut st,
            &mut buf,
        );
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        let mut st = CodecState::default();
        assert!(decode(&buf, &mut pos, &mut st).is_err());
    }

    #[test]
    fn delta_encoding_keeps_monotone_clocks_small() {
        // Consecutive token grants ~1000 clocks apart must cost only a
        // few bytes each, not 8+ for a raw u64 clock.
        let mut st = CodecState::default();
        let mut buf = Vec::new();
        for i in 0..100u64 {
            encode(
                &Event::TokenAcquire {
                    tid: Tid((i % 4) as u32),
                    clock: 1_000_000 + i * 1000,
                },
                &mut st,
                &mut buf,
            );
        }
        // First event pays the full offset; the rest are ~4 bytes
        // (tag + tid + 2-byte delta).
        assert!(buf.len() < 100 * 6, "got {} bytes", buf.len());
    }
}
