//! Minimal JSON emission for figure rows.
//!
//! The workspace builds offline with no external dependencies, so the
//! `figures` binary serializes its rows through this hand-rolled trait
//! instead of `serde_json`. Output is compact, valid JSON; only the types
//! the figure rows actually contain are supported.

use std::time::Duration;

use dmt_api::{Breakdown, Counters, EventCounts, RunReport, Tid};

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// This value as a JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Writes a JSON string literal with the escapes JSON requires.
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! json_int {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })+
    };
}

json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(self, out);
    }
}

impl ToJson for &str {
    fn write_json(&self, out: &mut String) {
        write_str(self, out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl ToJson for Duration {
    fn write_json(&self, out: &mut String) {
        self.as_secs_f64().write_json(out);
    }
}

impl ToJson for Tid {
    fn write_json(&self, out: &mut String) {
        self.0.write_json(out);
    }
}

impl ToJson for EventCounts {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (kind, count)) in self.nonzero().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(kind.name(), out);
            out.push(':');
            count.write_json(out);
        }
        out.push('}');
    }
}

/// Implements [`ToJson`] for a struct as an object of its named fields.
/// Exported so downstream tools (the `dmt-stress` harness) can serialize
/// their own report types without a serde dependency.
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::json::write_str(stringify!($field), out);
                    out.push(':');
                    self.$field.write_json(out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

json_struct!(Breakdown {
    chunk,
    determ_wait,
    barrier_wait,
    commit,
    update,
    fault,
    lib
});

json_struct!(Counters {
    commits,
    pages_committed,
    pages_merged,
    pages_propagated,
    faults,
    token_acquisitions,
    publications,
    lock_acquires,
    barrier_waits,
    cond_waits,
    spawns,
    pool_hits,
    chunks,
    coarsened_chunks,
    lrc_pages_propagated,
    gc_versions_dropped,
    gc_versions_squashed,
    page_pool_hits
});

json_struct!(RunReport {
    virtual_cycles,
    wall,
    breakdown,
    per_thread,
    counters,
    peak_pages,
    commit_log_hash,
    schedule_hash,
    events,
    threads,
    perturb_seed,
    perturb_plan,
    panics,
    fault,
    degraded,
    replay_divergence
});

json_struct!(crate::replay::Recorded {
    path,
    events,
    schedule_hash,
    output_hash,
    validated,
    bytes
});

json_struct!(crate::replay::Replayed {
    path,
    workload,
    runtime,
    recorded_events,
    replayed_events,
    recorded_hash,
    replayed_hash,
    checkpoints_passed,
    checkpoints_total,
    output_match,
    commit_log_match,
    divergence
});

json_struct!(crate::Measured {
    benchmark,
    runtime,
    threads,
    virtual_cycles,
    peak_pages,
    validated,
    report
});

json_struct!(crate::Fig10Row {
    benchmark,
    dthreads,
    dwc,
    consequence_rr,
    consequence_ic
});

json_struct!(crate::Fig11Point {
    benchmark,
    runtime,
    threads,
    normalized
});

json_struct!(crate::Fig12Point {
    benchmark,
    runtime,
    threads,
    peak_pages
});

json_struct!(crate::Fig13Bar {
    benchmark,
    optimization,
    speedup
});

json_struct!(crate::Fig14Point {
    benchmark,
    level,
    virtual_cycles
});

json_struct!(crate::Fig15Bar {
    label,
    runtime,
    breakdown
});

json_struct!(crate::Fig16Row {
    benchmark,
    tso_pages,
    lrc_pages,
    reduction
});

json_struct!(crate::OverflowPoint {
    benchmark,
    interval,
    virtual_cycles,
    publications
});

json_struct!(crate::GcPoint {
    benchmark,
    budget,
    peak_pages,
    virtual_cycles
});

json_struct!(crate::LockDesignRow {
    benchmark,
    blocking,
    polling
});

json_struct!(crate::PoolRow {
    benchmark,
    with_pool,
    without_pool,
    pool_hits,
    speedup
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let mut s = String::new();
        write_str("a\"b\\c\nd", &mut s);
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn scalars_and_containers() {
        assert_eq!(7u64.to_json(), "7");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(vec![1u64, 2].to_json(), "[1,2]");
        assert_eq!((Tid(3), 9u64).to_json(), "[3,9]");
    }

    #[test]
    fn structs_render_as_objects() {
        let row = crate::Fig13Bar {
            benchmark: "kmeans".into(),
            optimization: "coarsening".into(),
            speedup: 2.0,
        };
        assert_eq!(
            row.to_json(),
            r#"{"benchmark":"kmeans","optimization":"coarsening","speedup":2}"#
        );
    }
}
