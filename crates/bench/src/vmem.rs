//! `bench vmem`: microbenchmarks for the Conversion commit/update hot path.
//!
//! Three experiments, emitted together as `BENCH_vmem.json` (see
//! `docs/PERF.md` for the schema and how to compare runs):
//!
//! * **merge kernel** — single-page word-wide [`conversion::merge`] against
//!   the retained byte-loop reference, across dirty densities. This pins
//!   the tentpole claim: the bitmap fast path must beat the byte loop by
//!   ≥ 2× at 10% dirty.
//! * **commit/update grid** — end-to-end [`Segment::commit`] +
//!   [`Segment::update`] throughput across thread-count × dirty-density
//!   cells, with every thread writing disjoint bytes of the *same* pages so
//!   the merge path is exercised under contention.
//! * **GC bound** — a long-running commit loop with a lagging reader,
//!   witnessing that the budgeted collector keeps the retained version
//!   count within the live-reader window instead of growing without bound
//!   (the Fig. 12 failure mode).
//! * **pipeline grid** — commit-path throughput with the asynchronous
//!   commit pipeline on versus the serial oracle, across thread-count ×
//!   dirty-density cells. The metric is *serialized critical-section
//!   time*: the token-holder's `commit+update+gc` interval, which is what
//!   bounds whole-run throughput however many cores exist. Each cell also
//!   re-checks the determinism contract — both modes must produce the
//!   same commit-log digest and the same final segment bytes.
//!
//! Wall-clock throughput numbers are machine-dependent; the *ratios*
//! (word/byte speedup, scaling across cells) and the GC bound are the
//! comparable part. Every cell reports a [`Summary`] over repetitions so
//! noise is visible in the artifact.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use conversion::{merge, Segment, PAGE_SIZE};
use dmt_api::Tid;

use crate::jsonparse::{self, Value};
use crate::stats::Summary;

/// Dirty densities (percent of page bytes modified) measured per cell.
pub const DENSITIES: [u32; 3] = [1, 10, 50];
/// Thread counts of the commit/update grid.
pub const THREADS: [usize; 3] = [1, 2, 4];
/// Thread counts of the pipeline grid (stretches past the commit grid so
/// the 8-thread acceptance row exists).
pub const PIPE_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Dirty densities of the pipeline grid.
pub const PIPE_DENSITIES: [u32; 2] = [10, 50];
/// Settle-pool workers used by the pipelined side of the grid (matches
/// the runtime presets).
pub const PIPE_WORKERS: usize = 2;

/// Format version tag of the emitted document.
pub const SCHEMA: &str = "bench-vmem/2";

/// One merge-kernel cell: word-wide path vs byte-loop baseline at a fixed
/// dirty density, single page.
#[derive(Clone, Debug)]
pub struct MergeCell {
    /// Percent of page bytes dirtied.
    pub density_pct: u32,
    /// Actual distinct bytes dirtied (density applied to 4096).
    pub dirty_bytes: usize,
    /// Word-wide path throughput, pages merged per second (mean of reps).
    pub word_pages_per_s: f64,
    /// Byte-loop baseline throughput, pages merged per second.
    pub byte_pages_per_s: f64,
    /// `word_pages_per_s / byte_pages_per_s`.
    pub speedup: f64,
    /// Per-rep spread of the word path.
    pub word_summary: Summary,
    /// Per-rep spread of the byte path.
    pub byte_summary: Summary,
}

/// One commit/update grid cell.
#[derive(Clone, Debug)]
pub struct CommitCell {
    /// Committing threads (each with its own workspace).
    pub threads: usize,
    /// Percent of each written page's bytes dirtied per chunk.
    pub density_pct: u32,
    /// Commit+update cycles per second, summed over threads.
    pub commits_per_s: f64,
    /// Dirty pages published per second, summed over threads.
    pub pages_per_s: f64,
    /// Fraction of page allocations served by the recycle pool.
    pub pool_hit_rate: f64,
    /// Per-rep spread of `pages_per_s`.
    pub summary: Summary,
}

/// One pipeline grid cell: pipelined vs serial commit-path throughput at
/// a fixed thread count × dirty density.
#[derive(Clone, Debug)]
pub struct PipelineCell {
    /// Committing threads, taking deterministic round-robin turns.
    pub threads: usize,
    /// Percent of each written page's bytes dirtied per chunk.
    pub density_pct: u32,
    /// Dirty pages published per second of *critical-section* time with
    /// the pipeline on (publish only: diff + refs + job issue).
    pub on_pages_per_s: f64,
    /// Same metric on the serial path (diff + merge + log fold + GC).
    pub off_pages_per_s: f64,
    /// `on_pages_per_s / off_pages_per_s` — how much commit-path
    /// capacity the pipeline frees.
    pub speedup: f64,
    /// Both modes produced the same commit-log digest and byte-identical
    /// final segment state.
    pub hashes_match: bool,
    /// Per-rep spread of the pipelined throughput.
    pub on_summary: Summary,
    /// Per-rep spread of the serial throughput.
    pub off_summary: Summary,
}

/// Result of the long-running commit loop under GC.
#[derive(Clone, Debug)]
pub struct GcBoundCell {
    /// Commit iterations executed.
    pub iters: usize,
    /// Collector budget per commit (versions).
    pub budget: usize,
    /// How many commits the lagging reader falls behind before updating.
    pub reader_lag: usize,
    /// Maximum retained version-chain length observed.
    pub max_retained: usize,
    /// The bound the chain must stay within: twice the reader lag.
    pub bound: usize,
    /// Whether `max_retained <= bound` held for the whole run.
    pub bounded: bool,
}

/// The complete `bench vmem` artifact.
#[derive(Clone, Debug)]
pub struct VmemReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Merge-kernel cells, one per density in [`DENSITIES`].
    pub merge: Vec<MergeCell>,
    /// Commit grid cells, [`THREADS`] × [`DENSITIES`].
    pub commit: Vec<CommitCell>,
    /// Pipeline grid cells, [`PIPE_THREADS`] × [`PIPE_DENSITIES`].
    pub pipeline: Vec<PipelineCell>,
    /// GC boundedness witness.
    pub gc: GcBoundCell,
}

crate::json_struct!(MergeCell {
    density_pct,
    dirty_bytes,
    word_pages_per_s,
    byte_pages_per_s,
    speedup,
    word_summary,
    byte_summary
});

crate::json_struct!(CommitCell {
    threads,
    density_pct,
    commits_per_s,
    pages_per_s,
    pool_hit_rate,
    summary
});

crate::json_struct!(PipelineCell {
    threads,
    density_pct,
    on_pages_per_s,
    off_pages_per_s,
    speedup,
    hashes_match,
    on_summary,
    off_summary
});

crate::json_struct!(GcBoundCell {
    iters,
    budget,
    reader_lag,
    max_retained,
    bound,
    bounded
});

crate::json_struct!(VmemReport {
    schema,
    mode,
    merge,
    commit,
    pipeline,
    gc
});

/// Knuth LCG for scattering dirty bytes; fixed seeds keep the measured
/// work identical across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }
}

fn dirty_bytes_for(pct: u32) -> usize {
    (PAGE_SIZE * pct as usize / 100).max(1)
}

type Page = Box<[u8; PAGE_SIZE]>;

/// Builds (twin, work, latest) pages with `dirty` scattered modified bytes
/// in `work` and a remote write in `latest` (forcing the contended path at
/// least once per page).
fn merge_inputs(dirty: usize, seed: u64) -> (Page, Page, Page) {
    let mut rng = Lcg(seed);
    let mut twin = Box::new([0u8; PAGE_SIZE]);
    for (i, b) in twin.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    let mut work = Box::new(*twin);
    let mut placed = 0;
    while placed < dirty {
        let i = (rng.next() as usize) % PAGE_SIZE;
        if work[i] == twin[i] {
            work[i] = twin[i].wrapping_add(1 + (rng.next() % 254) as u8);
            placed += 1;
        }
    }
    let mut latest = Box::new(*twin);
    // A remote writer touched a handful of bytes since fault time.
    for k in 0..8 {
        let i = (rng.next() as usize) % PAGE_SIZE;
        latest[i] = latest[i].wrapping_add(1 + k);
    }
    (twin, work, latest)
}

/// Measures both merge kernels at each density in [`DENSITIES`].
pub fn run_merge_kernel(smoke: bool) -> Vec<MergeCell> {
    let reps = if smoke { 2 } else { 5 };
    let iters = if smoke { 400 } else { 4_000 };
    DENSITIES
        .iter()
        .map(|&pct| {
            let dirty = dirty_bytes_for(pct);
            let (twin, work, latest) = merge_inputs(dirty, 0xC0FFEE ^ pct as u64);
            let mut out = Box::new([0u8; PAGE_SIZE]);
            let mut time_path = |word: bool| -> Vec<f64> {
                (0..reps)
                    .map(|_| {
                        let start = Instant::now();
                        let mut sink = 0usize;
                        for _ in 0..iters {
                            sink = sink.wrapping_add(if word {
                                merge::merge_into(
                                    std::hint::black_box(&twin),
                                    std::hint::black_box(&work),
                                    std::hint::black_box(&latest),
                                    &mut out,
                                )
                            } else {
                                merge::bytewise::merge_into(
                                    std::hint::black_box(&twin),
                                    std::hint::black_box(&work),
                                    std::hint::black_box(&latest),
                                    &mut out,
                                )
                            });
                            std::hint::black_box(&out);
                        }
                        std::hint::black_box(sink);
                        iters as f64 / start.elapsed().as_secs_f64()
                    })
                    .collect()
            };
            // Warm up both paths once so neither pays first-touch costs.
            let _ = time_path(true);
            let word = Summary::of(&time_path(true));
            let byte = Summary::of(&time_path(false));
            MergeCell {
                density_pct: pct,
                dirty_bytes: dirty,
                word_pages_per_s: word.mean,
                byte_pages_per_s: byte.mean,
                speedup: if byte.mean > 0.0 {
                    word.mean / byte.mean
                } else {
                    0.0
                },
                word_summary: word,
                byte_summary: byte,
            }
        })
        .collect()
}

/// Measures end-to-end commit/update throughput for one grid cell.
fn run_commit_cell(threads: usize, pct: u32, smoke: bool) -> CommitCell {
    let reps = if smoke { 2 } else { 4 };
    let iters = if smoke { 40 } else { 400 };
    let pages = if smoke { 8 } else { 32 };
    let dirty_per_page = dirty_bytes_for(pct);

    let mut samples = Vec::with_capacity(reps);
    let mut commits_per_s = 0.0;
    let mut pool_hit_rate = 0.0;
    for _ in 0..reps {
        let seg = Arc::new(Segment::new(pages, threads));
        // Commits must be serialized by the caller (the runtimes hold the
        // global token); a plain mutex stands in for it here.
        let token = Arc::new(Mutex::new(()));
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let seg = Arc::clone(&seg);
                let token = Arc::clone(&token);
                s.spawn(move || {
                    let (mut ws, _) = seg.new_workspace(Tid(t as u32));
                    let mut rng = Lcg(0xBEEF ^ t as u64);
                    let mut val = 0u8;
                    for _ in 0..iters {
                        // Scatter writes: same pages for all threads,
                        // disjoint bytes per thread (offset stripes), so
                        // later committers take the merge path.
                        for p in 0..pages {
                            for _ in 0..dirty_per_page {
                                let off = (rng.next() as usize) % (PAGE_SIZE / threads);
                                let addr = p * PAGE_SIZE + t * (PAGE_SIZE / threads) + off;
                                val = val.wrapping_add(1);
                                ws.write_bytes(addr, &[val]);
                            }
                        }
                        let guard = token.lock().unwrap();
                        seg.commit(&mut ws, None);
                        seg.update(&mut ws);
                        seg.gc(4);
                        drop(guard);
                    }
                    seg.detach(Tid(t as u32));
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let total_commits = (threads * iters) as f64;
        let total_pages = (threads * iters * pages) as f64;
        samples.push(total_pages / secs);
        commits_per_s = total_commits / secs;
        let hits = seg.tracker().pool_hits() as f64;
        let misses = seg.tracker().pool_misses() as f64;
        pool_hit_rate = if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        };
    }
    let summary = Summary::of(&samples);
    CommitCell {
        threads,
        density_pct: pct,
        commits_per_s,
        pages_per_s: summary.mean,
        pool_hit_rate,
        summary,
    }
}

/// Runs the full [`THREADS`] × [`DENSITIES`] commit grid.
pub fn run_commit_grid(smoke: bool) -> Vec<CommitCell> {
    let mut out = Vec::new();
    for &t in &THREADS {
        for &d in &DENSITIES {
            out.push(run_commit_cell(t, d, smoke));
        }
    }
    out
}

/// One timed run of the pipeline-grid workload: `threads` committers
/// take deterministic round-robin turns (a `Mutex<u64>` turn counter
/// stands in for the runtimes' global token), each turn writing striped
/// disjoint bytes of every page and then running `commit+update+gc`
/// inside the measured critical section. Returns total critical-section
/// seconds, total pages published, the commit-log digest and an FNV
/// digest of the final segment bytes.
fn run_pipeline_workload(
    threads: usize,
    pct: u32,
    iters: usize,
    pages: usize,
    pipelined: bool,
) -> (f64, f64, u64, u64) {
    let dirty_per_page = dirty_bytes_for(pct);
    let mut seg = Segment::new(pages, threads);
    if pipelined {
        seg.enable_pipeline(PIPE_WORKERS);
    }
    let seg = Arc::new(seg);
    let turn = Arc::new((Mutex::new(0u64), std::sync::Condvar::new()));
    let mut cs_nanos = 0u128;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let seg = Arc::clone(&seg);
                let turn = Arc::clone(&turn);
                s.spawn(move || {
                    let (mut ws, _) = seg.new_workspace(Tid(t as u32));
                    let mut rng = Lcg(0x91DE ^ t as u64);
                    let mut val = 0u8;
                    let mut cs = 0u128;
                    for _ in 0..iters {
                        // Isolated writes happen off the critical path in
                        // the real runtime too (chunk execution).
                        for p in 0..pages {
                            for _ in 0..dirty_per_page {
                                let off = (rng.next() as usize) % (PAGE_SIZE / threads);
                                let addr = p * PAGE_SIZE + t * (PAGE_SIZE / threads) + off;
                                val = val.wrapping_add(1);
                                ws.write_bytes(addr, &[val]);
                            }
                        }
                        let mut g = turn.0.lock().unwrap();
                        while *g % threads as u64 != t as u64 {
                            g = turn.1.wait(g).unwrap();
                        }
                        // The critical section a real run serializes on:
                        // everything the token holder does to publish.
                        // Pipelined mode includes any throttle wait — the
                        // backpressure cost is honestly on the path.
                        let t0 = Instant::now();
                        ws.set_pretwin_hint(pages);
                        seg.commit(&mut ws, None);
                        seg.update(&mut ws);
                        seg.gc(4);
                        cs += t0.elapsed().as_nanos();
                        *g += 1;
                        turn.1.notify_all();
                        drop(g);
                    }
                    seg.detach(Tid(t as u32));
                    cs
                })
            })
            .collect();
        for h in handles {
            cs_nanos += h.join().expect("bench committer panicked");
        }
    });
    let log_hash = seg.log_hash();
    let mut bytes = vec![0u8; seg.len()];
    seg.read_latest(0, &mut bytes);
    let mut h = dmt_api::Fnv1a::new();
    h.update(&bytes);
    let total_pages = (threads * iters * pages) as f64;
    (cs_nanos as f64 / 1e9, total_pages, log_hash, h.digest())
}

/// Measures one pipeline grid cell: pipelined vs serial, same scripted
/// workload, comparing throughput and the determinism digests.
fn run_pipeline_cell(threads: usize, pct: u32, smoke: bool) -> PipelineCell {
    let reps = if smoke { 2 } else { 4 };
    let iters = if smoke { 20 } else { 150 };
    let pages = if smoke { 8 } else { 16 };

    let mut on_samples = Vec::with_capacity(reps);
    let mut off_samples = Vec::with_capacity(reps);
    let mut hashes_match = true;
    for _ in 0..reps {
        let (on_secs, on_pages, on_log, on_state) =
            run_pipeline_workload(threads, pct, iters, pages, true);
        let (off_secs, off_pages, off_log, off_state) =
            run_pipeline_workload(threads, pct, iters, pages, false);
        on_samples.push(on_pages / on_secs);
        off_samples.push(off_pages / off_secs);
        hashes_match &= on_log == off_log && on_state == off_state;
    }
    let on_summary = Summary::of(&on_samples);
    let off_summary = Summary::of(&off_samples);
    PipelineCell {
        threads,
        density_pct: pct,
        on_pages_per_s: on_summary.mean,
        off_pages_per_s: off_summary.mean,
        speedup: if off_summary.mean > 0.0 {
            on_summary.mean / off_summary.mean
        } else {
            0.0
        },
        hashes_match,
        on_summary,
        off_summary,
    }
}

/// Runs the full [`PIPE_THREADS`] × [`PIPE_DENSITIES`] pipeline grid.
pub fn run_pipeline_grid(smoke: bool) -> Vec<PipelineCell> {
    let mut out = Vec::new();
    for &t in &PIPE_THREADS {
        for &d in &PIPE_DENSITIES {
            out.push(run_pipeline_cell(t, d, smoke));
        }
    }
    out
}

/// Long-running commit loop with a lagging reader: the retained version
/// chain must stay within twice the reader's lag window under the budgeted
/// collector, or memory grows without bound (Fig. 12).
pub fn run_gc_bound(smoke: bool) -> GcBoundCell {
    let iters = if smoke { 2_000 } else { 20_000 };
    let budget = 4;
    let reader_lag = 64;
    let seg = Segment::new(4, 2);
    let (mut w, _) = seg.new_workspace(Tid(0));
    let (mut r, _) = seg.new_workspace(Tid(1));
    let mut max_retained = 0;
    for i in 0..iters {
        w.write_bytes((i % 4) * PAGE_SIZE, &[i as u8]);
        seg.commit(&mut w, None);
        seg.update(&mut w);
        if i % reader_lag == reader_lag - 1 {
            seg.update(&mut r);
        }
        seg.gc(budget);
        max_retained = max_retained.max(seg.retained_versions());
    }
    let bound = 2 * reader_lag;
    GcBoundCell {
        iters,
        budget,
        reader_lag,
        max_retained,
        bound,
        bounded: max_retained <= bound,
    }
}

/// Runs every experiment and assembles the artifact.
pub fn run_vmem_bench(smoke: bool) -> VmemReport {
    VmemReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        merge: run_merge_kernel(smoke),
        commit: run_commit_grid(smoke),
        pipeline: run_pipeline_grid(smoke),
        gc: run_gc_bound(smoke),
    }
}

/// Validates an emitted `BENCH_vmem.json`: it must parse, carry the current
/// schema tag, contain every merge and commit grid cell with positive
/// throughputs (both word *and* byte numbers present), and witness a
/// bounded GC run. Returns a description of the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let v = jsonparse::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let merge = v
        .get("merge")
        .and_then(Value::as_arr)
        .ok_or("missing merge cells")?;
    for &pct in &DENSITIES {
        let cell = merge
            .iter()
            .find(|c| c.get("density_pct").and_then(Value::as_f64) == Some(pct as f64))
            .ok_or(format!("missing merge cell for density {pct}%"))?;
        for key in ["word_pages_per_s", "byte_pages_per_s", "speedup"] {
            let x = cell
                .get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("merge cell {pct}%: missing {key}"))?;
            if x <= 0.0 {
                return Err(format!("merge cell {pct}%: non-positive {key}"));
            }
        }
    }
    let commit = v
        .get("commit")
        .and_then(Value::as_arr)
        .ok_or("missing commit cells")?;
    for &t in &THREADS {
        for &pct in &DENSITIES {
            let cell = commit
                .iter()
                .find(|c| {
                    c.get("threads").and_then(Value::as_f64) == Some(t as f64)
                        && c.get("density_pct").and_then(Value::as_f64) == Some(pct as f64)
                })
                .ok_or(format!("missing commit cell for {t} threads / {pct}%"))?;
            let pps = cell
                .get("pages_per_s")
                .and_then(Value::as_f64)
                .ok_or(format!("commit cell {t}/{pct}%: missing pages_per_s"))?;
            if pps <= 0.0 {
                return Err(format!("commit cell {t}/{pct}%: non-positive pages_per_s"));
            }
        }
    }
    let mode = v.get("mode").and_then(Value::as_str).unwrap_or("");
    let pipeline = v
        .get("pipeline")
        .and_then(Value::as_arr)
        .ok_or("missing pipeline cells")?;
    for &t in &PIPE_THREADS {
        for &pct in &PIPE_DENSITIES {
            let cell = pipeline
                .iter()
                .find(|c| {
                    c.get("threads").and_then(Value::as_f64) == Some(t as f64)
                        && c.get("density_pct").and_then(Value::as_f64) == Some(pct as f64)
                })
                .ok_or(format!("missing pipeline cell for {t} threads / {pct}%"))?;
            for key in ["on_pages_per_s", "off_pages_per_s", "speedup"] {
                let x = cell
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("pipeline cell {t}/{pct}%: missing {key}"))?;
                if x <= 0.0 {
                    return Err(format!("pipeline cell {t}/{pct}%: non-positive {key}"));
                }
            }
            if cell.get("hashes_match").and_then(Value::as_bool) != Some(true) {
                return Err(format!(
                    "pipeline cell {t}/{pct}%: pipelined and serial digests diverged"
                ));
            }
            // The acceptance claim: at 8+ threads the pipeline frees at
            // least 2x commit-path capacity. Asserted only for full-mode
            // artifacts — smoke iteration counts are too short to be a
            // stable timing claim.
            if mode == "full" && t >= 8 {
                let speedup = cell.get("speedup").and_then(Value::as_f64).unwrap_or(0.0);
                if speedup < 2.0 {
                    return Err(format!(
                        "pipeline cell {t}/{pct}%: speedup {speedup:.2} < 2.0"
                    ));
                }
            }
        }
    }
    let gc = v.get("gc").ok_or("missing gc witness")?;
    if gc.get("bounded").and_then(Value::as_bool) != Some(true) {
        return Err("gc.bounded is not true: version chain outran the collector".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[test]
    fn smoke_report_passes_its_own_validation() {
        let r = run_vmem_bench(true);
        validate_report(&r.to_json()).expect("smoke artifact validates");
    }

    #[test]
    fn gc_keeps_version_chain_within_reader_window() {
        let g = run_gc_bound(true);
        assert!(
            g.bounded,
            "retained {} versions, bound {}",
            g.max_retained, g.bound
        );
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        assert!(validate_report(r#"{"schema":"bench-vmem/2"}"#).is_err());
        // The previous schema rev is rejected outright.
        assert!(validate_report(r#"{"schema":"bench-vmem/1"}"#)
            .unwrap_err()
            .contains("schema"));
        // A full document with a missing grid cell.
        let mut r = run_gc_bound_stub();
        r.merge.remove(0);
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("missing merge cell"));
        // An unbounded GC run must fail validation.
        let mut r = run_gc_bound_stub();
        r.gc.bounded = false;
        assert!(validate_report(&r.to_json()).unwrap_err().contains("gc"));
        // A determinism divergence in any pipeline cell fails validation.
        let mut r = run_gc_bound_stub();
        r.pipeline[0].hashes_match = false;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("diverged"));
        // The 2x acceptance gate applies to full-mode artifacts only.
        let mut r = run_gc_bound_stub();
        r.mode = "full".to_string();
        for c in &mut r.pipeline {
            if c.threads >= 8 {
                c.speedup = 1.5;
            }
        }
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("speedup"));
        r.mode = "smoke".to_string();
        assert!(validate_report(&r.to_json()).is_ok());
    }

    /// A structurally complete report with fabricated numbers (no timing),
    /// for validation tests that must stay fast.
    fn run_gc_bound_stub() -> VmemReport {
        let merge = DENSITIES
            .iter()
            .map(|&pct| MergeCell {
                density_pct: pct,
                dirty_bytes: dirty_bytes_for(pct),
                word_pages_per_s: 2.0,
                byte_pages_per_s: 1.0,
                speedup: 2.0,
                word_summary: Summary::of(&[2.0]),
                byte_summary: Summary::of(&[1.0]),
            })
            .collect();
        let mut commit = Vec::new();
        for &t in &THREADS {
            for &d in &DENSITIES {
                commit.push(CommitCell {
                    threads: t,
                    density_pct: d,
                    commits_per_s: 1.0,
                    pages_per_s: 1.0,
                    pool_hit_rate: 0.5,
                    summary: Summary::of(&[1.0]),
                });
            }
        }
        let mut pipeline = Vec::new();
        for &t in &PIPE_THREADS {
            for &d in &PIPE_DENSITIES {
                pipeline.push(PipelineCell {
                    threads: t,
                    density_pct: d,
                    on_pages_per_s: 4.0,
                    off_pages_per_s: 1.0,
                    speedup: 4.0,
                    hashes_match: true,
                    on_summary: Summary::of(&[4.0]),
                    off_summary: Summary::of(&[1.0]),
                });
            }
        }
        VmemReport {
            schema: SCHEMA.to_string(),
            mode: "stub".to_string(),
            merge,
            commit,
            pipeline,
            gc: GcBoundCell {
                iters: 1,
                budget: 4,
                reader_lag: 64,
                max_retained: 1,
                bound: 128,
                bounded: true,
            },
        }
    }

    #[test]
    fn merge_inputs_have_requested_density() {
        let (twin, work, _) = merge_inputs(409, 7);
        let diff = twin.iter().zip(work.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 409);
    }
}
