//! Harness regenerating the Consequence paper's evaluation (Figures 10-16).
//!
//! Each `figN` function reruns the corresponding experiment at laptop scale
//! and returns structured rows; the `figures` binary prints them and dumps
//! JSON next to the workspace (`target/figures/`). Absolute numbers are
//! virtual-cycle counts from the deterministic cost model (see `DESIGN.md`);
//! the *shapes* — who wins, by what factor, where crossovers are — are the
//! reproduction targets recorded in `EXPERIMENTS.md`.

pub mod json;
pub mod jsonparse;
pub mod replay;
pub mod sched;
pub mod shard;
pub mod soak;
pub mod stats;
pub mod vmem;

use consequence::{ConsequenceRuntime, Options};
use std::sync::Arc;

use dmt_api::{Breakdown, CommonConfig, CostModel, HashSink, RunReport, Runtime, Tid, TraceHandle};
use dmt_baselines::{make_runtime, RuntimeKind};
use dmt_workloads::{workload_by_name, Params, Validation};

/// The 19 paper benchmarks in presentation order.
pub const ALL_BENCHMARKS: [&str; 19] = [
    "histogram",
    "linear_regression",
    "string_match",
    "matrix_multiply",
    "pca",
    "kmeans",
    "word_count",
    "reverse_index",
    "ferret",
    "dedup",
    "canneal",
    "streamcluster",
    "swaptions",
    "ocean_cp",
    "lu_cb",
    "lu_ncb",
    "water_nsquared",
    "water_spatial",
    "radix",
];

/// The "most challenging" benchmarks the paper's detail figures focus on.
pub const HARD_BENCHMARKS: [&str; 8] = [
    "reverse_index",
    "ferret",
    "dedup",
    "kmeans",
    "ocean_cp",
    "lu_cb",
    "lu_ncb",
    "canneal",
];

/// Shared measurement configuration.
#[derive(Clone, Copy, Debug)]
pub struct Bench {
    /// Problem-size multiplier.
    pub scale: u32,
    /// Input seed.
    pub seed: u64,
    /// Repetitions for the nondeterministic pthreads baseline (the best
    /// run is kept, as in the paper); deterministic runtimes need one.
    pub pthreads_reps: usize,
    /// Conversion GC budget (versions per commit).
    pub gc_budget: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            scale: 1,
            seed: 42,
            pthreads_reps: 3,
            gc_budget: 4,
        }
    }
}

fn common_cfg(pages: usize, gc_budget: usize, track_lrc: bool) -> CommonConfig {
    CommonConfig {
        heap_pages: pages,
        max_threads: 64,
        cost: CostModel::default(),
        track_lrc,
        gc_budget,
        trace: TraceHandle::off(),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    }
}

/// One measured execution.
#[derive(Clone, Debug)]
pub struct Measured {
    pub benchmark: String,
    pub runtime: String,
    pub threads: usize,
    pub virtual_cycles: u64,
    pub peak_pages: usize,
    pub validated: bool,
    pub report: RunReport,
}

/// Runs `name` once under `kind` with `threads` workers.
pub fn run_one(b: &Bench, kind: RuntimeKind, name: &str, threads: usize) -> Measured {
    run_one_lrc(b, kind, name, threads, false)
}

/// Runs with optional §5.3 LRC tracking.
pub fn run_one_lrc(
    b: &Bench,
    kind: RuntimeKind,
    name: &str,
    threads: usize,
    track_lrc: bool,
) -> Measured {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let p = Params::new(threads, b.scale, b.seed);
    let mut rt = make_runtime(kind, common_cfg(w.heap_pages(&p), b.gc_budget, track_lrc));
    let prepared = w.prepare(rt.as_mut(), &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(rt.as_ref());
    Measured {
        benchmark: name.to_string(),
        runtime: kind.label().to_string(),
        threads,
        virtual_cycles: report.virtual_cycles,
        peak_pages: report.peak_pages,
        validated: v.matches_reference,
        report,
    }
}

/// Runs `name` once under `kind` with an incremental hashing trace sink
/// attached; `report.schedule_hash` and `report.events` carry the result.
/// Figure runs stay untraced — this path exists for certification
/// (`figures certify`) and the determinism-matrix tests.
pub fn run_one_traced(b: &Bench, kind: RuntimeKind, name: &str, threads: usize) -> Measured {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let p = Params::new(threads, b.scale, b.seed);
    let mut cfg = common_cfg(w.heap_pages(&p), b.gc_budget, false);
    cfg.trace = TraceHandle::to(Arc::new(HashSink::new()));
    let mut rt = make_runtime(kind, cfg);
    let prepared = w.prepare(rt.as_mut(), &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(rt.as_ref());
    Measured {
        benchmark: name.to_string(),
        runtime: kind.label().to_string(),
        threads,
        virtual_cycles: report.virtual_cycles,
        peak_pages: report.peak_pages,
        validated: v.matches_reference,
        report,
    }
}

/// Runs `name` under Consequence with explicit options (ablations).
pub fn run_one_with_options(b: &Bench, opts: Options, name: &str, threads: usize) -> Measured {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let p = Params::new(threads, b.scale, b.seed);
    let mut rt = ConsequenceRuntime::new(common_cfg(w.heap_pages(&p), b.gc_budget, false), opts);
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    let v = (prepared.validate)(&rt);
    Measured {
        benchmark: name.to_string(),
        runtime: "consequence-custom".to_string(),
        threads,
        virtual_cycles: report.virtual_cycles,
        peak_pages: report.peak_pages,
        validated: v.matches_reference,
        report,
    }
}

/// Best (minimum virtual-cycle) run across thread counts; pthreads is
/// additionally repeated per thread count and the best run kept.
pub fn best_over_threads(
    b: &Bench,
    kind: RuntimeKind,
    name: &str,
    thread_counts: &[usize],
) -> Measured {
    let reps = if kind == RuntimeKind::Pthreads {
        b.pthreads_reps
    } else {
        1
    };
    thread_counts
        .iter()
        .flat_map(|&t| std::iter::repeat_n(t, reps))
        .map(|t| run_one(b, kind, name, t))
        .min_by_key(|m| m.virtual_cycles)
        .expect("at least one thread count")
}

// ------------------------------------------------------------- Figure 10

/// One Figure 10 row: per-library best runtime normalized to pthreads.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    pub benchmark: String,
    /// Slowdown vs best pthreads, keyed like the paper's bars.
    pub dthreads: f64,
    pub dwc: f64,
    pub consequence_rr: f64,
    pub consequence_ic: f64,
}

/// Figure 10: best-over-thread-count runtime of each deterministic library
/// normalized to the best pthreads runtime, for all 19 benchmarks.
pub fn fig10(b: &Bench, thread_counts: &[usize], benchmarks: &[&str]) -> Vec<Fig10Row> {
    benchmarks
        .iter()
        .map(|&name| {
            let base = best_over_threads(b, RuntimeKind::Pthreads, name, thread_counts)
                .virtual_cycles as f64;
            let norm =
                |kind| best_over_threads(b, kind, name, thread_counts).virtual_cycles as f64 / base;
            Fig10Row {
                benchmark: name.to_string(),
                dthreads: norm(RuntimeKind::DThreads),
                dwc: norm(RuntimeKind::Dwc),
                consequence_rr: norm(RuntimeKind::ConsequenceRr),
                consequence_ic: norm(RuntimeKind::ConsequenceIc),
            }
        })
        .collect()
}

// ------------------------------------------------------------- Figure 11

/// One Figure 11 point: runtime at a given thread count.
#[derive(Clone, Debug)]
pub struct Fig11Point {
    pub benchmark: String,
    pub runtime: String,
    pub threads: usize,
    pub normalized: f64,
}

/// Figure 11: runtime vs thread count (normalized to single-thread
/// pthreads) for the six scalability-problem benchmarks.
pub fn fig11(b: &Bench, thread_counts: &[usize], benchmarks: &[&str]) -> Vec<Fig11Point> {
    let mut out = Vec::new();
    for &name in benchmarks {
        let base = run_one(b, RuntimeKind::Pthreads, name, 1).virtual_cycles as f64;
        for kind in RuntimeKind::ALL {
            for &t in thread_counts {
                let m = run_one(b, kind, name, t);
                out.push(Fig11Point {
                    benchmark: name.to_string(),
                    runtime: kind.label().to_string(),
                    threads: t,
                    normalized: m.virtual_cycles as f64 / base,
                });
            }
        }
    }
    out
}

// ------------------------------------------------------------- Figure 12

/// One Figure 12 point: peak memory (pages) at a thread count.
#[derive(Clone, Debug)]
pub struct Fig12Point {
    pub benchmark: String,
    pub runtime: String,
    pub threads: usize,
    pub peak_pages: usize,
}

/// Figure 12: peak memory for Consequence vs DThreads across thread counts.
pub fn fig12(b: &Bench, thread_counts: &[usize], benchmarks: &[&str]) -> Vec<Fig12Point> {
    let mut out = Vec::new();
    for &name in benchmarks {
        for kind in [RuntimeKind::DThreads, RuntimeKind::ConsequenceIc] {
            for &t in thread_counts {
                let m = run_one(b, kind, name, t);
                out.push(Fig12Point {
                    benchmark: name.to_string(),
                    runtime: kind.label().to_string(),
                    threads: t,
                    peak_pages: m.peak_pages,
                });
            }
        }
    }
    out
}

// ------------------------------------------------------------- Figure 13

/// The five optimizations ablated in Figure 13.
pub const OPTIMIZATIONS: [&str; 5] = [
    "coarsening",
    "fast_forward",
    "parallel_barrier",
    "adaptive_overflow",
    "user_counter_read",
];

/// One Figure 13 bar: speedup contributed by one optimization.
#[derive(Clone, Debug)]
pub struct Fig13Bar {
    pub benchmark: String,
    pub optimization: String,
    /// `runtime without optimization / runtime with` (>1 = it helps).
    pub speedup: f64,
}

/// Figure 13: per-optimization speedup of Consequence-IC on the hard
/// benchmarks.
pub fn fig13(b: &Bench, threads: usize, benchmarks: &[&str]) -> Vec<Fig13Bar> {
    let mut out = Vec::new();
    for &name in benchmarks {
        let with =
            run_one_with_options(b, Options::consequence_ic(), name, threads).virtual_cycles as f64;
        for &opt in &OPTIMIZATIONS {
            let without =
                run_one_with_options(b, Options::consequence_ic().without(opt), name, threads)
                    .virtual_cycles as f64;
            out.push(Fig13Bar {
                benchmark: name.to_string(),
                optimization: opt.to_string(),
                speedup: without / with,
            });
        }
    }
    out
}

// ------------------------------------------------------------- Figure 14

/// One Figure 14 point: runtime at a coarsening level.
#[derive(Clone, Debug)]
pub struct Fig14Point {
    pub benchmark: String,
    /// Static budget in instructions, `None` = adaptive.
    pub level: Option<u64>,
    pub virtual_cycles: u64,
}

/// Figure 14: static coarsening levels vs the adaptive policy for
/// `reverse_index` and `ferret`.
pub fn fig14(b: &Bench, threads: usize, benchmarks: &[&str], levels: &[u64]) -> Vec<Fig14Point> {
    let mut out = Vec::new();
    for &name in benchmarks {
        for &lvl in levels {
            let mut o = Options::consequence_ic();
            o.static_coarsen = Some(lvl);
            let m = run_one_with_options(b, o, name, threads);
            out.push(Fig14Point {
                benchmark: name.to_string(),
                level: Some(lvl),
                virtual_cycles: m.virtual_cycles,
            });
        }
        let m = run_one_with_options(b, Options::consequence_ic(), name, threads);
        out.push(Fig14Point {
            benchmark: name.to_string(),
            level: None,
            virtual_cycles: m.virtual_cycles,
        });
    }
    out
}

// ------------------------------------------------------------- Figure 15

/// One Figure 15 stacked bar: where a benchmark's time went.
#[derive(Clone, Debug)]
pub struct Fig15Bar {
    /// `ferret_1` / `ferret_n` are split out as in the paper.
    pub label: String,
    pub runtime: String,
    pub breakdown: Breakdown,
}

/// Figure 15: virtual-time breakdown at 8 threads under pthreads, DWC and
/// Consequence-IC. `ferret` is split into its first thread (the pipeline
/// loader) and the rest.
pub fn fig15(b: &Bench, threads: usize, benchmarks: &[&str]) -> Vec<Fig15Bar> {
    let mut out = Vec::new();
    for &name in benchmarks {
        for kind in [
            RuntimeKind::Pthreads,
            RuntimeKind::Dwc,
            RuntimeKind::ConsequenceIc,
        ] {
            let m = run_one(b, kind, name, threads);
            if name == "ferret" {
                let mut first = Breakdown::default();
                let mut rest = Breakdown::default();
                for (tid, bd) in &m.report.per_thread {
                    if *tid == Tid(1) {
                        first = *bd;
                    } else {
                        rest += *bd;
                    }
                }
                out.push(Fig15Bar {
                    label: "ferret_1".into(),
                    runtime: kind.label().into(),
                    breakdown: first,
                });
                out.push(Fig15Bar {
                    label: "ferret_n".into(),
                    runtime: kind.label().into(),
                    breakdown: rest,
                });
            } else {
                out.push(Fig15Bar {
                    label: name.into(),
                    runtime: kind.label().into(),
                    breakdown: m.report.breakdown,
                });
            }
        }
    }
    out
}

// ------------------------------------------------------------- Figure 16

/// One Figure 16 pair: pages propagated under TSO vs the LRC estimate.
#[derive(Clone, Debug)]
pub struct Fig16Row {
    pub benchmark: String,
    pub tso_pages: u64,
    pub lrc_pages: u64,
    /// `1 - lrc/tso`: the fraction LRC would save.
    pub reduction: f64,
}

/// Figure 16: total pages propagated under TSO (Consequence) vs the
/// happens-before LRC estimate, for benchmarks with enough page traffic.
pub fn fig16(b: &Bench, threads: usize, benchmarks: &[&str]) -> Vec<Fig16Row> {
    benchmarks
        .iter()
        .map(|&name| {
            let m = run_one_lrc(b, RuntimeKind::ConsequenceIc, name, threads, true);
            let tso = m.report.counters.pages_propagated;
            let lrc = m.report.counters.lrc_pages_propagated;
            Fig16Row {
                benchmark: name.to_string(),
                tso_pages: tso,
                lrc_pages: lrc,
                reduction: if tso > 0 {
                    1.0 - lrc as f64 / tso as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

// --------------------------------------------------------- extra ablations

/// One point of the §3.2 overflow-interval sweep.
#[derive(Clone, Debug)]
pub struct OverflowPoint {
    pub benchmark: String,
    /// Fixed overflow interval in instructions; `None` = adaptive.
    pub interval: Option<u64>,
    pub virtual_cycles: u64,
    pub publications: u64,
}

/// The Kendo trade-off the paper's §3.2 adapts away: a low fixed overflow
/// interval costs interrupt overhead, a high one costs notification
/// latency. Sweeping it shows the U-shape that the adaptive policy sits
/// under.
pub fn overflow_sweep(
    b: &Bench,
    threads: usize,
    name: &str,
    intervals: &[u64],
) -> Vec<OverflowPoint> {
    let mut out = Vec::new();
    for &iv in intervals {
        let mut o = Options::consequence_ic();
        o.adaptive_overflow = false;
        o.base_overflow = iv;
        let m = run_one_with_options(b, o, name, threads);
        out.push(OverflowPoint {
            benchmark: name.to_string(),
            interval: Some(iv),
            virtual_cycles: m.virtual_cycles,
            publications: m.report.counters.publications,
        });
    }
    let m = run_one_with_options(b, Options::consequence_ic(), name, threads);
    out.push(OverflowPoint {
        benchmark: name.to_string(),
        interval: None,
        virtual_cycles: m.virtual_cycles,
        publications: m.report.counters.publications,
    });
    out
}

/// One point of the GC-budget sweep behind Figure 12.
#[derive(Clone, Debug)]
pub struct GcPoint {
    pub benchmark: String,
    /// Versions the collector may reclaim per commit (`u64::MAX` printed
    /// as `unbounded`).
    pub budget: usize,
    pub peak_pages: usize,
    pub virtual_cycles: u64,
}

/// Sweeps the single-threaded collector's budget: the paper attributes the
/// Figure 12 blow-ups to a collector that "cannot keep up"; an idealized
/// (multi-threaded) collector corresponds to an unbounded budget.
pub fn gc_sweep(b: &Bench, threads: usize, name: &str, budgets: &[usize]) -> Vec<GcPoint> {
    budgets
        .iter()
        .map(|&budget| {
            let mut bb = *b;
            bb.gc_budget = budget;
            let m = run_one(&bb, RuntimeKind::ConsequenceIc, name, threads);
            GcPoint {
                benchmark: name.to_string(),
                budget,
                peak_pages: m.peak_pages,
                virtual_cycles: m.virtual_cycles,
            }
        })
        .collect()
}

/// One row of the §4.1 blocking-vs-polling mutex comparison.
#[derive(Clone, Debug)]
pub struct LockDesignRow {
    pub benchmark: String,
    pub blocking: u64,
    /// Kendo-style polling with the given clock increment.
    pub polling: Vec<(u64, u64)>,
}

/// §4.1: the paper's blocking deterministic mutex vs Kendo's polling
/// design, which both needs a program-specific increment and burns token
/// round trips while waiting.
pub fn lock_design(
    b: &Bench,
    threads: usize,
    benchmarks: &[&str],
    increments: &[u64],
) -> Vec<LockDesignRow> {
    benchmarks
        .iter()
        .map(|&name| {
            // Coarsening off on both sides: §4.1 compares the base lock
            // protocols, and coarsening's token retention hides contention.
            let base = Options::consequence_ic().without("coarsening");
            let blocking = run_one_with_options(b, base.clone(), name, threads).virtual_cycles;
            let polling = increments
                .iter()
                .map(|&inc| {
                    let mut o = base.clone();
                    o.polling_locks = true;
                    o.polling_increment = inc;
                    (
                        inc,
                        run_one_with_options(b, o, name, threads).virtual_cycles,
                    )
                })
                .collect();
            LockDesignRow {
                benchmark: name.to_string(),
                blocking,
                polling,
            }
        })
        .collect()
}

/// One row of the §3.3 thread-pool ablation.
#[derive(Clone, Debug)]
pub struct PoolRow {
    pub benchmark: String,
    pub with_pool: u64,
    pub without_pool: u64,
    pub pool_hits: u64,
    pub speedup: f64,
}

/// Thread reuse for fork-join programs: kmeans spawns workers every
/// iteration, so the pool replaces fork cost with an update delta.
pub fn pool_ablation(b: &Bench, threads: usize, benchmarks: &[&str]) -> Vec<PoolRow> {
    benchmarks
        .iter()
        .map(|&name| {
            let with = run_one_with_options(b, Options::consequence_ic(), name, threads);
            let without = run_one_with_options(
                b,
                Options::consequence_ic().without("thread_pool"),
                name,
                threads,
            );
            PoolRow {
                benchmark: name.to_string(),
                with_pool: with.virtual_cycles,
                without_pool: without.virtual_cycles,
                pool_hits: with.report.counters.pool_hits,
                speedup: without.virtual_cycles as f64 / with.virtual_cycles as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_validates_and_reports() {
        let b = Bench::default();
        let m = run_one(&b, RuntimeKind::ConsequenceIc, "histogram", 2);
        assert!(m.validated);
        assert!(m.virtual_cycles > 0);
        assert_eq!(m.runtime, "consequence-ic");
    }

    #[test]
    fn fig13_speedups_are_finite() {
        let b = Bench::default();
        let bars = fig13(&b, 2, &["reverse_index"]);
        assert_eq!(bars.len(), OPTIMIZATIONS.len());
        for bar in bars {
            assert!(bar.speedup.is_finite() && bar.speedup > 0.0);
        }
    }

    #[test]
    fn pool_ablation_reports_hits_for_fork_join() {
        let b = Bench::default();
        let rows = pool_ablation(&b, 2, &["kmeans"]);
        assert!(rows[0].pool_hits > 0, "kmeans must exercise the pool");
        assert!(rows[0].speedup > 0.5);
    }

    #[test]
    fn fig16_lrc_never_exceeds_tso() {
        let b = Bench::default();
        for row in fig16(&b, 2, &["ocean_cp"]) {
            assert!(
                row.lrc_pages <= row.tso_pages,
                "LRC must propagate no more than TSO: {row:?}"
            );
        }
    }
}
