//! `bench sched`: microbenchmarks for the scheduler fast path.
//!
//! Two experiments, emitted together as `BENCH_sched.json` (see
//! `docs/PERF.md` for the schema and how to compare runs):
//!
//! * **publish throughput** — raw clock publication: the lock-free
//!   [`Slots::publish`] path against the reference `Mutex<ClockTable>`
//!   path, with every thread publishing its own monotone clock stream
//!   concurrently. This isolates the global-lock cost the fast path removes
//!   from the §3.2 counter-overflow hot path.
//! * **token-handoff grid** — end-to-end lock churn through the full
//!   Consequence runtime across thread-count × lock-count cells, once under
//!   the fast scheduler (targeted parker wake-ups) and once under the
//!   reference scheduler (`notify_all` herd + all-under-one-lock table).
//!   Each cell reports nanoseconds of wall time per token grant and
//!   wakeups-per-grant (wait-loop iterations per acquisition), and asserts
//!   the two schedulers produced **bit-identical schedule hashes** — the
//!   fast path must be a pure performance change.
//!
//! Wall-clock numbers are machine-dependent; the *ratios* (fast/reference
//! speedup, wakeups-per-grant) are the comparable part. Every timed cell
//! reports a [`Summary`] over repetitions so noise is visible.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use consequence::{ConsequenceRuntime, Options};
use det_clock::{ClockTable, OrderPolicy, Slots};
use dmt_api::{CommonConfig, CostModel, HashSink, Runtime, Tid, TraceHandle};

use crate::jsonparse::{self, Value};
use crate::stats::Summary;

/// Thread counts of both grids.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Lock counts of the token-handoff grid (1 = maximal contention).
pub const LOCKS: [usize; 2] = [1, 4];

/// Format version tag of the emitted document.
pub const SCHEMA: &str = "bench-sched/1";

/// One publish-throughput cell: lock-free slots vs mutex-wrapped reference
/// table at a fixed publisher count.
#[derive(Clone, Debug)]
pub struct PublishCell {
    /// Concurrent publishing threads.
    pub threads: usize,
    /// Lock-free path, publications per second summed over threads.
    pub fast_pub_per_s: f64,
    /// Global-mutex reference path, publications per second.
    pub ref_pub_per_s: f64,
    /// `fast_pub_per_s / ref_pub_per_s`.
    pub speedup: f64,
    /// Per-rep spread of the fast path.
    pub fast_summary: Summary,
    /// Per-rep spread of the reference path.
    pub ref_summary: Summary,
}

/// One token-handoff grid cell: the same deterministic lock-churn program
/// under both schedulers.
#[derive(Clone, Debug)]
pub struct HandoffCell {
    /// Worker threads contending for the token.
    pub threads: usize,
    /// Distinct mutexes the workers cycle through.
    pub locks: usize,
    /// Token grants per run (identical across schedulers by construction).
    pub grants: u64,
    /// Fast scheduler: wall nanoseconds per token grant (best rep).
    pub fast_ns_per_handoff: f64,
    /// Reference scheduler: wall nanoseconds per token grant (best rep).
    pub ref_ns_per_handoff: f64,
    /// `ref_ns_per_handoff / fast_ns_per_handoff`.
    pub speedup: f64,
    /// Fast: wait-loop iterations per grant (~1 = each wake-up is useful).
    pub fast_wakeups_per_grant: f64,
    /// Reference: wait-loop iterations per grant (the thundering herd).
    pub ref_wakeups_per_grant: f64,
    /// Fast: targeted `notify_one` calls issued.
    pub fast_targeted_wakes: u64,
    /// Reference: `notify_all` broadcasts issued.
    pub ref_broadcast_wakes: u64,
    /// Schedule hashes and event counts agreed between the schedulers.
    pub schedules_match: bool,
    /// Per-rep spread of fast ns-per-handoff.
    pub fast_summary: Summary,
    /// Per-rep spread of reference ns-per-handoff.
    pub ref_summary: Summary,
}

/// The complete `bench sched` artifact.
#[derive(Clone, Debug)]
pub struct SchedReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Publish-throughput cells, one per count in [`THREADS`].
    pub publish: Vec<PublishCell>,
    /// Token-handoff cells, [`THREADS`] × [`LOCKS`].
    pub handoff: Vec<HandoffCell>,
}

crate::json_struct!(PublishCell {
    threads,
    fast_pub_per_s,
    ref_pub_per_s,
    speedup,
    fast_summary,
    ref_summary
});

crate::json_struct!(HandoffCell {
    threads,
    locks,
    grants,
    fast_ns_per_handoff,
    ref_ns_per_handoff,
    speedup,
    fast_wakeups_per_grant,
    ref_wakeups_per_grant,
    fast_targeted_wakes,
    ref_broadcast_wakes,
    schedules_match,
    fast_summary,
    ref_summary
});

crate::json_struct!(SchedReport {
    schema,
    mode,
    publish,
    handoff
});

// ---------------------------------------------------- publish throughput

/// Times `iters` publications per thread through the lock-free slots.
fn time_fast_publish(threads: usize, iters: u64) -> f64 {
    let slots = Slots::new(threads);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let slots = Arc::clone(&slots);
            s.spawn(move || {
                let tid = Tid(t as u32);
                for i in 0..iters {
                    std::hint::black_box(slots.publish(tid, i + 1, i));
                }
            });
        }
    });
    (threads as u64 * iters) as f64 / start.elapsed().as_secs_f64()
}

/// Times the same publication stream through the reference table behind
/// one global mutex — the structure the fast path replaces.
fn time_ref_publish(threads: usize, iters: u64) -> f64 {
    let table = Mutex::new(ClockTable::new(OrderPolicy::InstructionCount, threads));
    {
        let mut t = table.lock().unwrap();
        for i in 0..threads {
            t.register(Tid(i as u32), 0, 0);
        }
    }
    let table = &table;
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let tid = Tid(t as u32);
                for i in 0..iters {
                    std::hint::black_box(table.lock().unwrap().publish(tid, i + 1, i));
                }
            });
        }
    });
    (threads as u64 * iters) as f64 / start.elapsed().as_secs_f64()
}

/// Measures both publication paths at each count in [`THREADS`].
pub fn run_publish_bench(smoke: bool) -> Vec<PublishCell> {
    let reps = if smoke { 2 } else { 5 };
    let iters: u64 = if smoke { 5_000 } else { 100_000 };
    THREADS
        .iter()
        .map(|&threads| {
            // Warm-up rep for each path, then measured reps.
            let _ = time_fast_publish(threads, iters);
            let fast: Vec<f64> = (0..reps)
                .map(|_| time_fast_publish(threads, iters))
                .collect();
            let _ = time_ref_publish(threads, iters);
            let refr: Vec<f64> = (0..reps)
                .map(|_| time_ref_publish(threads, iters))
                .collect();
            let fast_s = Summary::of(&fast);
            let ref_s = Summary::of(&refr);
            PublishCell {
                threads,
                fast_pub_per_s: fast_s.mean,
                ref_pub_per_s: ref_s.mean,
                speedup: if ref_s.mean > 0.0 {
                    fast_s.mean / ref_s.mean
                } else {
                    0.0
                },
                fast_summary: fast_s,
                ref_summary: ref_s,
            }
        })
        .collect()
}

// ---------------------------------------------------- token-handoff grid

/// One measured churn run.
struct ChurnRun {
    wall_ns: f64,
    grants: u64,
    wake_loops: u64,
    targeted: u64,
    broadcast: u64,
    schedule_hash: u64,
    schedule: Vec<(Tid, u64)>,
}

/// Runs the deterministic lock-churn program: `threads` workers each
/// perform `iters` lock → compute → unlock rounds across `locks` mutexes.
/// Every round is a token acquisition, so grants scale with the grid and
/// the token hand-off path dominates wall time.
fn run_churn(threads: usize, locks: usize, iters: u64, opts: Options) -> ChurnRun {
    let cfg = CommonConfig {
        heap_pages: 4,
        max_threads: threads + 1,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace: TraceHandle::to(Arc::new(HashSink::new())),
        perturb: dmt_api::PerturbHandle::off(),
        witness: dmt_api::WitnessHandle::off(),
    };
    let mut opts = opts;
    // Coarsening retains the token across rounds, which is exactly the
    // hand-off path we want to measure — disable it so every round pays
    // a full release/acquire.
    opts.coarsening = false;
    opts.record_schedule = true;
    let mut rt = ConsequenceRuntime::new(cfg, opts);
    let ms: Vec<_> = (0..locks).map(|_| rt.create_mutex()).collect();
    let start = Instant::now();
    let report = rt.run(Box::new(move |ctx| {
        let workers: Vec<Tid> = (0..threads)
            .map(|w| {
                let ms = ms.clone();
                ctx.spawn(Box::new(move |c| {
                    for i in 0..iters {
                        let m = ms[(w + i as usize) % ms.len()];
                        c.mutex_lock(m);
                        c.tick(64);
                        c.mutex_unlock(m);
                        c.tick(64);
                    }
                }))
            })
            .collect();
        for w in workers {
            ctx.join(w);
        }
    }));
    let wall_ns = start.elapsed().as_nanos() as f64;
    let schedule = rt.take_schedule();
    ChurnRun {
        wall_ns,
        grants: report.counters.token_acquisitions,
        wake_loops: report.counters.token_wake_loops,
        targeted: report.counters.targeted_wakes,
        broadcast: report.counters.broadcast_wakes,
        schedule_hash: report.schedule_hash,
        schedule,
    }
}

/// Measures one handoff grid cell under both schedulers.
fn run_handoff_cell(threads: usize, locks: usize, smoke: bool) -> HandoffCell {
    let reps = if smoke { 2 } else { 4 };
    let iters: u64 = if smoke { 50 } else { 400 };
    let fast_opts = Options::consequence_ic();
    let ref_opts = Options::consequence_ic().without("fast_sched");

    let mut fast_ns = Vec::with_capacity(reps);
    let mut ref_ns = Vec::with_capacity(reps);
    let mut last_fast = None;
    let mut last_ref = None;
    let mut schedules_match = true;
    for _ in 0..reps {
        let f = run_churn(threads, locks, iters, fast_opts.clone());
        let r = run_churn(threads, locks, iters, ref_opts.clone());
        // The fast scheduler must be invisible in the schedule: identical
        // token orders, hence identical hashes, every single rep.
        schedules_match &= f.schedule_hash == r.schedule_hash && f.schedule == r.schedule;
        fast_ns.push(f.wall_ns / f.grants.max(1) as f64);
        ref_ns.push(r.wall_ns / r.grants.max(1) as f64);
        last_fast = Some(f);
        last_ref = Some(r);
    }
    let f = last_fast.expect("at least one rep");
    let r = last_ref.expect("at least one rep");
    let fast_summary = Summary::of(&fast_ns);
    let ref_summary = Summary::of(&ref_ns);
    // Best-of-reps latency: scheduling noise only ever adds time.
    let fast_best = fast_summary.min;
    let ref_best = ref_summary.min;
    HandoffCell {
        threads,
        locks,
        grants: f.grants,
        fast_ns_per_handoff: fast_best,
        ref_ns_per_handoff: ref_best,
        speedup: if fast_best > 0.0 {
            ref_best / fast_best
        } else {
            0.0
        },
        fast_wakeups_per_grant: f.wake_loops as f64 / f.grants.max(1) as f64,
        ref_wakeups_per_grant: r.wake_loops as f64 / r.grants.max(1) as f64,
        fast_targeted_wakes: f.targeted,
        ref_broadcast_wakes: r.broadcast,
        schedules_match,
        fast_summary,
        ref_summary,
    }
}

/// Runs the full [`THREADS`] × [`LOCKS`] handoff grid.
pub fn run_handoff_grid(smoke: bool) -> Vec<HandoffCell> {
    let mut out = Vec::new();
    for &t in &THREADS {
        for &l in &LOCKS {
            out.push(run_handoff_cell(t, l, smoke));
        }
    }
    out
}

/// Runs every experiment and assembles the artifact.
pub fn run_sched_bench(smoke: bool) -> SchedReport {
    SchedReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        publish: run_publish_bench(smoke),
        handoff: run_handoff_grid(smoke),
    }
}

/// Validates an emitted `BENCH_sched.json`: it must parse, carry the
/// current schema tag, contain every grid cell with positive numbers, and
/// witness bit-identical schedules in every handoff cell. In `"full"` mode
/// the fast path must additionally beat the reference scheduler on
/// token-handoff latency at ≥ 4 threads with wakeups-per-grant ≤ 3 — the
/// tentpole acceptance numbers. Returns the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let v = jsonparse::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let full = v.get("mode").and_then(Value::as_str) == Some("full");
    let publish = v
        .get("publish")
        .and_then(Value::as_arr)
        .ok_or("missing publish cells")?;
    for &t in &THREADS {
        let cell = publish
            .iter()
            .find(|c| c.get("threads").and_then(Value::as_f64) == Some(t as f64))
            .ok_or(format!("missing publish cell for {t} threads"))?;
        for key in ["fast_pub_per_s", "ref_pub_per_s", "speedup"] {
            let x = cell
                .get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("publish cell t={t}: missing {key}"))?;
            if x <= 0.0 {
                return Err(format!("publish cell t={t}: non-positive {key}"));
            }
        }
    }
    let handoff = v
        .get("handoff")
        .and_then(Value::as_arr)
        .ok_or("missing handoff cells")?;
    for &t in &THREADS {
        for &l in &LOCKS {
            let cell = handoff
                .iter()
                .find(|c| {
                    c.get("threads").and_then(Value::as_f64) == Some(t as f64)
                        && c.get("locks").and_then(Value::as_f64) == Some(l as f64)
                })
                .ok_or(format!("missing handoff cell for {t} threads / {l} locks"))?;
            if cell.get("schedules_match").and_then(Value::as_bool) != Some(true) {
                return Err(format!(
                    "handoff cell {t}/{l}: fast and reference schedules diverged"
                ));
            }
            let get = |key: &str| {
                cell.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("handoff cell {t}/{l}: missing {key}"))
            };
            let fast_ns = get("fast_ns_per_handoff")?;
            let ref_ns = get("ref_ns_per_handoff")?;
            if fast_ns <= 0.0 || ref_ns <= 0.0 {
                return Err(format!("handoff cell {t}/{l}: non-positive latency"));
            }
            if full && t >= 4 {
                let speedup = get("speedup")?;
                if speedup <= 1.0 {
                    return Err(format!(
                        "handoff cell {t}/{l}: fast path does not beat the \
                         reference scheduler (speedup {speedup:.3})"
                    ));
                }
                let wpg = get("fast_wakeups_per_grant")?;
                if wpg > 3.0 {
                    return Err(format!(
                        "handoff cell {t}/{l}: fast wakeups-per-grant {wpg:.2} \
                         (expected ~1)"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[test]
    fn smoke_report_passes_its_own_validation() {
        let r = run_sched_bench(true);
        validate_report(&r.to_json()).expect("smoke artifact validates");
    }

    #[test]
    fn churn_schedules_are_bit_identical_across_schedulers() {
        // The cheapest end-to-end witness of the tentpole invariant,
        // independent of the stress harness.
        let c = run_handoff_cell(4, 1, true);
        assert!(c.schedules_match, "schedules diverged: {c:?}");
        assert!(c.grants > 0);
    }

    #[test]
    fn fast_scheduler_wakes_are_targeted() {
        let f = run_churn(4, 1, 50, Options::consequence_ic());
        assert!(f.targeted > 0, "no targeted wakes recorded");
        assert_eq!(f.broadcast, 0, "fast path must not broadcast");
        let r = run_churn(4, 1, 50, Options::consequence_ic().without("fast_sched"));
        assert!(r.broadcast > 0, "reference path must broadcast");
        assert_eq!(r.targeted, 0, "reference path must not target");
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        assert!(validate_report(r#"{"schema":"bench-sched/1"}"#).is_err());
        let mut r = stub_report();
        r.handoff[0].schedules_match = false;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("diverged"));
        let mut r = stub_report();
        r.mode = "full".into();
        // Find a ≥4-thread cell and make the fast path lose.
        let cell = r.handoff.iter_mut().find(|c| c.threads >= 4).unwrap();
        cell.speedup = 0.9;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("does not beat"));
    }

    /// A structurally complete report with fabricated numbers (no timing),
    /// for validation tests that must stay fast.
    fn stub_report() -> SchedReport {
        let publish = THREADS
            .iter()
            .map(|&t| PublishCell {
                threads: t,
                fast_pub_per_s: 2.0,
                ref_pub_per_s: 1.0,
                speedup: 2.0,
                fast_summary: Summary::of(&[2.0]),
                ref_summary: Summary::of(&[1.0]),
            })
            .collect();
        let mut handoff = Vec::new();
        for &t in &THREADS {
            for &l in &LOCKS {
                handoff.push(HandoffCell {
                    threads: t,
                    locks: l,
                    grants: 100,
                    fast_ns_per_handoff: 1.0,
                    ref_ns_per_handoff: 2.0,
                    speedup: 2.0,
                    fast_wakeups_per_grant: 1.0,
                    ref_wakeups_per_grant: 4.0,
                    fast_targeted_wakes: 100,
                    ref_broadcast_wakes: 100,
                    schedules_match: true,
                    fast_summary: Summary::of(&[1.0]),
                    ref_summary: Summary::of(&[2.0]),
                });
            }
        }
        SchedReport {
            schema: SCHEMA.to_string(),
            mode: "stub".to_string(),
            publish,
            handoff,
        }
    }
}
