//! Minimal JSON parser, the read-side counterpart of [`crate::json`].
//!
//! The workspace builds offline with no external dependencies, so CI's
//! artifact validation (does `BENCH_vmem.json` parse? does it contain every
//! grid cell?) cannot use `serde_json`. This recursive-descent parser
//! supports exactly the JSON the workspace emits: objects, arrays, strings
//! with the escapes [`crate::json::write_str`] produces, finite numbers,
//! booleans and `null`. It is a validator first — errors carry a byte
//! offset — and a document query tool second ([`Value::get`] /
//! [`Value::as_f64`] and friends).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// workspace emits).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (keys are sorted), which is
    /// irrelevant for validation.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup for objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: what was wrong and the byte offset it was found at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':', "expected ':' after object key")?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // The emitter only writes control characters
                            // this way; surrogate pairs are out of scope.
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is a &str, so it is already valid.
                    let start = self.i;
                    let mut end = self.i + 1;
                    while end < self.b.len() && self.b[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    if c < 0x80 {
                        end = self.i + 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ascii slice");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\nd\u0007""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{7}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 2").is_err(), "trailing characters");
        assert!(parse("nul").is_err());
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn round_trips_emitter_output() {
        use crate::json::ToJson;
        let row = crate::Fig13Bar {
            benchmark: "kmeans \"q\"".into(),
            optimization: "line1\nline2".into(),
            speedup: 2.5,
        };
        let v = parse(&row.to_json()).unwrap();
        assert_eq!(
            v.get("benchmark").and_then(Value::as_str),
            Some("kmeans \"q\"")
        );
        assert_eq!(
            v.get("optimization").and_then(Value::as_str),
            Some("line1\nline2")
        );
        assert_eq!(v.get("speedup").and_then(Value::as_f64), Some(2.5));
    }
}
