//! Shared record/replay drivers for the CLIs (`stress --record/--replay`,
//! `figures replay`) and the replay-corpus test.
//!
//! Recording runs a named workload under a Consequence preset with a
//! [`DiskSink`] attached, stamps the run's identity and digests into the
//! trace META stream, and re-validates the written container immediately.
//! Replaying opens a container, re-stages the workload it names, drives
//! the run from the recorded grant script (see `consequence::replay`) and
//! checks schedule hash, output hash and commit-log hash against the
//! recording. See `docs/REPLAY.md`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use consequence::replay::options_for_label;
use consequence::ConsequenceRuntime;
use dmt_api::{CommonConfig, CostModel, PerturbHandle, Runtime, TraceHandle};
use dmt_trace::{DiskSink, PartialTrace, Trace, TraceError, TraceMeta};
use dmt_workloads::{workload_by_name, Params, Validation};

/// A finished recording.
#[derive(Clone, Debug)]
pub struct Recorded {
    /// Where the container was written.
    pub path: String,
    /// Schedule events captured.
    pub events: u64,
    /// Schedule hash of the recorded run.
    pub schedule_hash: u64,
    /// Output hash of the recorded run.
    pub output_hash: u64,
    /// Whether the recorded run's output matched the sequential
    /// reference.
    pub validated: bool,
    /// Container size on disk, in bytes.
    pub bytes: u64,
}

/// The result of replaying one container.
#[derive(Clone, Debug)]
pub struct Replayed {
    /// The container replayed.
    pub path: String,
    /// Workload the trace names.
    pub workload: String,
    /// Runtime the trace names.
    pub runtime: String,
    /// Schedule events in the recording.
    pub recorded_events: u64,
    /// Schedule events the re-execution produced.
    pub replayed_events: u64,
    /// Recorded schedule hash.
    pub recorded_hash: u64,
    /// Re-executed schedule hash.
    pub replayed_hash: u64,
    /// Cumulative-hash checkpoints that matched.
    pub checkpoints_passed: u64,
    /// Checkpoints in the recording.
    pub checkpoints_total: u64,
    /// Whether the re-executed output hash matched the recording.
    pub output_match: bool,
    /// Whether the re-executed commit-log hash matched the recording.
    pub commit_log_match: bool,
    /// First-divergent-event diagnosis, `None` when the schedule tracked
    /// the recording exactly.
    pub divergence: Option<String>,
    /// Whether the recording was a salvaged partial trace (a crashed or
    /// torn container recovered by `Trace::salvage`).
    pub partial: bool,
    /// Partial replays: live event index at which the recovered prefix
    /// ran out (`None` when the live run ended at the prefix boundary,
    /// or for full traces).
    pub exhausted_at: Option<u64>,
    /// Partial replays: live schedule hash at the prefix boundary — must
    /// equal `recorded_hash` for bit-identical prefix reproduction.
    pub prefix_hash: Option<u64>,
    /// Partial replays: file bytes past the tear the salvage gave up on
    /// (0 for full traces).
    pub bytes_lost: u64,
}

impl Replayed {
    /// Whether the replay reproduced the recording completely. Full
    /// traces: identical schedule (length, every event, every checkpoint,
    /// final hash), identical output, identical commit log. Salvaged
    /// partials: the recovered prefix replayed bit-identically (no
    /// divergence inside it, prefix hash equal, every checkpoint passed,
    /// live run at least as long); output/commit digests are compared
    /// only when the recording carries them.
    pub fn ok(&self) -> bool {
        let schedule_ok = if self.partial {
            self.replayed_events >= self.recorded_events
                && self.prefix_hash == Some(self.recorded_hash)
        } else {
            self.recorded_events == self.replayed_events && self.recorded_hash == self.replayed_hash
        };
        self.divergence.is_none()
            && schedule_ok
            && self.checkpoints_passed == self.checkpoints_total
            && self.output_match
            && self.commit_log_match
    }
}

/// The write-ahead identity record for a recording about to start: the
/// run's full identity with the not-yet-known digests zeroed, and the
/// perturber's injected-panic triple (if any) stamped in so a salvaged
/// crashed run carries its own reproducer.
#[allow(clippy::too_many_arguments)] // mirrors TraceMeta's identity fields one-for-one
pub fn ident_meta(
    runtime: &str,
    workload: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
    heap_pages: usize,
    max_threads: usize,
    options_fingerprint: u64,
    perturb: &PerturbHandle,
) -> TraceMeta {
    let (panic_site, panic_victim, panic_nth) = perturb
        .panic_triple()
        .map_or((0, 0, 0), |(s, t, n)| (s.code(), t.0 as u64, n));
    TraceMeta {
        runtime: runtime.to_string(),
        workload: workload.to_string(),
        threads: threads as u64,
        scale: scale as u64,
        input_seed,
        heap_pages: heap_pages as u64,
        max_threads: max_threads as u64,
        options_fingerprint,
        perturb_seed: perturb.seed(),
        perturb_plan: perturb.plan_digest(),
        event_count: 0,   // stamped by the writer at finish
        schedule_hash: 0, // stamped by the writer at finish
        commit_log_hash: 0,
        output_hash: 0,
        checkpoint_interval: 0, // stamped by the writer at finish
        panic_site,
        panic_victim,
        panic_nth,
    }
}

/// Records one workload × runtime cell into `dir`, naming the file
/// `<workload>-<runtime>-t<threads>-s<scale>.dmtrace`, and re-validates
/// the written container before returning. Recording is **crash-durable**:
/// a write-ahead identity record goes in at file start and the container
/// is flushed every `Options::trace_flush_pages` pages, so a run killed
/// mid-recording leaves a salvageable trace (`Trace::salvage`).
pub fn record_to(
    dir: &Path,
    runtime: &str,
    workload: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
) -> Result<Recorded, String> {
    record_perturbed(
        dir,
        runtime,
        workload,
        threads,
        scale,
        input_seed,
        PerturbHandle::off(),
    )
}

/// [`record_to`] with a caller-supplied perturber (timing plan and/or
/// injected panic) active during the recording. The perturber's identity
/// — seed, plan digest, panic triple — is stamped into both the
/// write-ahead identity record and the final META, so the trace remains
/// a complete reproducer.
pub fn record_perturbed(
    dir: &Path,
    runtime: &str,
    workload: &str,
    threads: usize,
    scale: u32,
    input_seed: u64,
    perturb: PerturbHandle,
) -> Result<Recorded, String> {
    let opts = options_for_label(runtime)
        .ok_or_else(|| format!("cannot record runtime {runtime:?}: not a Consequence preset"))?;
    let w = workload_by_name(workload).ok_or_else(|| format!("unknown workload {workload}"))?;
    let p = Params::new(threads, scale, input_seed);
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{workload}-{runtime}-t{threads}-s{scale}.dmtrace"));

    let heap_pages = w.heap_pages(&p);
    let max_threads = 64;
    let fingerprint = opts.fingerprint();
    let ident = ident_meta(
        runtime,
        workload,
        threads,
        scale,
        input_seed,
        heap_pages,
        max_threads,
        fingerprint,
        &perturb,
    );
    let sink = Arc::new(
        DiskSink::create_durable(&path, &ident, opts.trace_flush_pages)
            .map_err(|e| format!("create {}: {e}", path.display()))?,
    );
    let cfg = CommonConfig {
        heap_pages,
        max_threads,
        cost: CostModel::default(),
        track_lrc: false,
        gc_budget: 4,
        trace: TraceHandle::to(Arc::clone(&sink) as _),
        perturb,
        witness: dmt_api::WitnessHandle::off(),
    };
    let mut rt = ConsequenceRuntime::new(cfg, opts);
    let prepared = w.prepare(&mut rt, &p);
    let report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(&rt);

    let meta = TraceMeta {
        commit_log_hash: report.commit_log_hash,
        output_hash: v.output_hash,
        ..ident
    };
    let meta = sink
        .finish(meta)
        .map_err(|e| format!("finish {}: {e}", path.display()))?;
    // Immediate round-trip: a container we cannot re-open is useless.
    Trace::open(&path).map_err(|e| format!("re-validate {}: {e}", path.display()))?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    Ok(Recorded {
        path: path.display().to_string(),
        events: meta.event_count,
        schedule_hash: meta.schedule_hash,
        output_hash: v.output_hash,
        validated: v.matches_reference,
        bytes,
    })
}

/// Replays one container file: re-stages the workload the trace names,
/// re-executes it under the recorded grant script, and compares schedule,
/// output and commit log against the recording.
///
/// Containers that fail to open because they are torn — killed
/// mid-recording, truncated, or checksum-broken — are transparently
/// salvaged with [`Trace::salvage`] and replayed as partial traces: the
/// recovered prefix must reproduce bit-identically, and the live run
/// continuing past the recording's end is reported as clean exhaustion,
/// not divergence. Unsalvageable files (bad magic, wrong version, I/O
/// errors) still fail with the original open error.
pub fn replay_file(path: &Path) -> Result<Replayed, String> {
    let (trace, loss) = match Trace::open(path) {
        Ok(t) => (t, None),
        Err(
            e @ (TraceError::Truncated { .. }
            | TraceError::ChecksumMismatch { .. }
            | TraceError::Corrupt { .. }),
        ) => {
            // A torn container: salvage the durable prefix. Keep the
            // original open error if salvage cannot help either.
            let partial = Trace::salvage(path)
                .map_err(|s| format!("open {}: {e} (salvage failed: {s})", path.display()))?;
            if partial.trace.meta.event_count == 0 {
                return Err(format!(
                    "open {}: {e} (salvage recovered no complete events — nothing to replay)",
                    path.display()
                ));
            }
            if partial
                .trace
                .meta
                .runtime
                .starts_with(dmt_shard::record::SHARDED_LABEL_PREFIX)
            {
                return Err(format!(
                    "open {}: {e} (salvaged a sharded container; partial replay of sharded \
                     traces is unsupported)",
                    path.display()
                ));
            }
            let loss = partial.loss;
            (partial.trace, Some(loss))
        }
        Err(e) => return Err(format!("open {}: {e}", path.display())),
    };
    if trace
        .meta
        .runtime
        .starts_with(dmt_shard::record::SHARDED_LABEL_PREFIX)
    {
        // Sharded containers have no single grant script; they are
        // verified by deterministic re-execution (see dmt_shard::record).
        let r = dmt_shard::record::verify_against(&trace, path)?;
        return Ok(Replayed {
            path: r.path,
            workload: trace.meta.workload.clone(),
            runtime: trace.meta.runtime.clone(),
            recorded_events: r.recorded_events,
            replayed_events: r.replayed_events,
            recorded_hash: r.recorded_hash,
            replayed_hash: r.replayed_hash,
            checkpoints_passed: r.checkpoints_passed,
            checkpoints_total: r.checkpoints_total,
            output_match: r.output_match,
            commit_log_match: r.commit_log_match,
            divergence: r.divergence,
            partial: false,
            exhausted_at: None,
            prefix_hash: None,
            bytes_lost: 0,
        });
    }
    let w = workload_by_name(&trace.meta.workload)
        .ok_or_else(|| format!("trace names unknown workload {:?}", trace.meta.workload))?;
    let p = Params::new(
        trace.meta.threads as usize,
        trace.meta.scale as u32,
        trace.meta.input_seed,
    );
    let (mut rt, monitor) = match &loss {
        Some(l) => {
            let partial = PartialTrace {
                trace: trace.clone(),
                loss: *l,
            };
            ConsequenceRuntime::new_replaying_partial(&partial)
        }
        None => ConsequenceRuntime::new_replaying(&trace),
    }
    .map_err(|e| format!("replay {}: {e}", path.display()))?;
    let prepared = w.prepare(&mut rt, &p);
    let mut report = rt.run(prepared.job);
    let v: Validation = (prepared.validate)(&rt);
    let outcome = monitor.finish(&mut report);
    // Salvaged partials lost the finish-time digests: META carries the
    // write-ahead identity record, whose output/commit hashes are zero.
    // Compare only digests the recording actually has.
    let output_match = trace.meta.output_hash == 0 || v.output_hash == trace.meta.output_hash;
    let commit_log_match =
        trace.meta.commit_log_hash == 0 || report.commit_log_hash == trace.meta.commit_log_hash;
    Ok(Replayed {
        path: path.display().to_string(),
        workload: trace.meta.workload.clone(),
        runtime: trace.meta.runtime.clone(),
        recorded_events: outcome.recorded_events,
        replayed_events: outcome.replayed_events,
        recorded_hash: outcome.recorded_hash,
        replayed_hash: outcome.replayed_hash,
        checkpoints_passed: outcome.checkpoints_passed,
        checkpoints_total: outcome.checkpoints_total,
        output_match,
        commit_log_match,
        divergence: outcome.divergence,
        partial: outcome.partial,
        exhausted_at: outcome.exhausted_at,
        prefix_hash: outcome.prefix_hash,
        bytes_lost: loss.map_or(0, |l| l.bytes_lost),
    })
}

/// Expands `path` into the containers to replay: the file itself, or
/// every `*.dmtrace` directly inside it (sorted by name) when it is a
/// directory.
pub fn trace_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "dmtrace"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no .dmtrace files in {}", path.display()));
        }
        Ok(files)
    } else if path.exists() {
        Ok(vec![path.to_path_buf()])
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

/// One-line human rendering of a replay result.
pub fn summarize(r: &Replayed) -> String {
    let verdict = if r.ok() { "OK" } else { "DIVERGED" };
    let salvage = if r.partial {
        format!(
            " [salvaged prefix, {} bytes lost, prefix hash {}]",
            r.bytes_lost,
            r.prefix_hash
                .map_or_else(|| "unreached".to_string(), |h| format!("{h:#018x}")),
        )
    } else {
        String::new()
    };
    format!(
        "[{verdict}] {} {} {}: events {}/{} hash {:#018x}/{:#018x} checkpoints {}/{} output={} commits={}{salvage}",
        r.workload,
        r.runtime,
        r.path,
        r.replayed_events,
        r.recorded_events,
        r.replayed_hash,
        r.recorded_hash,
        r.checkpoints_passed,
        r.checkpoints_total,
        r.output_match,
        r.commit_log_match,
    )
}
