//! `bench shard`: sync-op throughput of the sharded token runtime.
//!
//! One experiment, emitted as `BENCH_shard.json` (see `docs/PERF.md`):
//! the deterministic `dmt_server` workload serving the **same request
//! stream** with the same total worker count, partitioned across 1, 2 and
//! 4 token domains. Every configuration performs the same application
//! work; what changes is how many threads contend on each token. Fewer
//! waiters per token means shorter grant wake-loops, smaller eligibility
//! scans and less queue convoying, so synchronization throughput (token
//! acquisitions per second, summed over domains) must rise with the shard
//! count — including on a single-core host, where the win is pure
//! per-sync-op overhead, not parallelism.
//!
//! Every cell also re-checks the determinism contract: repeated runs must
//! reproduce the combined schedule hash bit for bit, and every shard
//! count must end in the same final store (the mutations commute), so a
//! throughput win can never silently buy a semantic change.

use std::time::Instant;

use dmt_shard::{run_sharded_server, CaptureMode, ShardCfg};
use dmt_workloads::Params;

use crate::jsonparse::{self, Value};
use crate::stats::Summary;

/// Shard-domain counts of the scaling grid.
pub const SHARDS: [u32; 3] = [1, 2, 4];
/// Total pool workers, split evenly across the domains of each cell.
pub const TOTAL_WORKERS: usize = 8;

/// Format version tag of the emitted document.
pub const SCHEMA: &str = "bench-shard/1";

/// One scaling cell: the server under a fixed total worker count split
/// across `shards` token domains.
#[derive(Clone, Debug)]
pub struct ShardCell {
    /// Token domains.
    pub shards: usize,
    /// Pool workers per domain ([`TOTAL_WORKERS`] split evenly).
    pub workers_per_domain: usize,
    /// Client requests served (identical across cells by construction).
    pub requests: u64,
    /// Application synchronization operations: deterministic mutex
    /// acquisitions summed over domains. Near-identical across cells —
    /// the same requests take the same locks — so the throughput ratio
    /// between cells is the per-sync-op overhead ratio.
    pub sync_ops: u64,
    /// Token acquisitions summed over domains (runtime-internal grants).
    pub token_ops: u64,
    /// Sync-ops per second of the best rep.
    pub sync_ops_per_s: f64,
    /// Requests per second of the best rep.
    pub req_per_s: f64,
    /// Wall nanoseconds of the best rep.
    pub wall_ns: f64,
    /// Combined schedule hash (bit-identical across reps when
    /// `deterministic`).
    pub schedule_hash: u64,
    /// Final-store digest (identical across cells when the report's
    /// `store_invariant` holds).
    pub store_hash: u64,
    /// Every rep reproduced the combined schedule hash and output hash.
    pub deterministic: bool,
    /// Per-rep spread of sync-ops per second.
    pub summary: Summary,
}

/// The complete `bench shard` artifact.
#[derive(Clone, Debug)]
pub struct ShardBenchReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Total workers in every cell.
    pub total_workers: usize,
    /// Problem-size multiplier the cells ran at.
    pub scale: u64,
    /// Every shard count ended in the same final store.
    pub store_invariant: bool,
    /// Scaling cells, one per count in [`SHARDS`].
    pub cells: Vec<ShardCell>,
}

crate::json_struct!(ShardCell {
    shards,
    workers_per_domain,
    requests,
    sync_ops,
    token_ops,
    sync_ops_per_s,
    req_per_s,
    wall_ns,
    schedule_hash,
    store_hash,
    deterministic,
    summary
});

crate::json_struct!(ShardBenchReport {
    schema,
    mode,
    total_workers,
    scale,
    store_invariant,
    cells
});

/// Measures one shard count: `reps` timed runs of the same configuration,
/// best-of for throughput, bit-identical hashes required across reps.
fn run_cell(shards: u32, scale: u32, seed: u64, reps: usize) -> ShardCell {
    let workers = TOTAL_WORKERS / shards as usize;
    let mut cfg = ShardCfg::new(shards, workers, Params::new(workers, scale, seed));
    cfg.capture = CaptureMode::Hash;

    // Warm-up rep (page faults, allocator), then measured reps.
    let first = run_sharded_server(&cfg);
    let locks_of =
        |r: &dmt_shard::ShardReport| -> u64 { r.domains.iter().map(|d| d.lock_acquires).sum() };
    let sync_ops = locks_of(&first);
    let mut deterministic = true;
    let mut rates = Vec::with_capacity(reps);
    let mut best_wall_ns = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_sharded_server(&cfg);
        let wall_ns = t0.elapsed().as_nanos() as f64;
        deterministic &=
            r.schedule_hash == first.schedule_hash && r.output_hash == first.output_hash;
        rates.push(locks_of(&r) as f64 / (wall_ns / 1e9));
        best_wall_ns = best_wall_ns.min(wall_ns);
    }
    let summary = Summary::of(&rates);
    ShardCell {
        shards: shards as usize,
        workers_per_domain: workers,
        requests: first.requests,
        sync_ops,
        token_ops: first.sync_ops,
        sync_ops_per_s: summary.max,
        req_per_s: first.requests as f64 / (best_wall_ns / 1e9),
        wall_ns: best_wall_ns,
        schedule_hash: first.schedule_hash,
        store_hash: first.store_hash,
        deterministic,
        summary,
    }
}

/// Runs the scaling grid and assembles the artifact.
pub fn run_shard_bench(smoke: bool) -> ShardBenchReport {
    let reps = if smoke { 2 } else { 7 };
    let scale = if smoke { 1 } else { 4 };
    let seed = 42;
    let cells: Vec<ShardCell> = SHARDS
        .iter()
        .map(|&s| run_cell(s, scale, seed, reps))
        .collect();
    let store_invariant = cells.windows(2).all(|w| w[0].store_hash == w[1].store_hash);
    ShardBenchReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        total_workers: TOTAL_WORKERS,
        scale: scale as u64,
        store_invariant,
        cells,
    }
}

/// Validates an emitted `BENCH_shard.json`: it must parse, carry the
/// current schema tag, contain every shard count with positive numbers,
/// witness per-cell determinism and the cross-shard store invariant. In
/// `"full"` mode sync-op throughput must additionally increase
/// **monotonically** from 1 to 4 shards — the acceptance number for the
/// sharded-domains tentpole. Returns the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let v = jsonparse::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let full = v.get("mode").and_then(Value::as_str) == Some("full");
    if v.get("store_invariant").and_then(Value::as_bool) != Some(true) {
        return Err("final store differs across shard counts".into());
    }
    let total = v
        .get("total_workers")
        .and_then(Value::as_f64)
        .ok_or("missing total_workers")?;
    if total < 4.0 {
        return Err(format!(
            "total_workers {total} < 4: scaling claim needs contention"
        ));
    }
    let cells = v
        .get("cells")
        .and_then(Value::as_arr)
        .ok_or("missing cells")?;
    let mut prev: Option<(usize, f64)> = None;
    for &s in &SHARDS {
        let cell = cells
            .iter()
            .find(|c| c.get("shards").and_then(Value::as_f64) == Some(s as f64))
            .ok_or(format!("missing cell for {s} shards"))?;
        if cell.get("deterministic").and_then(Value::as_bool) != Some(true) {
            return Err(format!("cell {s}: repeated runs diverged"));
        }
        let get = |key: &str| {
            cell.get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("cell {s}: missing {key}"))
        };
        let rate = get("sync_ops_per_s")?;
        if rate <= 0.0 || get("sync_ops")? <= 0.0 || get("requests")? <= 0.0 {
            return Err(format!("cell {s}: non-positive throughput numbers"));
        }
        if full {
            if let Some((ps, pr)) = prev {
                if rate <= pr {
                    return Err(format!(
                        "sync-op throughput is not monotonic: {s} shards at {rate:.0}/s \
                         does not beat {ps} shards at {pr:.0}/s"
                    ));
                }
            }
        }
        prev = Some((s as usize, rate));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[test]
    fn smoke_report_passes_its_own_validation() {
        let r = run_shard_bench(true);
        validate_report(&r.to_json()).expect("smoke artifact validates");
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let mut r = stub_report();
        r.cells[1].deterministic = false;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("diverged"));
        let mut r = stub_report();
        r.store_invariant = false;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("store differs"));
        let mut r = stub_report();
        r.mode = "full".into();
        r.cells[2].sync_ops_per_s = r.cells[1].sync_ops_per_s / 2.0;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("not monotonic"));
    }

    /// A structurally complete report with fabricated numbers (no timing),
    /// for validation tests that must stay fast.
    fn stub_report() -> ShardBenchReport {
        let cells = SHARDS
            .iter()
            .enumerate()
            .map(|(i, &s)| ShardCell {
                shards: s as usize,
                workers_per_domain: TOTAL_WORKERS / s as usize,
                requests: 2000,
                sync_ops: 10_000,
                token_ops: 20_000,
                sync_ops_per_s: 1000.0 * (i + 1) as f64,
                req_per_s: 200.0 * (i + 1) as f64,
                wall_ns: 1e9,
                schedule_hash: 7 + i as u64,
                store_hash: 99,
                deterministic: true,
                summary: Summary::of(&[1000.0 * (i + 1) as f64]),
            })
            .collect();
        ShardBenchReport {
            schema: SCHEMA.to_string(),
            mode: "smoke".into(),
            total_workers: TOTAL_WORKERS,
            scale: 1,
            store_invariant: true,
            cells,
        }
    }
}
