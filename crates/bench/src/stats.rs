//! Summary statistics over repeated measurements.
//!
//! The bench binaries repeat wall-clock measurements and report a
//! [`Summary`] per cell instead of a single noisy sample. The math is
//! deliberately plain — arithmetic mean and *population* standard
//! deviation — and pinned by unit tests so the committed baselines in
//! `BENCH_vmem.json` stay comparable across toolchain updates.

/// Mean / min / max / standard deviation of a sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation (√(Σ(x-mean)²/n)).
    pub stddev: f64,
}

impl Summary {
    /// Summarizes `samples`. An empty slice yields the all-zero summary.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            min,
            max,
            stddev: var.sqrt(),
        }
    }

    /// Summarizes integer samples (convenience for cycle/page counts).
    pub fn of_u64(samples: &[u64]) -> Summary {
        let f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&f)
    }

    /// Relative spread `stddev / mean`, or 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

crate::json_struct!(Summary {
    n,
    mean,
    min,
    max,
    stddev
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_math_is_pinned_against_fixed_inputs() {
        // Hand-computed: mean = 5, min = 2, max = 9,
        // variance = ((2-5)² + (4-5)² + (9-5)²) / 3 = (9+1+16)/3 = 26/3.
        let s = Summary::of(&[2.0, 4.0, 9.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - (26.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = Summary::of(&[7.0; 5]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn empty_input_yields_zero_summary() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn u64_samples_match_f64_path() {
        assert_eq!(Summary::of_u64(&[2, 4, 9]), Summary::of(&[2.0, 4.0, 9.0]));
    }

    #[test]
    fn summary_serializes_as_json_object() {
        use crate::json::ToJson;
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(
            s.to_json(),
            r#"{"n":2,"mean":2,"min":1,"max":3,"stddev":1}"#
        );
    }
}
