//! `soak` — bounded-resource determinism at scale (`BENCH_soak.json`).
//!
//! The paper's claims are asymptotic: determinism must survive *scale*
//! (64–256 threads) and *duration* (schedules long enough that any
//! unbounded bookkeeping would show). This module drives workload kernels
//! and the `dmt_server` request workload — unsharded and across token
//! domains — in seeded soak cells. Each cell:
//!
//! 1. runs once with an unasserted [`ResourceWitness`] to learn the
//!    resource *envelope* (peak retained versions, live pages, clock
//!    history, trace-ring occupancy),
//! 2. then iterates the same seeded run under a witness asserting
//!    `envelope × ENVELOPE_SLACK + ENVELOPE_PAD` until its time budget
//!    elapses, sampling at **every commit epoch**.
//!
//! Because every iteration replays the same seed, any monotone leak —
//! version chains the collector cannot trim, pages that never return to
//! the pool, clock histories growing past their pruning watermark, a
//! trace ring that buffers instead of dropping — must cross the envelope
//! and trip the witness. Alongside the bounds, every iteration must
//! reproduce the first iteration's schedule hash bit for bit: soaking
//! re-proves determinism, not just boundedness.
//!
//! The artifact is validated by [`validate_report`] (CI gate, same
//! `--check` contract as the other `BENCH_*.json` documents). See
//! `docs/SOAK.md`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use consequence::{ConsequenceRuntime, Options};
use dmt_api::{
    CommonConfig, CostModel, HashSink, MemorySink, PerturbHandle, ResourceBounds, ResourceWitness,
    Runtime, TraceHandle, WitnessHandle,
};
use dmt_shard::{run_sharded_server_hooked, CaptureMode, DomainHooks, ShardCfg};
use dmt_workloads::{workload_by_name, Params};

use crate::jsonparse::{self, Value};

/// Format version tag of the emitted document.
pub const SCHEMA: &str = "bench-soak/1";

/// Long-phase bounds are the warm-up maxima times this…
pub const ENVELOPE_SLACK: usize = 2;
/// …plus this pad, so tiny warm-up maxima cannot produce a zero-width
/// envelope that ordinary jitter-free reruns would still trip.
pub const ENVELOPE_PAD: usize = 8;
/// Bounded trace-ring capacity of recording soak cells. The ring gauge's
/// bound in those cells is the capacity itself: a ring that buffers
/// beyond its capacity instead of dropping is a leak.
pub const RING_CAP: usize = 1 << 14;

/// Envelope transform applied to each warm-up maximum.
fn envelope(max: usize) -> usize {
    max.saturating_mul(ENVELOPE_SLACK) + ENVELOPE_PAD
}

/// What one soak cell drives.
#[derive(Clone, Debug)]
enum Drive {
    /// A registry workload on one Consequence runtime.
    Kernel {
        workload: &'static str,
        /// `true` = Consequence-RR, else Consequence-IC.
        rr: bool,
        threads: usize,
        /// Record events into a bounded ring ([`RING_CAP`]) instead of
        /// hash-only tracing, making the ring gauge live.
        record: bool,
    },
    /// The sharded request server across token domains.
    Server { shards: u32, workers: usize },
}

/// One soak cell specification.
#[derive(Clone, Debug)]
struct CellSpec {
    drive: Drive,
    seed: u64,
    scale: u32,
}

impl CellSpec {
    fn label(&self) -> (String, String, usize, bool) {
        match &self.drive {
            Drive::Kernel {
                workload,
                rr,
                threads,
                record,
            } => (
                workload.to_string(),
                if *rr {
                    "consequence-rr"
                } else {
                    "consequence-ic"
                }
                .to_string(),
                *threads,
                *record,
            ),
            Drive::Server { shards, workers } => (
                format!("dmt_server/sharded-{shards}"),
                "consequence-ic".to_string(),
                *shards as usize * (*workers + 2),
                false,
            ),
        }
    }
}

/// Witnessed resource figures of one cell (bounds asserted or maxima
/// observed), flattened for the JSON artifact.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauges {
    /// Peak retained versions on the segment's chains.
    pub retained_versions: u64,
    /// Live 4 KiB pages (heap versions + workspaces).
    pub live_pages: u64,
    /// Longest per-thread clock history.
    pub clock_history: u64,
    /// Trace-sink ring occupancy.
    pub trace_ring: u64,
    /// Commit-pipeline backlog (pending settles + pre-twinned pages).
    pub pipeline_backlog: u64,
}

crate::json_struct!(Gauges {
    retained_versions,
    live_pages,
    clock_history,
    trace_ring,
    pipeline_backlog
});

/// One soak cell of the artifact.
#[derive(Clone, Debug)]
pub struct SoakCell {
    /// Workload name (`dmt_server/sharded-N` for sharded cells).
    pub workload: String,
    /// Runtime preset the cell ran under.
    pub runtime: String,
    /// Worker threads driven (summed across domains for sharded cells).
    pub threads: usize,
    /// Whether events were recorded into a bounded ring during the soak.
    pub record: bool,
    /// Seeded iterations completed (≥ 2: first + at least one re-run).
    pub iterations: u64,
    /// Witness samples taken across every iteration (one per commit
    /// epoch plus one per-run teardown sample).
    pub samples: u64,
    /// The asserted envelope (warm-up maxima × slack + pad).
    pub bounds: Gauges,
    /// Observed maxima over the whole soak phase.
    pub maxima: Gauges,
    /// Samples that violated at least one bound (0 = leak-free).
    pub violations: u64,
    /// `violations == 0`.
    pub within_bounds: bool,
    /// Every iteration reproduced the first schedule hash bit for bit.
    pub deterministic: bool,
    /// Every iteration's final state matched the workload reference.
    pub validated: bool,
    /// The cell's (first-iteration) schedule hash.
    pub schedule_hash: u64,
    /// Wall nanoseconds the soak phase ran for.
    pub wall_ns: f64,
}

crate::json_struct!(SoakCell {
    workload,
    runtime,
    threads,
    record,
    iterations,
    samples,
    bounds,
    maxima,
    violations,
    within_bounds,
    deterministic,
    validated,
    schedule_hash,
    wall_ns
});

/// The complete `soak` artifact.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Highest thread count soaked.
    pub max_threads: usize,
    /// Every cell stayed within its envelope.
    pub all_within_bounds: bool,
    /// Every cell reproduced its schedule hash across all iterations.
    pub all_deterministic: bool,
    /// The cells.
    pub cells: Vec<SoakCell>,
}

crate::json_struct!(SoakReport {
    schema,
    mode,
    max_threads,
    all_within_bounds,
    all_deterministic,
    cells
});

/// What one iteration reports back to the cell driver.
struct IterResult {
    schedule_hash: u64,
    output_hash: u64,
    validated: bool,
}

/// One seeded iteration of a cell, observed by `witness`.
fn run_iter(spec: &CellSpec, witness: &WitnessHandle) -> IterResult {
    match &spec.drive {
        Drive::Kernel {
            workload,
            rr,
            threads,
            record,
        } => {
            let w = workload_by_name(workload)
                .unwrap_or_else(|| panic!("unknown soak workload {workload}"));
            let p = Params::new(*threads, spec.scale, spec.seed);
            let trace = if *record {
                TraceHandle::to(Arc::new(MemorySink::new(RING_CAP)))
            } else {
                TraceHandle::to(Arc::new(HashSink::new()))
            };
            let cfg = CommonConfig {
                heap_pages: w.heap_pages(&p),
                max_threads: threads + 2,
                cost: CostModel::default(),
                track_lrc: false,
                gc_budget: 4,
                trace,
                perturb: PerturbHandle::off(),
                witness: witness.clone(),
            };
            let opts = if *rr {
                Options::consequence_rr()
            } else {
                Options::consequence_ic()
            };
            let mut rt = ConsequenceRuntime::new(cfg, opts);
            let prepared = w.prepare(&mut rt, &p);
            let report = rt.run(prepared.job);
            let v = (prepared.validate)(&rt);
            IterResult {
                schedule_hash: report.schedule_hash,
                output_hash: report.commit_log_hash,
                validated: v.matches_reference,
            }
        }
        Drive::Server { shards, workers } => {
            let mut cfg = ShardCfg::new(
                *shards,
                *workers,
                Params::new(*workers, spec.scale, spec.seed),
            );
            cfg.capture = CaptureMode::Hash;
            let hooks = DomainHooks {
                perturb: Vec::new(),
                witness: vec![witness.clone(); *shards as usize],
                tolerate_losses: false,
            };
            let r = run_sharded_server_hooked(&cfg, &hooks);
            IterResult {
                schedule_hash: r.schedule_hash,
                output_hash: r.store_hash,
                validated: r.complete,
            }
        }
    }
}

fn gauges_of(s: dmt_api::ResourceSample) -> Gauges {
    Gauges {
        retained_versions: s.retained_versions as u64,
        live_pages: s.live_pages as u64,
        clock_history: s.clock_history as u64,
        trace_ring: s.trace_ring as u64,
        pipeline_backlog: s.pipeline_backlog as u64,
    }
}

/// Soaks one cell: learn the envelope, then iterate under it until
/// `budget` elapses (always at least two witnessed iterations).
fn run_cell(spec: &CellSpec, budget: Duration) -> SoakCell {
    // Phase 1: envelope discovery, nothing asserted.
    let probe = ResourceWitness::new(ResourceBounds::unbounded());
    run_iter(spec, &WitnessHandle::to(Arc::clone(&probe)));
    let m = probe.summary().maxima;
    let ring_bound = match &spec.drive {
        Drive::Kernel { record: true, .. } => RING_CAP,
        _ => envelope(m.trace_ring),
    };
    let bounds = ResourceBounds {
        max_retained_versions: envelope(m.retained_versions),
        max_live_pages: envelope(m.live_pages),
        max_clock_history: envelope(m.clock_history),
        max_trace_ring: ring_bound,
        // The settle-queue component of the backlog gauge is wall-clock
        // dependent (it measures how far the pool lags, not anything the
        // schedule fixes), but backpressure caps it at MAX_PENDING jobs.
        // Add that cap verbatim so a probe run that caught an unusually
        // drained queue cannot under-bound the soak.
        max_pipeline_backlog: envelope(m.pipeline_backlog) + conversion::MAX_PENDING as usize,
    };

    // Phase 2: the soak proper.
    let witness = ResourceWitness::new(bounds);
    let h = WitnessHandle::to(Arc::clone(&witness));
    let t0 = Instant::now();
    let first = run_iter(spec, &h);
    let mut iterations = 1u64;
    let mut deterministic = true;
    let mut validated = first.validated;
    while t0.elapsed() < budget || iterations < 2 {
        let r = run_iter(spec, &h);
        deterministic &=
            r.schedule_hash == first.schedule_hash && r.output_hash == first.output_hash;
        validated &= r.validated;
        iterations += 1;
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let s = witness.summary();
    let (workload, runtime, threads, record) = spec.label();
    SoakCell {
        workload,
        runtime,
        threads,
        record,
        iterations,
        samples: s.samples,
        bounds: Gauges {
            retained_versions: bounds.max_retained_versions as u64,
            live_pages: bounds.max_live_pages as u64,
            clock_history: bounds.max_clock_history as u64,
            trace_ring: bounds.max_trace_ring as u64,
            pipeline_backlog: bounds.max_pipeline_backlog as u64,
        },
        maxima: gauges_of(s.maxima),
        violations: s.violation_count,
        within_bounds: s.within_bounds(),
        deterministic,
        validated,
        schedule_hash: first.schedule_hash,
        wall_ns,
    }
}

/// The soak grid. Smoke keeps the ≥ 64-thread cells and short budgets;
/// full stretches to 256 threads and multi-minute total duration.
fn cell_specs(smoke: bool) -> Vec<CellSpec> {
    let kernel = |workload, rr, threads, record| CellSpec {
        drive: Drive::Kernel {
            workload,
            rr,
            threads,
            record,
        },
        seed: 42,
        scale: 1,
    };
    let mut v = vec![
        // The paper's thread-count axis, on cheap kernels.
        kernel("histogram", false, 64, false),
        kernel("string_match", true, 64, false),
        // Live trace ring during the soak: the ring gauge is asserted at
        // its capacity — buffering beyond it would be a leak.
        kernel("histogram", false, 64, true),
        // The request server, unsharded and across 4 token domains.
        kernel("dmt_server", false, 64, false),
        CellSpec {
            drive: Drive::Server {
                shards: 4,
                workers: 16,
            },
            seed: 42,
            scale: 1,
        },
    ];
    if !smoke {
        v.push(kernel("word_count", false, 128, false));
        v.push(kernel("matrix_multiply", false, 128, false));
        v.push(kernel("histogram", false, 256, false));
        v.push(kernel("string_match", false, 256, true));
        v.push(CellSpec {
            drive: Drive::Server {
                shards: 8,
                workers: 12,
            },
            seed: 42,
            scale: 1,
        });
    }
    v
}

/// Runs the soak grid and assembles the artifact.
pub fn run_soak_bench(smoke: bool) -> SoakReport {
    let budget = if smoke {
        Duration::from_millis(700)
    } else {
        Duration::from_secs(15)
    };
    let cells: Vec<SoakCell> = cell_specs(smoke)
        .iter()
        .map(|spec| run_cell(spec, budget))
        .collect();
    SoakReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        max_threads: cells.iter().map(|c| c.threads).max().unwrap_or(0),
        all_within_bounds: cells.iter().all(|c| c.within_bounds),
        all_deterministic: cells.iter().all(|c| c.deterministic),
        cells,
    }
}

/// Validates an emitted `BENCH_soak.json`: it must parse, carry the
/// current schema tag, soak at least one ≥ 64-thread cell (≥ 256 in full
/// mode), include a recording cell and a sharded-server cell, and every
/// cell must be within bounds, deterministic across iterations, validated
/// against the workload reference, and actually sampled. Returns the
/// first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let v = jsonparse::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let full = v.get("mode").and_then(Value::as_str) == Some("full");
    for key in ["all_within_bounds", "all_deterministic"] {
        if v.get(key).and_then(Value::as_bool) != Some(true) {
            return Err(format!("{key} is not true"));
        }
    }
    let need_threads = if full { 256.0 } else { 64.0 };
    let max_threads = v
        .get("max_threads")
        .and_then(Value::as_f64)
        .ok_or("missing max_threads")?;
    if max_threads < need_threads {
        return Err(format!(
            "max_threads {max_threads} < {need_threads}: the scale claim needs scale"
        ));
    }
    let cells = v
        .get("cells")
        .and_then(Value::as_arr)
        .ok_or("missing cells")?;
    if cells.is_empty() {
        return Err("no cells".into());
    }
    let mut saw_record = false;
    let mut saw_sharded = false;
    for c in cells {
        let name = c
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("cell missing workload")?;
        for key in ["within_bounds", "deterministic", "validated"] {
            if c.get(key).and_then(Value::as_bool) != Some(true) {
                return Err(format!("cell {name}: {key} is not true"));
            }
        }
        let get = |key: &str| {
            c.get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("cell {name}: missing {key}"))
        };
        if get("iterations")? < 2.0 {
            return Err(format!("cell {name}: fewer than 2 iterations"));
        }
        if get("samples")? <= 0.0 {
            return Err(format!("cell {name}: witness never sampled"));
        }
        if get("violations")? != 0.0 {
            return Err(format!("cell {name}: bound violations recorded"));
        }
        saw_record |= c.get("record").and_then(Value::as_bool) == Some(true);
        saw_sharded |= name.contains("sharded");
    }
    if !saw_record {
        return Err("no recording (trace-ring) cell".into());
    }
    if !saw_sharded {
        return Err("no sharded-server cell".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[test]
    fn smoke_report_passes_its_own_validation() {
        let r = run_soak_bench(true);
        validate_report(&r.to_json()).expect("smoke artifact validates");
        // The smoke grid still soaks the paper's minimum scale axis.
        assert!(r.max_threads >= 64);
        for c in &r.cells {
            assert!(c.samples > 0, "cell {} never sampled", c.workload);
        }
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let mut r = stub_report();
        r.cells[0].within_bounds = false;
        r.all_within_bounds = false;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("all_within_bounds"));
        let mut r = stub_report();
        r.cells[1].deterministic = false;
        r.all_deterministic = false;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("all_deterministic"));
        let mut r = stub_report();
        r.cells[2].violations = 3;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("violations"));
        let mut r = stub_report();
        r.max_threads = 32;
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("max_threads"));
        let mut r = stub_report();
        for c in &mut r.cells {
            c.record = false;
        }
        assert!(validate_report(&r.to_json())
            .unwrap_err()
            .contains("recording"));
    }

    /// A structurally complete report with fabricated numbers, for
    /// validation tests that must stay fast.
    fn stub_report() -> SoakReport {
        let cell = |workload: &str, threads: usize, record: bool| SoakCell {
            workload: workload.to_string(),
            runtime: "consequence-ic".into(),
            threads,
            record,
            iterations: 5,
            samples: 1000,
            bounds: Gauges {
                retained_versions: 20,
                live_pages: 4000,
                clock_history: 40,
                trace_ring: RING_CAP as u64,
                pipeline_backlog: 140,
            },
            maxima: Gauges {
                retained_versions: 8,
                live_pages: 1800,
                clock_history: 16,
                trace_ring: 900,
                pipeline_backlog: 66,
            },
            violations: 0,
            within_bounds: true,
            deterministic: true,
            validated: true,
            schedule_hash: 0xfeed,
            wall_ns: 1e9,
        };
        let cells = vec![
            cell("histogram", 64, false),
            cell("histogram", 64, true),
            cell("dmt_server/sharded-4", 72, false),
        ];
        SoakReport {
            schema: SCHEMA.to_string(),
            mode: "smoke".into(),
            max_threads: 72,
            all_within_bounds: true,
            all_deterministic: true,
            cells,
        }
    }
}
