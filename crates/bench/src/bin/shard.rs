//! `shard` — sharded-token-domain scaling benchmarks.
//!
//! ```text
//! shard [--smoke] [--out PATH]    run the benchmarks, write the JSON artifact
//! shard --check PATH              validate an existing artifact (CI gate)
//! ```
//!
//! The full run regenerates `BENCH_shard.json` (committed at the repo root
//! as the performance baseline; always use `--release`). `--smoke` shrinks
//! repetitions for CI. `--check` parses an emitted document with the
//! in-tree JSON parser, verifies every shard count is present and
//! deterministic, that the final store is invariant across shard counts,
//! and (full mode) that sync-op throughput rises monotonically from 1 to
//! 4 shards — see `docs/PERF.md` for the schema.

use std::process::ExitCode;

use dmt_bench::json::ToJson;
use dmt_bench::shard::{run_shard_bench, validate_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_shard.json");
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => return usage("--out requires a path"),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage("--check requires a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("shard: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_report(&text) {
            Ok(()) => {
                println!("{path}: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "running shard bench ({} mode)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = run_shard_bench(smoke);

    for c in &report.cells {
        eprintln!(
            "shards={} ({}x{} workers): {:>9.0} sync-ops/s  {:>8.0} req/s  \
             hash {:#018x}  {}",
            c.shards,
            c.shards,
            c.workers_per_domain,
            c.sync_ops_per_s,
            c.req_per_s,
            c.schedule_hash,
            if c.deterministic {
                "deterministic"
            } else {
                "DIVERGED"
            }
        );
    }
    eprintln!(
        "store invariant across shard counts: {}",
        report.store_invariant
    );

    let text = report.to_json();
    if let Err(e) = validate_report(&text) {
        eprintln!("shard: emitted report failed self-validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, text + "\n") {
        eprintln!("shard: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("shard: {err}");
    }
    eprintln!("usage: shard [--smoke] [--out PATH] | shard --check PATH");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
