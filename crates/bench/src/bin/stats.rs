//! Prints per-run counters for calibration work.
use dmt_baselines::RuntimeKind;
use dmt_bench::*;

fn main() {
    let b = Bench {
        pthreads_reps: 1,
        ..Bench::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        ALL_BENCHMARKS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for name in names {
        let pt = run_one(&b, RuntimeKind::Pthreads, name, 4);
        let ic = run_one(&b, RuntimeKind::ConsequenceIc, name, 4);
        let c = &ic.report.counters;
        println!("{name:<18} pthreads_v={:>10} ic_v={:>11} slow={:>5.1} tok={:>6} coarse={:>6} commits={:>6} pages={:>7} faults={:>6} pub={:>7}",
            pt.virtual_cycles, ic.virtual_cycles,
            ic.virtual_cycles as f64 / pt.virtual_cycles as f64,
            c.token_acquisitions, c.coarsened_chunks, c.commits, c.pages_committed, c.faults, c.publications);
    }
}
