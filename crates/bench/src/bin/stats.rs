//! Prints per-run counters for calibration work, plus a [`Summary`] of the
//! slowdown distribution across the selected benchmarks so calibration
//! passes have one comparable number (and its spread) instead of a wall of
//! rows.
//!
//! ```text
//! stats [--json] [BENCHMARK...]
//! ```
use dmt_baselines::RuntimeKind;
use dmt_bench::json::ToJson;
use dmt_bench::stats::Summary;
use dmt_bench::*;

fn main() {
    let b = Bench {
        pthreads_reps: 1,
        ..Bench::default()
    };
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let names: Vec<&str> = if args.is_empty() {
        ALL_BENCHMARKS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut slowdowns = Vec::with_capacity(names.len());
    for name in names {
        let pt = run_one(&b, RuntimeKind::Pthreads, name, 4);
        let ic = run_one(&b, RuntimeKind::ConsequenceIc, name, 4);
        let c = &ic.report.counters;
        let slow = ic.virtual_cycles as f64 / pt.virtual_cycles as f64;
        slowdowns.push(slow);
        println!("{name:<18} pthreads_v={:>10} ic_v={:>11} slow={slow:>5.1} tok={:>6} coarse={:>6} commits={:>6} pages={:>7} faults={:>6} pub={:>7} gc={:>5}",
            pt.virtual_cycles, ic.virtual_cycles,
            c.token_acquisitions, c.coarsened_chunks, c.commits, c.pages_committed, c.faults, c.publications,
            c.gc_versions_dropped + c.gc_versions_squashed);
    }
    let s = Summary::of(&slowdowns);
    if json {
        println!("{}", s.to_json());
    } else {
        println!(
            "slowdown over {} benchmarks: mean={:.2} min={:.2} max={:.2} stddev={:.2}",
            s.n, s.mean, s.min, s.max, s.stddev
        );
    }
}
