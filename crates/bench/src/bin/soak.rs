//! `soak` — bounded-resource determinism at scale.
//!
//! ```text
//! soak [--smoke] [--out PATH]    run the soak grid, write the JSON artifact
//! soak --check PATH              validate an existing artifact (CI gate)
//! ```
//!
//! The full run regenerates `BENCH_soak.json` (committed at the repo root;
//! always use `--release`) by soaking workload kernels and the request
//! server at 64–256 threads under asserted resource envelopes. `--smoke`
//! shrinks the grid and the per-cell time budget for CI. `--check` parses
//! an emitted document with the in-tree JSON parser and verifies every
//! cell stayed within bounds, reproduced its schedule hash across all
//! iterations, and validated against the workload reference — see
//! `docs/SOAK.md` for the schema.

use std::process::ExitCode;

use dmt_bench::json::ToJson;
use dmt_bench::soak::{run_soak_bench, validate_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_soak.json");
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => return usage("--out requires a path"),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage("--check requires a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("soak: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_report(&text) {
            Ok(()) => {
                println!("{path}: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "running soak ({} mode)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = run_soak_bench(smoke);

    for c in &report.cells {
        eprintln!(
            "{:<24} {:<15} {:>4} threads: {:>3} iters  {:>7} samples  \
             peak {}v/{}p/{}h/{}r  {}  {}",
            c.workload,
            c.runtime,
            c.threads,
            c.iterations,
            c.samples,
            c.maxima.retained_versions,
            c.maxima.live_pages,
            c.maxima.clock_history,
            c.maxima.trace_ring,
            if c.within_bounds { "bounded" } else { "LEAKED" },
            if c.deterministic {
                "deterministic"
            } else {
                "DIVERGED"
            }
        );
    }
    eprintln!(
        "max threads {}; all bounded: {}; all deterministic: {}",
        report.max_threads, report.all_within_bounds, report.all_deterministic
    );

    let text = report.to_json();
    if let Err(e) = validate_report(&text) {
        eprintln!("soak: emitted report failed self-validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, text + "\n") {
        eprintln!("soak: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("soak: {err}");
    }
    eprintln!("usage: soak [--smoke] [--out PATH] | soak --check PATH");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
