//! `sched` — scheduler fast-path microbenchmarks.
//!
//! ```text
//! sched [--smoke] [--out PATH]    run the benchmarks, write the JSON artifact
//! sched --check PATH              validate an existing artifact (CI gate)
//! ```
//!
//! The full run regenerates `BENCH_sched.json` (committed at the repo root
//! as the performance baseline; always use `--release`). `--smoke` shrinks
//! iteration counts for CI. `--check` parses an emitted document with the
//! in-tree JSON parser, verifies every grid cell is present, that fast and
//! reference schedules matched bit-for-bit, and (full mode) that the fast
//! path wins at ≥ 4 threads — see `docs/PERF.md` for the schema.

use std::process::ExitCode;

use dmt_bench::json::ToJson;
use dmt_bench::sched::{run_sched_bench, validate_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_sched.json");
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => return usage("--out requires a path"),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage("--check requires a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sched: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_report(&text) {
            Ok(()) => {
                println!("{path}: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "running sched bench ({} mode)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = run_sched_bench(smoke);

    for c in &report.publish {
        eprintln!(
            "publish t={}: fast {:>11.0} pub/s  ref {:>11.0} pub/s  speedup {:.2}x",
            c.threads, c.fast_pub_per_s, c.ref_pub_per_s, c.speedup
        );
    }
    for c in &report.handoff {
        eprintln!(
            "handoff t={} locks={}: fast {:>8.0} ns/grant ({:.2} wakes)  \
             ref {:>8.0} ns/grant ({:.2} wakes)  speedup {:.2}x  schedules {}",
            c.threads,
            c.locks,
            c.fast_ns_per_handoff,
            c.fast_wakeups_per_grant,
            c.ref_ns_per_handoff,
            c.ref_wakeups_per_grant,
            c.speedup,
            if c.schedules_match {
                "match"
            } else {
                "DIVERGED"
            }
        );
    }

    let text = report.to_json();
    if let Err(e) = validate_report(&text) {
        eprintln!("sched: emitted report failed self-validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, text + "\n") {
        eprintln!("sched: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("sched: {err}");
    }
    eprintln!("usage: sched [--smoke] [--out PATH] | sched --check PATH");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
