//! CLI regenerating the paper's figures.
//!
//! ```text
//! cargo run -p dmt-bench --release --bin figures -- all
//! cargo run -p dmt-bench --release --bin figures -- fig10 [--quick]
//! cargo run -p dmt-bench --release --bin figures -- replay [traces..]
//! ```
//!
//! Prints the rows/series each figure reports and writes JSON to
//! `target/figures/figN.json`. The `certify` command prints each
//! deterministic runtime's schedule hash (see `docs/DETERMINISM.md`) so
//! recorded experiment runs are self-certifying. The `replay` command
//! re-executes recorded `.dmtrace` containers (default: `tests/corpus/`)
//! and fails on any schedule or output divergence (see `docs/REPLAY.md`).

use std::fs;
use std::time::Instant;

use dmt_bench::json::ToJson;
use dmt_bench::*;

fn dump<T: ToJson>(name: &str, rows: &T) {
    let dir = "target/figures";
    let _ = fs::create_dir_all(dir);
    let path = format!("{dir}/{name}.json");
    if fs::write(&path, rows.to_json()).is_ok() {
        eprintln!("  [json: {path}]");
    }
}

struct Cfg {
    bench: Bench,
    threads_sweep: Vec<usize>,
    detail_threads: usize,
}

fn cfg(quick: bool) -> Cfg {
    if quick {
        Cfg {
            bench: Bench {
                pthreads_reps: 1,
                ..Bench::default()
            },
            threads_sweep: vec![2, 4],
            detail_threads: 4,
        }
    } else {
        Cfg {
            bench: Bench::default(),
            threads_sweep: vec![1, 2, 4, 8],
            detail_threads: 8,
        }
    }
}

fn fig10_cmd(c: &Cfg) {
    let sweep: Vec<usize> = c
        .threads_sweep
        .iter()
        .copied()
        .filter(|t| *t >= 2)
        .collect();
    println!("== Figure 10: runtime normalized to pthreads (best over {sweep:?} threads)");
    println!(
        "{:<18} {:>9} {:>9} {:>15} {:>15}",
        "benchmark", "dthreads", "dwc", "consequence-rr", "consequence-ic"
    );
    let rows = fig10(&c.bench, &sweep, &ALL_BENCHMARKS);
    for r in &rows {
        println!(
            "{:<18} {:>9.2} {:>9.2} {:>15.2} {:>15.2}",
            r.benchmark, r.dthreads, r.dwc, r.consequence_rr, r.consequence_ic
        );
    }
    let max = |f: fn(&Fig10Row) -> f64| rows.iter().map(f).fold(0.0f64, f64::max);
    println!(
        "max slowdown: dthreads {:.1}x  dwc {:.1}x  cons-rr {:.1}x  cons-ic {:.1}x",
        max(|r| r.dthreads),
        max(|r| r.dwc),
        max(|r| r.consequence_rr),
        max(|r| r.consequence_ic)
    );
    // The paper's headline: mean improvement on the five most challenging
    // programs (those with the highest dthreads slowdown).
    let mut hard: Vec<&Fig10Row> = rows.iter().collect();
    hard.sort_by(|a, b| b.dthreads.total_cmp(&a.dthreads));
    let hard = &hard[..5.min(hard.len())];
    let mean = |f: fn(&Fig10Row) -> f64| hard.iter().map(|r| f(r)).sum::<f64>() / hard.len() as f64;
    println!(
        "five hardest ({}): IC improves {:.1}x over dthreads, {:.1}x over dwc",
        hard.iter()
            .map(|r| r.benchmark.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        mean(|r| r.dthreads) / mean(|r| r.consequence_ic),
        mean(|r| r.dwc) / mean(|r| r.consequence_ic),
    );
    dump("fig10", &rows);
}

fn fig11_cmd(c: &Cfg) {
    let benches = [
        "ocean_cp",
        "lu_ncb",
        "ferret",
        "kmeans",
        "water_nsquared",
        "canneal",
    ];
    println!("== Figure 11: runtime (normalized to 1-thread pthreads) vs thread count");
    let pts = fig11(&c.bench, &c.threads_sweep, &benches);
    for name in benches {
        println!("-- {name}");
        print!("{:<16}", "runtime\\threads");
        for t in &c.threads_sweep {
            print!("{t:>8}");
        }
        println!();
        for kind in [
            "pthreads",
            "dthreads",
            "dwc",
            "consequence-rr",
            "consequence-ic",
        ] {
            print!("{kind:<16}");
            for t in &c.threads_sweep {
                let p = pts
                    .iter()
                    .find(|p| p.benchmark == name && p.runtime == kind && p.threads == *t)
                    .unwrap();
                print!("{:>8.2}", p.normalized);
            }
            println!();
        }
    }
    dump("fig11", &pts);
}

fn fig12_cmd(c: &Cfg) {
    let benches = ["canneal", "lu_ncb", "ocean_cp", "reverse_index"];
    println!("== Figure 12: peak memory (4 KiB pages), Consequence vs DThreads");
    let pts = fig12(&c.bench, &c.threads_sweep, &benches);
    for name in benches {
        println!("-- {name}");
        for kind in ["dthreads", "consequence-ic"] {
            print!("{kind:<16}");
            for t in &c.threads_sweep {
                let p = pts
                    .iter()
                    .find(|p| p.benchmark == name && p.runtime == kind && p.threads == *t)
                    .unwrap();
                print!("{:>9}", p.peak_pages);
            }
            println!();
        }
    }
    dump("fig12", &pts);
}

fn fig13_cmd(c: &Cfg) {
    println!(
        "== Figure 13: speedup of each optimization on the hard benchmarks ({} threads)",
        c.detail_threads
    );
    let bars = fig13(&c.bench, c.detail_threads, &HARD_BENCHMARKS);
    print!("{:<16}", "benchmark");
    for o in OPTIMIZATIONS {
        print!("{o:>19}");
    }
    println!();
    for name in HARD_BENCHMARKS {
        print!("{name:<16}");
        for o in OPTIMIZATIONS {
            let bar = bars
                .iter()
                .find(|x| x.benchmark == name && x.optimization == o)
                .unwrap();
            print!("{:>18.2}x", bar.speedup);
        }
        println!();
    }
    dump("fig13", &bars);
}

fn fig14_cmd(c: &Cfg) {
    let levels = [1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];
    println!(
        "== Figure 14: static coarsening levels vs adaptive ({} threads; virtual Mcycles)",
        c.detail_threads
    );
    let pts = fig14(
        &c.bench,
        c.detail_threads,
        &["reverse_index", "ferret"],
        &levels,
    );
    for name in ["reverse_index", "ferret"] {
        print!("{name:<16}");
        for p in pts.iter().filter(|p| p.benchmark == name) {
            match p.level {
                Some(l) => print!("  {}k:{:.1}", l / 1024, p.virtual_cycles as f64 / 1e6),
                None => print!("  adaptive:{:.1}", p.virtual_cycles as f64 / 1e6),
            }
        }
        println!();
    }
    dump("fig14", &pts);
}

fn fig15_cmd(c: &Cfg) {
    let benches = [
        "string_match",
        "kmeans",
        "ferret",
        "dedup",
        "reverse_index",
        "ocean_cp",
        "lu_cb",
        "lu_ncb",
        "canneal",
        "water_nsquared",
        "water_spatial",
    ];
    println!(
        "== Figure 15: time breakdown (% of total) at {} threads",
        c.detail_threads
    );
    println!(
        "{:<22}{:<16}{:>7}{:>8}{:>8}{:>8}{:>8}{:>7}{:>6}",
        "benchmark", "runtime", "chunk", "dwait", "bwait", "commit", "update", "fault", "lib"
    );
    let bars = fig15(&c.bench, c.detail_threads, &benches);
    for bar in &bars {
        let t = bar.breakdown.total().max(1) as f64;
        let pct = |x: u64| 100.0 * x as f64 / t;
        println!(
            "{:<22}{:<16}{:>6.1}%{:>7.1}%{:>7.1}%{:>7.1}%{:>7.1}%{:>6.1}%{:>5.1}%",
            bar.label,
            bar.runtime,
            pct(bar.breakdown.chunk),
            pct(bar.breakdown.determ_wait),
            pct(bar.breakdown.barrier_wait),
            pct(bar.breakdown.commit),
            pct(bar.breakdown.update),
            pct(bar.breakdown.fault),
            pct(bar.breakdown.lib),
        );
    }
    dump("fig15", &bars);
}

fn fig16_cmd(c: &Cfg) {
    // The paper uses the 12 benchmarks with ≥10K page updates.
    let benches = [
        "canneal",
        "lu_ncb",
        "lu_cb",
        "ocean_cp",
        "radix",
        "water_nsquared",
        "water_spatial",
        "kmeans",
        "streamcluster",
        "reverse_index",
        "word_count",
        "ferret",
    ];
    println!(
        "== Figure 16: pages propagated, TSO (Consequence) vs LRC estimate ({} threads)",
        c.detail_threads
    );
    println!(
        "{:<18}{:>12}{:>12}{:>12}",
        "benchmark", "tso", "lrc", "reduction"
    );
    let rows = fig16(&c.bench, c.detail_threads, &benches);
    let mut total_red = 0.0;
    for r in &rows {
        println!(
            "{:<18}{:>12}{:>12}{:>11.0}%",
            r.benchmark,
            r.tso_pages,
            r.lrc_pages,
            100.0 * r.reduction
        );
        total_red += r.reduction;
    }
    println!(
        "mean reduction: {:.0}%",
        100.0 * total_red / rows.len() as f64
    );
    dump("fig16", &rows);
}

fn extras_cmd(c: &Cfg) {
    println!(
        "== Extra ablations (DESIGN.md): overflow sweep, GC budget, thread pool ({} threads)",
        c.detail_threads
    );
    println!("-- §3.2 overflow interval sweep (kmeans): virtual Mcycles / publications");
    let pts = overflow_sweep(
        &c.bench,
        c.detail_threads,
        "kmeans",
        &[500, 2_000, 5_000, 20_000, 100_000, 1_000_000],
    );
    for p in &pts {
        match p.interval {
            Some(iv) => print!(
                "  {iv}:{:.2}M/{}",
                p.virtual_cycles as f64 / 1e6,
                p.publications
            ),
            None => print!(
                "  adaptive:{:.2}M/{}",
                p.virtual_cycles as f64 / 1e6,
                p.publications
            ),
        }
    }
    println!();
    dump("extras_overflow", &pts);

    println!("-- Conversion GC budget sweep (reverse_index): peak pages");
    let pts = gc_sweep(
        &c.bench,
        c.detail_threads,
        "reverse_index",
        &[0, 1, 4, 16, usize::MAX],
    );
    for p in &pts {
        let b = if p.budget == usize::MAX {
            "unbounded".to_string()
        } else {
            p.budget.to_string()
        };
        print!("  budget {b}: {} pages", p.peak_pages);
    }
    println!();
    dump("extras_gc", &pts);

    println!("-- §4.1 blocking vs Kendo-style polling locks (virtual Mcycles)");
    let rows = lock_design(
        &c.bench,
        c.detail_threads,
        &["water_nsquared", "reverse_index"],
        &[100, 1_000, 10_000],
    );
    for r in &rows {
        print!(
            "  {:<16} blocking:{:.1}",
            r.benchmark,
            r.blocking as f64 / 1e6
        );
        for (inc, v) in &r.polling {
            print!("  poll@{inc}:{:.1}", *v as f64 / 1e6);
        }
        println!();
    }
    dump("extras_lockdesign", &rows);

    println!("-- §3.3 thread pool ablation");
    let rows = pool_ablation(&c.bench, c.detail_threads, &["kmeans", "histogram"]);
    for r in &rows {
        println!(
            "  {:<12} with={}M without={}M hits={} speedup={:.2}x",
            r.benchmark,
            r.with_pool / 1_000_000,
            r.without_pool / 1_000_000,
            r.pool_hits,
            r.speedup
        );
    }
    dump("extras_pool", &rows);
}

/// One row of the `paper` parity table: a qualitative claim from the
/// paper's evaluation, re-checked against this reproduction's numbers.
struct ParityRow {
    figure: String,
    claim: String,
    observed: String,
    pass: bool,
}

dmt_bench::json_struct!(ParityRow {
    figure,
    claim,
    observed,
    pass
});

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (sum / n as f64).exp()
}

/// `figures paper`: the Figure 10–16 parity table. Every row re-runs the
/// corresponding experiment and checks the paper's *qualitative* claim —
/// who wins, in which direction — against this reproduction's
/// deterministic virtual-cycle numbers. Returns false if any claim fails.
fn paper_cmd(c: &Cfg) -> bool {
    println!("== paper: Figure 10-16 parity table (deterministic virtual-cycle numbers)");
    let mut rows: Vec<ParityRow> = Vec::new();
    let mut row = |figure: &str, claim: &str, observed: String, pass: bool| {
        println!(
            "{:<7} {:<58} {:<28} {}",
            figure,
            claim,
            observed,
            if pass { "ok" } else { "FAIL" }
        );
        rows.push(ParityRow {
            figure: figure.into(),
            claim: claim.into(),
            observed,
            pass,
        });
    };
    println!("{:<7} {:<58} {:<28} parity", "figure", "claim", "observed");

    // Figure 10: best-over-threads slowdown vs pthreads, all runtimes.
    let sweep: Vec<usize> = c
        .threads_sweep
        .iter()
        .copied()
        .filter(|t| *t >= 2)
        .collect();
    let f10 = fig10(&c.bench, &sweep, &HARD_BENCHMARKS);
    let g_dt = geomean(f10.iter().map(|r| r.dthreads));
    let g_dwc = geomean(f10.iter().map(|r| r.dwc));
    let g_rr = geomean(f10.iter().map(|r| r.consequence_rr));
    let g_ic = geomean(f10.iter().map(|r| r.consequence_ic));
    row(
        "fig10",
        "Consequence-IC beats DThreads on the hard benchmarks",
        format!("geomean IC {g_ic:.2}x vs DThreads {g_dt:.2}x"),
        g_ic < g_dt,
    );
    row(
        "fig10",
        "Consequence-IC beats DWC on the hard benchmarks",
        format!("geomean IC {g_ic:.2}x vs DWC {g_dwc:.2}x"),
        g_ic < g_dwc,
    );
    row(
        "fig10",
        "IC ordering no worse than RR (geomean, 2% tolerance)",
        format!("geomean IC {g_ic:.2}x vs RR {g_rr:.2}x"),
        g_ic <= 1.02 * g_rr,
    );

    // Figure 11: runtime vs thread count on the scalability-problem set.
    let f11_benches = ["ocean_cp", "lu_ncb", "kmeans", "canneal"];
    let f11 = fig11(&c.bench, &c.threads_sweep, &f11_benches);
    let tmax = *c.threads_sweep.iter().max().unwrap();
    let at = |rt: &str| {
        geomean(
            f11.iter()
                .filter(|p| p.runtime == rt && p.threads == tmax)
                .map(|p| p.normalized),
        )
    };
    let (ic_t, dt_t, dwc_t) = (at("consequence-ic"), at("dthreads"), at("dwc"));
    row(
        "fig11",
        "IC beats DThreads and DWC at the highest thread count",
        format!("@{tmax}t geomean IC {ic_t:.2} DThreads {dt_t:.2} DWC {dwc_t:.2}"),
        ic_t < dt_t && ic_t < dwc_t,
    );

    // Figure 12: peak memory must stay bounded as threads grow — the
    // collector keeps version chains trimmed, so doubling the thread
    // count must not double the page footprint.
    let f12_benches = ["canneal", "lu_ncb", "ocean_cp", "reverse_index"];
    let f12 = fig12(&c.bench, &c.threads_sweep, &f12_benches);
    let tmin = *c.threads_sweep.iter().min().unwrap();
    let pages_at = |t: usize| {
        geomean(
            f12.iter()
                .filter(|p| p.runtime == "consequence-ic" && p.threads == t)
                .map(|p| p.peak_pages as f64),
        )
    };
    let (pg_min, pg_max) = (pages_at(tmin), pages_at(tmax));
    let thread_ratio = tmax as f64 / tmin as f64;
    row(
        "fig12",
        "Consequence peak memory grows sub-linearly with threads",
        format!("geomean pages {pg_min:.0}@{tmin}t -> {pg_max:.0}@{tmax}t"),
        pg_max < thread_ratio * pg_min,
    );

    // Figure 13: the optimizations help where the paper says they do.
    let f13 = fig13(&c.bench, c.detail_threads, &HARD_BENCHMARKS);
    let best_opt = OPTIMIZATIONS
        .iter()
        .map(|o| {
            (
                o,
                geomean(
                    f13.iter()
                        .filter(|b| b.optimization == *o)
                        .map(|b| b.speedup),
                ),
            )
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    row(
        "fig13",
        "at least one optimization speeds up the hard benchmarks",
        format!("best: {} at {:.2}x geomean", best_opt.0, best_opt.1),
        best_opt.1 > 1.0,
    );

    // Figure 14: adaptive coarsening tracks the best static level.
    let levels = [1_024, 16_384, 262_144];
    let f14 = fig14(
        &c.bench,
        c.detail_threads,
        &["reverse_index", "ferret"],
        &levels,
    );
    let mut f14_ok = true;
    let mut f14_obs = String::new();
    for name in ["reverse_index", "ferret"] {
        let best_static = f14
            .iter()
            .filter(|p| p.benchmark == name && p.level.is_some())
            .map(|p| p.virtual_cycles)
            .min()
            .unwrap() as f64;
        let adaptive = f14
            .iter()
            .find(|p| p.benchmark == name && p.level.is_none())
            .unwrap()
            .virtual_cycles as f64;
        f14_ok &= adaptive <= 1.5 * best_static;
        f14_obs.push_str(&format!("{name} {:.2}x ", adaptive / best_static));
    }
    row(
        "fig14",
        "adaptive coarsening within 1.5x of the best static level",
        f14_obs.trim_end().to_string(),
        f14_ok,
    );

    // Figure 15: under Consequence the residual cost is deterministic
    // *waiting*, not the versioned-memory machinery — commit/update
    // overhead must stay a small fraction of where the time goes.
    let f15 = fig15(&c.bench, c.detail_threads, &["kmeans", "reverse_index"]);
    let share = |rt: &str, f: &dyn Fn(&dmt_api::Breakdown) -> u64| {
        let (mut w, mut t) = (0u64, 0u64);
        for b in f15.iter().filter(|b| b.runtime == rt) {
            w += f(&b.breakdown);
            t += b.breakdown.total();
        }
        w as f64 / t.max(1) as f64
    };
    let ic_wait = share("consequence-ic", &|b| b.determ_wait + b.barrier_wait);
    let ic_mem = share("consequence-ic", &|b| b.commit + b.update);
    row(
        "fig15",
        "IC residual cost is waiting, not commit/update machinery",
        format!(
            "share: wait {:.0}% vs commit+update {:.0}%",
            100.0 * ic_wait,
            100.0 * ic_mem
        ),
        ic_wait > ic_mem,
    );

    // Figure 16: the LRC study — TSO propagates more pages than the
    // happens-before lower bound, never fewer.
    let f16_benches = ["canneal", "lu_ncb", "ocean_cp", "kmeans", "word_count"];
    let f16 = fig16(&c.bench, c.detail_threads, &f16_benches);
    let sane = f16.iter().all(|r| r.lrc_pages <= r.tso_pages);
    let mean_red = f16.iter().map(|r| r.reduction).sum::<f64>() / f16.len() as f64;
    row(
        "fig16",
        "LRC estimate never exceeds TSO pages; reduction positive",
        format!("mean reduction {:.0}%", 100.0 * mean_red),
        sane && mean_red > 0.0,
    );

    dump("paper", &rows);
    let ok = rows.iter().all(|r| r.pass);
    if !ok {
        eprintln!("paper parity FAILED: a qualitative claim does not hold on this build");
    }
    ok
}

/// `figures soak`: the bounded-resource soak (see `docs/SOAK.md` and the
/// `soak` binary, which CI drives). `--quick` runs the smoke grid.
fn soak_cmd(quick: bool) -> bool {
    use dmt_bench::json::ToJson;
    println!("== soak: bounded-resource determinism at scale");
    let report = dmt_bench::soak::run_soak_bench(quick);
    for c in &report.cells {
        println!(
            "{:<24} {:>4} threads: {:>3} iters {:>8} samples  {}  {}",
            c.workload,
            c.threads,
            c.iterations,
            c.samples,
            if c.within_bounds { "bounded" } else { "LEAKED" },
            if c.deterministic {
                "deterministic"
            } else {
                "DIVERGED"
            }
        );
    }
    dump("soak", &report);
    match dmt_bench::soak::validate_report(&report.to_json()) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("soak FAILED: {e}");
            false
        }
    }
}

fn certify_cmd(c: &Cfg) -> bool {
    use dmt_baselines::RuntimeKind;
    println!(
        "== Schedule-hash certification ({} threads; see docs/DETERMINISM.md)",
        c.detail_threads
    );
    println!(
        "{:<16}{:<16}{:>20}{:>10}{:>12}",
        "benchmark", "runtime", "schedule_hash", "events", "reproduces"
    );
    let mut rows = Vec::new();
    let mut ok = true;
    for name in ["histogram", "kmeans", "reverse_index"] {
        for kind in RuntimeKind::ALL {
            let a = run_one_traced(&c.bench, kind, name, c.detail_threads);
            let b = run_one_traced(&c.bench, kind, name, c.detail_threads);
            let reproduces = a.report.schedule_hash == b.report.schedule_hash;
            if !reproduces && kind != RuntimeKind::Pthreads {
                ok = false;
            }
            println!(
                "{:<16}{:<16}{:>#20x}{:>10}{:>12}",
                name,
                kind.label(),
                a.report.schedule_hash,
                a.report.events.total(),
                if reproduces {
                    "yes"
                } else if kind == RuntimeKind::Pthreads {
                    "no (expected)"
                } else {
                    "NO — BUG"
                }
            );
            rows.push(a);
        }
    }
    dump("certify", &rows);
    if !ok {
        eprintln!(
            "certification FAILED: a deterministic runtime's schedule hash \
             varied across repetitions"
        );
    }
    ok
}

/// `figures replay [paths..]`: re-executes recorded `.dmtrace`
/// containers (default: the committed `tests/corpus/`) and checks each
/// against its recording. Returns false on any divergence.
fn replay_cmd(paths: &[&str]) -> bool {
    let paths: Vec<&str> = if paths.is_empty() {
        vec!["tests/corpus"]
    } else {
        paths.to_vec()
    };
    println!("== replay: re-executing recorded traces against the current build");
    let mut rows = Vec::new();
    let mut ok = true;
    for p in &paths {
        let files = match replay::trace_files(std::path::Path::new(p)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                ok = false;
                continue;
            }
        };
        for f in files {
            match replay::replay_file(&f) {
                Ok(r) => {
                    println!("{}", replay::summarize(&r));
                    if let Some(d) = &r.divergence {
                        println!("{d}");
                    }
                    ok &= r.ok();
                    rows.push(r);
                }
                Err(e) => {
                    println!("[FAILED] {}: {e}", f.display());
                    ok = false;
                }
            }
        }
    }
    dump("replay", &rows);
    if !ok {
        eprintln!("replay FAILED: a recorded schedule did not reproduce on this build");
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    // `replay` consumes the remaining arguments as trace paths.
    if which[0] == "replay" {
        let t0 = Instant::now();
        let ok = replay_cmd(&which[1..]);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if ok { 0 } else { 1 });
    }
    let c = cfg(quick);
    let t0 = Instant::now();
    let mut certified = true;
    for w in which {
        match w {
            "fig10" => fig10_cmd(&c),
            "fig11" => fig11_cmd(&c),
            "fig12" => fig12_cmd(&c),
            "fig13" => fig13_cmd(&c),
            "fig14" => fig14_cmd(&c),
            "fig15" => fig15_cmd(&c),
            "fig16" => fig16_cmd(&c),
            "extras" => extras_cmd(&c),
            "paper" => certified &= paper_cmd(&c),
            "soak" => certified &= soak_cmd(quick),
            "certify" => certified &= certify_cmd(&c),
            "all" => {
                fig10_cmd(&c);
                fig11_cmd(&c);
                fig12_cmd(&c);
                fig13_cmd(&c);
                fig14_cmd(&c);
                fig15_cmd(&c);
                fig16_cmd(&c);
                extras_cmd(&c);
                certified &= certify_cmd(&c);
            }
            other => {
                eprintln!(
                    "unknown figure {other}; use fig10..fig16, extras, paper, soak, \
                     certify, replay or all"
                );
                std::process::exit(2);
            }
        }
    }
    eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
    // CI gates on this: a deterministic runtime whose schedule hash varies
    // across repetitions must fail the job, not just print.
    if !certified {
        std::process::exit(1);
    }
}
