//! CLI regenerating the paper's figures.
//!
//! ```text
//! cargo run -p dmt-bench --release --bin figures -- all
//! cargo run -p dmt-bench --release --bin figures -- fig10 [--quick]
//! cargo run -p dmt-bench --release --bin figures -- replay [traces..]
//! ```
//!
//! Prints the rows/series each figure reports and writes JSON to
//! `target/figures/figN.json`. The `certify` command prints each
//! deterministic runtime's schedule hash (see `docs/DETERMINISM.md`) so
//! recorded experiment runs are self-certifying. The `replay` command
//! re-executes recorded `.dmtrace` containers (default: `tests/corpus/`)
//! and fails on any schedule or output divergence (see `docs/REPLAY.md`).

use std::fs;
use std::time::Instant;

use dmt_bench::json::ToJson;
use dmt_bench::*;

fn dump<T: ToJson>(name: &str, rows: &T) {
    let dir = "target/figures";
    let _ = fs::create_dir_all(dir);
    let path = format!("{dir}/{name}.json");
    if fs::write(&path, rows.to_json()).is_ok() {
        eprintln!("  [json: {path}]");
    }
}

struct Cfg {
    bench: Bench,
    threads_sweep: Vec<usize>,
    detail_threads: usize,
}

fn cfg(quick: bool) -> Cfg {
    if quick {
        Cfg {
            bench: Bench {
                pthreads_reps: 1,
                ..Bench::default()
            },
            threads_sweep: vec![2, 4],
            detail_threads: 4,
        }
    } else {
        Cfg {
            bench: Bench::default(),
            threads_sweep: vec![1, 2, 4, 8],
            detail_threads: 8,
        }
    }
}

fn fig10_cmd(c: &Cfg) {
    let sweep: Vec<usize> = c
        .threads_sweep
        .iter()
        .copied()
        .filter(|t| *t >= 2)
        .collect();
    println!("== Figure 10: runtime normalized to pthreads (best over {sweep:?} threads)");
    println!(
        "{:<18} {:>9} {:>9} {:>15} {:>15}",
        "benchmark", "dthreads", "dwc", "consequence-rr", "consequence-ic"
    );
    let rows = fig10(&c.bench, &sweep, &ALL_BENCHMARKS);
    for r in &rows {
        println!(
            "{:<18} {:>9.2} {:>9.2} {:>15.2} {:>15.2}",
            r.benchmark, r.dthreads, r.dwc, r.consequence_rr, r.consequence_ic
        );
    }
    let max = |f: fn(&Fig10Row) -> f64| rows.iter().map(f).fold(0.0f64, f64::max);
    println!(
        "max slowdown: dthreads {:.1}x  dwc {:.1}x  cons-rr {:.1}x  cons-ic {:.1}x",
        max(|r| r.dthreads),
        max(|r| r.dwc),
        max(|r| r.consequence_rr),
        max(|r| r.consequence_ic)
    );
    // The paper's headline: mean improvement on the five most challenging
    // programs (those with the highest dthreads slowdown).
    let mut hard: Vec<&Fig10Row> = rows.iter().collect();
    hard.sort_by(|a, b| b.dthreads.total_cmp(&a.dthreads));
    let hard = &hard[..5.min(hard.len())];
    let mean = |f: fn(&Fig10Row) -> f64| hard.iter().map(|r| f(r)).sum::<f64>() / hard.len() as f64;
    println!(
        "five hardest ({}): IC improves {:.1}x over dthreads, {:.1}x over dwc",
        hard.iter()
            .map(|r| r.benchmark.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        mean(|r| r.dthreads) / mean(|r| r.consequence_ic),
        mean(|r| r.dwc) / mean(|r| r.consequence_ic),
    );
    dump("fig10", &rows);
}

fn fig11_cmd(c: &Cfg) {
    let benches = [
        "ocean_cp",
        "lu_ncb",
        "ferret",
        "kmeans",
        "water_nsquared",
        "canneal",
    ];
    println!("== Figure 11: runtime (normalized to 1-thread pthreads) vs thread count");
    let pts = fig11(&c.bench, &c.threads_sweep, &benches);
    for name in benches {
        println!("-- {name}");
        print!("{:<16}", "runtime\\threads");
        for t in &c.threads_sweep {
            print!("{t:>8}");
        }
        println!();
        for kind in [
            "pthreads",
            "dthreads",
            "dwc",
            "consequence-rr",
            "consequence-ic",
        ] {
            print!("{kind:<16}");
            for t in &c.threads_sweep {
                let p = pts
                    .iter()
                    .find(|p| p.benchmark == name && p.runtime == kind && p.threads == *t)
                    .unwrap();
                print!("{:>8.2}", p.normalized);
            }
            println!();
        }
    }
    dump("fig11", &pts);
}

fn fig12_cmd(c: &Cfg) {
    let benches = ["canneal", "lu_ncb", "ocean_cp", "reverse_index"];
    println!("== Figure 12: peak memory (4 KiB pages), Consequence vs DThreads");
    let pts = fig12(&c.bench, &c.threads_sweep, &benches);
    for name in benches {
        println!("-- {name}");
        for kind in ["dthreads", "consequence-ic"] {
            print!("{kind:<16}");
            for t in &c.threads_sweep {
                let p = pts
                    .iter()
                    .find(|p| p.benchmark == name && p.runtime == kind && p.threads == *t)
                    .unwrap();
                print!("{:>9}", p.peak_pages);
            }
            println!();
        }
    }
    dump("fig12", &pts);
}

fn fig13_cmd(c: &Cfg) {
    println!(
        "== Figure 13: speedup of each optimization on the hard benchmarks ({} threads)",
        c.detail_threads
    );
    let bars = fig13(&c.bench, c.detail_threads, &HARD_BENCHMARKS);
    print!("{:<16}", "benchmark");
    for o in OPTIMIZATIONS {
        print!("{o:>19}");
    }
    println!();
    for name in HARD_BENCHMARKS {
        print!("{name:<16}");
        for o in OPTIMIZATIONS {
            let bar = bars
                .iter()
                .find(|x| x.benchmark == name && x.optimization == o)
                .unwrap();
            print!("{:>18.2}x", bar.speedup);
        }
        println!();
    }
    dump("fig13", &bars);
}

fn fig14_cmd(c: &Cfg) {
    let levels = [1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];
    println!(
        "== Figure 14: static coarsening levels vs adaptive ({} threads; virtual Mcycles)",
        c.detail_threads
    );
    let pts = fig14(
        &c.bench,
        c.detail_threads,
        &["reverse_index", "ferret"],
        &levels,
    );
    for name in ["reverse_index", "ferret"] {
        print!("{name:<16}");
        for p in pts.iter().filter(|p| p.benchmark == name) {
            match p.level {
                Some(l) => print!("  {}k:{:.1}", l / 1024, p.virtual_cycles as f64 / 1e6),
                None => print!("  adaptive:{:.1}", p.virtual_cycles as f64 / 1e6),
            }
        }
        println!();
    }
    dump("fig14", &pts);
}

fn fig15_cmd(c: &Cfg) {
    let benches = [
        "string_match",
        "kmeans",
        "ferret",
        "dedup",
        "reverse_index",
        "ocean_cp",
        "lu_cb",
        "lu_ncb",
        "canneal",
        "water_nsquared",
        "water_spatial",
    ];
    println!(
        "== Figure 15: time breakdown (% of total) at {} threads",
        c.detail_threads
    );
    println!(
        "{:<22}{:<16}{:>7}{:>8}{:>8}{:>8}{:>8}{:>7}{:>6}",
        "benchmark", "runtime", "chunk", "dwait", "bwait", "commit", "update", "fault", "lib"
    );
    let bars = fig15(&c.bench, c.detail_threads, &benches);
    for bar in &bars {
        let t = bar.breakdown.total().max(1) as f64;
        let pct = |x: u64| 100.0 * x as f64 / t;
        println!(
            "{:<22}{:<16}{:>6.1}%{:>7.1}%{:>7.1}%{:>7.1}%{:>7.1}%{:>6.1}%{:>5.1}%",
            bar.label,
            bar.runtime,
            pct(bar.breakdown.chunk),
            pct(bar.breakdown.determ_wait),
            pct(bar.breakdown.barrier_wait),
            pct(bar.breakdown.commit),
            pct(bar.breakdown.update),
            pct(bar.breakdown.fault),
            pct(bar.breakdown.lib),
        );
    }
    dump("fig15", &bars);
}

fn fig16_cmd(c: &Cfg) {
    // The paper uses the 12 benchmarks with ≥10K page updates.
    let benches = [
        "canneal",
        "lu_ncb",
        "lu_cb",
        "ocean_cp",
        "radix",
        "water_nsquared",
        "water_spatial",
        "kmeans",
        "streamcluster",
        "reverse_index",
        "word_count",
        "ferret",
    ];
    println!(
        "== Figure 16: pages propagated, TSO (Consequence) vs LRC estimate ({} threads)",
        c.detail_threads
    );
    println!(
        "{:<18}{:>12}{:>12}{:>12}",
        "benchmark", "tso", "lrc", "reduction"
    );
    let rows = fig16(&c.bench, c.detail_threads, &benches);
    let mut total_red = 0.0;
    for r in &rows {
        println!(
            "{:<18}{:>12}{:>12}{:>11.0}%",
            r.benchmark,
            r.tso_pages,
            r.lrc_pages,
            100.0 * r.reduction
        );
        total_red += r.reduction;
    }
    println!(
        "mean reduction: {:.0}%",
        100.0 * total_red / rows.len() as f64
    );
    dump("fig16", &rows);
}

fn extras_cmd(c: &Cfg) {
    println!(
        "== Extra ablations (DESIGN.md): overflow sweep, GC budget, thread pool ({} threads)",
        c.detail_threads
    );
    println!("-- §3.2 overflow interval sweep (kmeans): virtual Mcycles / publications");
    let pts = overflow_sweep(
        &c.bench,
        c.detail_threads,
        "kmeans",
        &[500, 2_000, 5_000, 20_000, 100_000, 1_000_000],
    );
    for p in &pts {
        match p.interval {
            Some(iv) => print!(
                "  {iv}:{:.2}M/{}",
                p.virtual_cycles as f64 / 1e6,
                p.publications
            ),
            None => print!(
                "  adaptive:{:.2}M/{}",
                p.virtual_cycles as f64 / 1e6,
                p.publications
            ),
        }
    }
    println!();
    dump("extras_overflow", &pts);

    println!("-- Conversion GC budget sweep (reverse_index): peak pages");
    let pts = gc_sweep(
        &c.bench,
        c.detail_threads,
        "reverse_index",
        &[0, 1, 4, 16, usize::MAX],
    );
    for p in &pts {
        let b = if p.budget == usize::MAX {
            "unbounded".to_string()
        } else {
            p.budget.to_string()
        };
        print!("  budget {b}: {} pages", p.peak_pages);
    }
    println!();
    dump("extras_gc", &pts);

    println!("-- §4.1 blocking vs Kendo-style polling locks (virtual Mcycles)");
    let rows = lock_design(
        &c.bench,
        c.detail_threads,
        &["water_nsquared", "reverse_index"],
        &[100, 1_000, 10_000],
    );
    for r in &rows {
        print!(
            "  {:<16} blocking:{:.1}",
            r.benchmark,
            r.blocking as f64 / 1e6
        );
        for (inc, v) in &r.polling {
            print!("  poll@{inc}:{:.1}", *v as f64 / 1e6);
        }
        println!();
    }
    dump("extras_lockdesign", &rows);

    println!("-- §3.3 thread pool ablation");
    let rows = pool_ablation(&c.bench, c.detail_threads, &["kmeans", "histogram"]);
    for r in &rows {
        println!(
            "  {:<12} with={}M without={}M hits={} speedup={:.2}x",
            r.benchmark,
            r.with_pool / 1_000_000,
            r.without_pool / 1_000_000,
            r.pool_hits,
            r.speedup
        );
    }
    dump("extras_pool", &rows);
}

fn certify_cmd(c: &Cfg) -> bool {
    use dmt_baselines::RuntimeKind;
    println!(
        "== Schedule-hash certification ({} threads; see docs/DETERMINISM.md)",
        c.detail_threads
    );
    println!(
        "{:<16}{:<16}{:>20}{:>10}{:>12}",
        "benchmark", "runtime", "schedule_hash", "events", "reproduces"
    );
    let mut rows = Vec::new();
    let mut ok = true;
    for name in ["histogram", "kmeans", "reverse_index"] {
        for kind in RuntimeKind::ALL {
            let a = run_one_traced(&c.bench, kind, name, c.detail_threads);
            let b = run_one_traced(&c.bench, kind, name, c.detail_threads);
            let reproduces = a.report.schedule_hash == b.report.schedule_hash;
            if !reproduces && kind != RuntimeKind::Pthreads {
                ok = false;
            }
            println!(
                "{:<16}{:<16}{:>#20x}{:>10}{:>12}",
                name,
                kind.label(),
                a.report.schedule_hash,
                a.report.events.total(),
                if reproduces {
                    "yes"
                } else if kind == RuntimeKind::Pthreads {
                    "no (expected)"
                } else {
                    "NO — BUG"
                }
            );
            rows.push(a);
        }
    }
    dump("certify", &rows);
    if !ok {
        eprintln!(
            "certification FAILED: a deterministic runtime's schedule hash \
             varied across repetitions"
        );
    }
    ok
}

/// `figures replay [paths..]`: re-executes recorded `.dmtrace`
/// containers (default: the committed `tests/corpus/`) and checks each
/// against its recording. Returns false on any divergence.
fn replay_cmd(paths: &[&str]) -> bool {
    let paths: Vec<&str> = if paths.is_empty() {
        vec!["tests/corpus"]
    } else {
        paths.to_vec()
    };
    println!("== replay: re-executing recorded traces against the current build");
    let mut rows = Vec::new();
    let mut ok = true;
    for p in &paths {
        let files = match replay::trace_files(std::path::Path::new(p)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                ok = false;
                continue;
            }
        };
        for f in files {
            match replay::replay_file(&f) {
                Ok(r) => {
                    println!("{}", replay::summarize(&r));
                    if let Some(d) = &r.divergence {
                        println!("{d}");
                    }
                    ok &= r.ok();
                    rows.push(r);
                }
                Err(e) => {
                    println!("[FAILED] {}: {e}", f.display());
                    ok = false;
                }
            }
        }
    }
    dump("replay", &rows);
    if !ok {
        eprintln!("replay FAILED: a recorded schedule did not reproduce on this build");
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    // `replay` consumes the remaining arguments as trace paths.
    if which[0] == "replay" {
        let t0 = Instant::now();
        let ok = replay_cmd(&which[1..]);
        eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
        std::process::exit(if ok { 0 } else { 1 });
    }
    let c = cfg(quick);
    let t0 = Instant::now();
    let mut certified = true;
    for w in which {
        match w {
            "fig10" => fig10_cmd(&c),
            "fig11" => fig11_cmd(&c),
            "fig12" => fig12_cmd(&c),
            "fig13" => fig13_cmd(&c),
            "fig14" => fig14_cmd(&c),
            "fig15" => fig15_cmd(&c),
            "fig16" => fig16_cmd(&c),
            "extras" => extras_cmd(&c),
            "certify" => certified &= certify_cmd(&c),
            "all" => {
                fig10_cmd(&c);
                fig11_cmd(&c);
                fig12_cmd(&c);
                fig13_cmd(&c);
                fig14_cmd(&c);
                fig15_cmd(&c);
                fig16_cmd(&c);
                extras_cmd(&c);
                certified &= certify_cmd(&c);
            }
            other => {
                eprintln!(
                    "unknown figure {other}; use fig10..fig16, extras, certify, replay or all"
                );
                std::process::exit(2);
            }
        }
    }
    eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
    // CI gates on this: a deterministic runtime whose schedule hash varies
    // across repetitions must fail the job, not just print.
    if !certified {
        std::process::exit(1);
    }
}
