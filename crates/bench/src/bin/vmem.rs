//! `vmem` — commit/update/merge microbenchmarks for the Conversion layer.
//!
//! ```text
//! vmem [--smoke] [--out PATH]    run the benchmarks, write the JSON artifact
//! vmem --check PATH              validate an existing artifact (CI gate)
//! ```
//!
//! The full run regenerates `BENCH_vmem.json` (committed at the repo root as
//! the performance baseline; always use `--release`). `--smoke` shrinks
//! iteration counts for CI. `--check` parses an emitted document with the
//! in-tree JSON parser and verifies every grid cell is present — see
//! `docs/PERF.md` for the schema.

use std::process::ExitCode;

use dmt_bench::json::ToJson;
use dmt_bench::vmem::{run_vmem_bench, validate_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_vmem.json");
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => return usage("--out requires a path"),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage("--check requires a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vmem: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_report(&text) {
            Ok(()) => {
                println!("{path}: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "running vmem bench ({} mode)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = run_vmem_bench(smoke);

    for c in &report.merge {
        eprintln!(
            "merge {:>2}% dirty: word {:>10.0} pg/s  byte {:>10.0} pg/s  speedup {:.2}x",
            c.density_pct, c.word_pages_per_s, c.byte_pages_per_s, c.speedup
        );
    }
    for c in &report.commit {
        eprintln!(
            "commit t={} {:>2}% dirty: {:>9.0} pages/s  {:>8.0} commits/s  pool hit {:>5.1}%",
            c.threads,
            c.density_pct,
            c.pages_per_s,
            c.commits_per_s,
            c.pool_hit_rate * 100.0
        );
    }
    for c in &report.pipeline {
        eprintln!(
            "pipeline t={} {:>2}% dirty: on {:>9.0} pg/s  off {:>9.0} pg/s  speedup {:.2}x  {}",
            c.threads,
            c.density_pct,
            c.on_pages_per_s,
            c.off_pages_per_s,
            c.speedup,
            if c.hashes_match {
                "digests identical"
            } else {
                "DIVERGED"
            }
        );
    }
    eprintln!(
        "gc: {} iters, budget {}, reader lag {}: max retained {} (bound {}) -> {}",
        report.gc.iters,
        report.gc.budget,
        report.gc.reader_lag,
        report.gc.max_retained,
        report.gc.bound,
        if report.gc.bounded {
            "bounded"
        } else {
            "UNBOUNDED"
        }
    );

    let text = report.to_json();
    if let Err(e) = validate_report(&text) {
        eprintln!("vmem: emitted report failed self-validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, text + "\n") {
        eprintln!("vmem: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("vmem: {err}");
    }
    eprintln!("usage: vmem [--smoke] [--out PATH] | vmem --check PATH");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
