//! Wall-time benches, one group per paper figure.
//!
//! These run reduced configurations (2 threads, scale 1, representative
//! benchmark subsets) so `cargo bench` terminates quickly; the full figure
//! data comes from the `figures` binary. Each measured quantity is the wall
//! time of regenerating the figure's core comparison, which tracks the
//! end-to-end cost of the runtimes under test.
//!
//! The harness is a plain `main` (the workspace builds offline, with no
//! external bench framework): each case runs a warmup iteration then a
//! fixed sample count, reporting min/mean wall time.

use std::hint::black_box;
use std::time::Instant;

use dmt_baselines::RuntimeKind;
use dmt_bench::*;

const SAMPLES: u32 = 10;

fn measure<F: FnMut()>(group: &str, name: &str, mut f: F) {
    f(); // warmup
    let mut min = u128::MAX;
    let mut total = 0u128;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos();
        min = min.min(ns);
        total += ns;
    }
    println!(
        "{group}/{name}: min {:.3} ms, mean {:.3} ms ({SAMPLES} samples)",
        min as f64 / 1e6,
        total as f64 / SAMPLES as f64 / 1e6
    );
}

fn quick() -> Bench {
    Bench {
        pthreads_reps: 1,
        ..Bench::default()
    }
}

fn main() {
    let b = quick();

    for name in ["histogram", "reverse_index"] {
        measure("fig10_normalized", name, || {
            black_box(fig10(&b, &[2], &[name]));
        });
    }
    measure("fig11_scaling", "kmeans_1_to_4", || {
        black_box(fig11(&b, &[1, 4], &["kmeans"]));
    });
    measure("fig12_memory", "canneal_peak_pages", || {
        black_box(fig12(&b, &[2], &["canneal"]));
    });
    measure("fig13_ablation", "reverse_index_ablations", || {
        black_box(fig13(&b, 2, &["reverse_index"]));
    });
    measure("fig14_coarsening", "reverse_index_levels", || {
        black_box(fig14(&b, 2, &["reverse_index"], &[4_096, 65_536]));
    });
    measure("fig15_breakdown", "ocean_cp_breakdown", || {
        black_box(fig15(&b, 2, &["ocean_cp"]));
    });
    measure("fig16_lrc", "ocean_cp_lrc", || {
        black_box(fig16(&b, 2, &["ocean_cp"]));
    });

    // Direct wall-time comparison of one kernel under each runtime —
    // a sanity anchor for the virtual-time results.
    for kind in RuntimeKind::ALL {
        measure("runtime_wall_time", kind.label(), || {
            black_box(run_one(&b, kind, "histogram", 2));
        });
    }
}
